#!/usr/bin/env python3
"""0-RTT TCPLS: TLS early data inside a TCP Fast Open SYN (section 4.2).

First visit: full handshake — earns a TLS resumption ticket and a TFO
cookie.  Second visit: the ClientHello and the encrypted request ride in
the SYN payload, so the server application sees the request after half a
round trip instead of three.

Run:  python examples/zero_rtt_resumption.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.netsim.scenarios import simple_duplex_network
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore
from repro.tls.session import SessionTicketStore

DELAY = 0.030  # one-way; RTT = 60 ms


def main() -> None:
    net, client_host, server_host, _ = simple_duplex_network(delay=DELAY)
    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)

    request_times = []

    def on_session(session):
        session.on_early_data = lambda d: request_times.append(
            (net.sim.now, "0-RTT early data", d)
        )
        session.on_stream_data = lambda sid, d: request_times.append(
            (net.sim.now, "stream data", d)
        )

    TcplsServer(TcplsContext(identity=identity), TcpStack(server_host),
                on_session=on_session)

    ctx = TcplsContext(
        trust_store=trust,
        server_name="server.example",
        ticket_store=SessionTicketStore(),
    )
    client_stack = TcpStack(client_host)

    # --- first visit: 1-RTT handshake -------------------------------------
    print(f"RTT = {2 * DELAY * 1000:.0f} ms")
    first = TcplsSession(ctx, client_stack)
    start = net.sim.now
    first.connect("10.0.0.2", fast_open=True)  # requests a TFO cookie too
    first.handshake()

    def send_request(**kw):
        stream = first.stream_new()
        first.streams_attach()
        first.send(stream, b"GET /index.html")

    from repro.core.events import Event

    first.on(Event.HANDSHAKE_DONE, send_request)
    net.sim.run(until=start + 1.0)
    t_first = request_times[0][0] - start
    print(f"visit 1 (full handshake) : request at server after "
          f"{t_first * 1000:6.1f} ms ({t_first / (2 * DELAY):.2f} RTT)")
    first.close()
    net.sim.run(until=net.sim.now + 1.0)

    # --- second visit: 0-RTT over TFO -----------------------------------------
    request_times.clear()
    second = TcplsSession(ctx, client_stack)
    start = net.sim.now
    second.connect_0rtt("10.0.0.2", early_data=b"GET /index.html")
    net.sim.run(until=start + 1.0)
    t_second = request_times[0][0] - start
    print(f"visit 2 (0-RTT + TFO)    : request at server after "
          f"{t_second * 1000:6.1f} ms ({t_second / (2 * DELAY):.2f} RTT)")
    print(f"round trips saved        : {(t_first - t_second) / (2 * DELAY):.1f}")


if __name__ == "__main__":
    main()
