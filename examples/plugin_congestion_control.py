#!/usr/bin/env python3
"""Pluginized TCPLS: ship a congestion controller as bytecode.

The server writes a congestion-control policy in the plugin assembly
language, sends the verified bytecode to the client over the encrypted
channel mid-transfer, and the client's TCP switches regimes on the fly —
the paper's section 3 (iii) / 4.3 capability.

Run:  python examples/plugin_congestion_control.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.core.events import Event
from repro.core.plugins.assembler import assemble
from repro.netsim.scenarios import simple_duplex_network
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore

# A custom policy, written for this demo: additive increase of 1/2 MSS
# per RTT, multiplicative decrease to 2/3 on loss.
CUSTOM_CC = """
; inputs: r1=event(0 ack,1 loss,2 timeout) r2=bytes r3=cwnd r4=mss r5=ssthresh
    mov  r0, r3
    movi r6, 0
    jne  r1, r6, on_loss
    mov  r7, r4            ; ack: cwnd += (mss/2) * acked / cwnd
    divi r7, 2
    mul  r7, r2
    div  r7, r3
    add  r0, r7
    ret
on_loss:
    mov  r0, r3            ; loss/timeout: cwnd = 2/3 cwnd (floor 2 mss)
    muli r0, 2
    divi r0, 3
    mov  r7, r4
    muli r7, 2
    max  r0, r7
    st   15, r0
    ret
"""


def main() -> None:
    net, client_host, server_host, _ = simple_duplex_network(
        rate_bps=30e6, delay=0.01
    )
    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)
    sessions = []
    TcplsServer(TcplsContext(identity=identity), TcpStack(server_host),
                on_session=sessions.append)
    client = TcplsSession(
        TcplsContext(trust_store=trust, server_name="server.example"),
        TcpStack(client_host),
    )
    client.connect("10.0.0.2")
    client.handshake()
    net.sim.run(until=1.0)
    server = sessions[0]

    client.on(
        Event.PLUGIN_INSTALLED,
        lambda **kw: print(
            f"t={net.sim.now:5.2f}s  [client] plugin target={kw['target']!r} "
            f"verified and installed: {kw['ok']}"
        ),
    )

    received = bytearray()
    server.on_stream_data = lambda sid, d: received.extend(d)
    stream = client.stream_new()
    client.streams_attach()
    client.send(stream, b"\x11" * 4_000_000)

    def sample() -> None:
        tcp = client.connections[0].tcp
        print(f"t={net.sim.now:5.2f}s  cc={tcp.cc.name:<7} "
              f"cwnd={tcp.cc.window():>8} bytes")
        net.sim.schedule(0.25, sample)

    net.sim.schedule(0.25, sample)

    program = assemble(CUSTOM_CC)
    print(f"plugin assembled: {len(program.instructions)} instructions, "
          f"{len(program.to_bytes())} bytes of bytecode")
    net.sim.schedule(
        1.0, lambda: server.send_plugin("cc", program.to_bytes())
    )
    net.sim.run(until=4.0)
    print(f"received {len(received) / 1e6:.1f} MB; "
          f"final congestion controller: {client.connections[0].tcp.cc.name}")


if __name__ == "__main__":
    main()
