#!/usr/bin/env python3
"""Multiplexed page load: the HTTP/2 use case from paper section 2.1.

"Applications such as HTTP/2 support multiple streams mapped to a single
TCP connection.  However, there are situations, e.g., to prevent
head-of-line blocking, where different streams should be mapped over
other underlying TCP connections."

The demo loads a "page" of 8 resources two ways over the same lossy
network and compares resource completion times:

1. classic: all resources byte-serialized on ONE stream (like HTTP/1.1
   over TLS/TCP) — one loss stalls everything behind it;
2. TCPLS: one stream per resource, pinned across TWO TCP connections
   (HOL-avoidance mode) — a loss only delays the resources sharing the
   unlucky connection.

Run:  python examples/http2_style_page_load.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.netsim.scenarios import dual_path_network
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore

RESOURCES = {f"/asset{i}.bin": 150_000 for i in range(8)}
LOSS = 0.01


def _world():
    topo = dual_path_network(rate_bps=30e6, loss_rate=LOSS, seed=7)
    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)
    sessions = []
    TcplsServer(TcplsContext(identity=identity), TcpStack(topo.server),
                on_session=sessions.append)
    client = TcplsSession(
        TcplsContext(trust_store=trust, server_name="server.example"),
        TcpStack(topo.client),
    )
    return topo, client, sessions


def load_single_stream() -> dict:
    """All resources back to back on one stream (HTTP/1.1 style)."""
    topo, client, sessions = _world()
    client.connect(topo.server_v4)
    client.handshake()
    topo.sim.run(until=1.0)
    server = sessions[0]
    done = {}
    progress = {"got": 0}
    order = list(RESOURCES.items())

    def on_data(sid, data):
        progress["got"] += len(data)
        consumed = 0
        for name, size in order:
            consumed += size
            if name not in done and progress["got"] >= consumed:
                done[name] = topo.sim.now
    client.on_stream_data = on_data

    stream = server.stream_new()
    server.streams_attach()
    start = topo.sim.now
    for name, size in order:
        server.send(stream, b"\x01" * size)
    topo.sim.run(until=start + 30)
    return {name: t - start for name, t in done.items()}


def load_multiplexed() -> dict:
    """One stream per resource, spread over two TCP connections."""
    topo, client, sessions = _world()
    client.connect(topo.server_v4)
    client.handshake()
    topo.sim.run(until=1.0)
    v6 = client.connect(topo.server_v6, src=topo.client_v6)
    client.handshake(conn_id=v6)
    topo.sim.run(until=1.5)
    server = sessions[0]
    done = {}
    sizes = {}

    def on_fin(sid):
        done[sizes[sid]] = topo.sim.now
    client.on_stream_fin = on_fin

    start = topo.sim.now
    conn_ids = [cid for cid, c in server.connections.items() if c.usable()]
    for index, (name, size) in enumerate(RESOURCES.items()):
        stream = server.stream_new(conn_id=conn_ids[index % len(conn_ids)])
        sizes[stream] = name
        server.streams_attach()
        server.send(stream, b"\x02" * size)
        server.stream_close(stream)
    topo.sim.run(until=start + 30)
    return {name: t - start for name, t in done.items()}


def main() -> None:
    single = load_single_stream()
    multi = load_multiplexed()
    print(f"8 resources x 150 KB, two 30 Mbps paths, {LOSS:.0%} loss\n")
    print(f"{'resource':<14}{'1 stream (s)':>14}{'8 streams/2 conns (s)':>24}")
    for name in RESOURCES:
        print(f"{name:<14}{single.get(name, float('nan')):>14.3f}"
              f"{multi.get(name, float('nan')):>24.3f}")
    print(f"\n{'median':<14}{sorted(single.values())[4]:>14.3f}"
          f"{sorted(multi.values())[4]:>24.3f}")
    print(f"{'last':<14}{max(single.values()):>14.3f}"
          f"{max(multi.values()):>24.3f}")


if __name__ == "__main__":
    main()
