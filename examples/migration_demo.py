#!/usr/bin/env python3
"""The paper's Figure 4 demo: connection migration during a download.

A dual-stack client downloads a file from a dual-stack server over the
IPv4 path, then migrates the session to the IPv6 path in the middle of
the download by chaining the five API calls of section 3.2.  The demo
prints the per-connection goodput time series as an ASCII chart.

Run:  python examples/migration_demo.py [size_mb]
"""

import sys

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.core.migration import migrate
from repro.netsim.scenarios import dual_path_network
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore

INTERVAL = 0.25


def main(size_mb: float = 8.0) -> None:
    file_size = int(size_mb * 1e6)
    topo = dual_path_network(rate_bps=30e6, v4_delay=0.010, v6_delay=0.025)

    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)
    sessions = []
    TcplsServer(
        TcplsContext(identity=identity), TcpStack(topo.server),
        on_session=sessions.append,
    )
    client = TcplsSession(
        TcplsContext(trust_store=trust, server_name="server.example"),
        TcpStack(topo.client),
    )

    v4_conn = client.connect(topo.server_v4)
    client.handshake()
    topo.sim.run(until=0.5)
    server = sessions[0]

    received = bytearray()
    client.on_stream_data = lambda sid, d: received.extend(d)
    stream = server.stream_new()
    server.streams_attach()
    server.send(stream, b"\x42" * file_size)
    print(f"downloading {size_mb:.0f} MB over the IPv4 path (30 Mbps)...")

    def trigger() -> None:
        if len(received) < file_size * 0.45:
            topo.sim.schedule(0.05, trigger)
            return
        print(f"t={topo.sim.now:5.2f}s  triggering the 5-call migration chain -> IPv6")
        v6_conn = client.connect(topo.server_v6, src=topo.client_v6)
        migrate(client, v6_conn, retire_conn_id=v4_conn)

    topo.sim.schedule(0.1, trigger)
    done = []

    def poll() -> None:
        if len(received) >= file_size:
            done.append(topo.sim.now)
        else:
            topo.sim.schedule(0.05, poll)

    topo.sim.schedule(0.1, poll)
    topo.sim.run(until=file_size * 8 / 30e6 * 3 + 5)

    intact = bytes(received) == b"\x42" * file_size
    print(f"download complete at t={done[0]:.2f}s "
          f"({len(received) / 1e6:.1f} MB, byte-exact={intact})")
    print()
    print(f"{'t(s)':>6} {'v4':>7} {'v6':>7}  goodput (Mbps; #=v4 +=v6)")
    series = {}
    for t, conn_id, nbytes in client.delivery_log:
        series.setdefault(conn_id, {})
        bucket = int(t / INTERVAL)
        series[conn_id][bucket] = series[conn_id].get(bucket, 0) + nbytes
    for bucket in range(int(done[0] / INTERVAL) + 1):
        v4 = series.get(0, {}).get(bucket, 0) * 8 / INTERVAL / 1e6
        v6 = series.get(1, {}).get(bucket, 0) * 8 / INTERVAL / 1e6
        print(f"{bucket * INTERVAL:>6.2f} {v4:>7.2f} {v6:>7.2f}  "
              f"{'#' * int(v4 / 2)}{'+' * int(v6 / 2)}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
