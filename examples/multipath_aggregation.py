#!/usr/bin/env python3
"""Bandwidth aggregation: one stream striped across two TCP connections.

TCPLS in ``aggregate`` multipath mode JOINs a second TCP connection over
the IPv6 path and stripes a single download across both 30 Mbps paths —
the receiver reorders by stream offset.  The demo compares single-path
and aggregated download times and shows each connection's share.

Run:  python examples/multipath_aggregation.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.netsim.scenarios import dual_path_network
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore

FILE_SIZE = 6_000_000


def run(mode: str, use_second_path: bool) -> tuple:
    topo = dual_path_network(rate_bps=30e6)
    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)
    sessions = []
    TcplsServer(
        TcplsContext(identity=identity, multipath_mode=mode),
        TcpStack(topo.server), on_session=sessions.append,
    )
    client = TcplsSession(
        TcplsContext(
            trust_store=trust, server_name="server.example", multipath_mode=mode
        ),
        TcpStack(topo.client),
    )
    client.connect(topo.server_v4)
    client.handshake()
    topo.sim.run(until=1.0)
    if use_second_path:
        v6 = client.connect(topo.server_v6, src=topo.client_v6)
        client.handshake(conn_id=v6)  # JOIN: no new TLS handshake
        topo.sim.run(until=1.5)

    received = bytearray()
    sessions[0].on_stream_data = lambda sid, d: received.extend(d)
    stream = client.stream_new()
    client.streams_attach()
    start = topo.sim.now
    client.send(stream, b"\x33" * FILE_SIZE)
    done = []

    def poll() -> None:
        if len(received) >= FILE_SIZE:
            done.append(topo.sim.now - start)
        else:
            topo.sim.schedule(0.02, poll)

    topo.sim.schedule(0.02, poll)
    topo.sim.run(until=start + 60)
    shares = {}
    for _t, conn_id, n in sessions[0].delivery_log:
        shares[conn_id] = shares.get(conn_id, 0) + n
    return done[0], shares


def main() -> None:
    single_time, single_share = run("pinned", use_second_path=False)
    print(f"single path : {single_time:5.2f}s  "
          f"({FILE_SIZE * 8 / single_time / 1e6:.1f} Mbps)")
    agg_time, agg_share = run("aggregate", use_second_path=True)
    print(f"aggregated  : {agg_time:5.2f}s  "
          f"({FILE_SIZE * 8 / agg_time / 1e6:.1f} Mbps)")
    print(f"speedup     : {single_time / agg_time:.2f}x")
    total = sum(agg_share.values())
    for conn_id, nbytes in sorted(agg_share.items()):
        path = "v4" if conn_id == 0 else "v6"
        print(f"  connection {conn_id} ({path}): {nbytes / 1e6:5.2f} MB "
              f"({100 * nbytes / total:4.1f}%)")


if __name__ == "__main__":
    main()
