#!/usr/bin/env python3
"""Failover: surviving a middlebox-forged TCP RST (paper section 2.1).

A middlebox on the path forges a RST mid-transfer — the attack that
kills any plain TCP or TLS/TCP connection.  TCPLS detects the failure,
re-establishes a TCP connection with a JOIN cookie, replays the records
the peer never acknowledged, and the transfer completes byte-exact.

Run:  python examples/failover_demo.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.core.events import Event
from repro.netsim.middlebox import RstInjector
from repro.netsim.scenarios import simple_duplex_network
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore

FILE_SIZE = 2_000_000


def main() -> None:
    net, client_host, server_host, link = simple_duplex_network(
        rate_bps=30e6, delay=0.01
    )
    injector = RstInjector(trigger_bytes=FILE_SIZE // 3)
    link.add_transformer(list(client_host.interfaces.values())[0], injector)

    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)
    sessions = []
    TcplsServer(TcplsContext(identity=identity), TcpStack(server_host),
                on_session=sessions.append)
    client = TcplsSession(
        TcplsContext(trust_store=trust, server_name="server.example",
                     connection_user_timeout=2.0),
        TcpStack(client_host),
    )

    client.on(
        Event.CONN_FAILED,
        lambda **kw: print(
            f"t={net.sim.now:6.3f}s  connection {kw['conn_id']} FAILED "
            f"({kw['reason']}) — a middlebox forged a RST"
        ),
    )
    client.on(
        Event.JOIN,
        lambda **kw: print(
            f"t={net.sim.now:6.3f}s  reconnected: connection {kw['conn_id']} "
            "joined the session with a one-time cookie"
        ),
    )
    client.on(
        Event.FAILOVER,
        lambda **kw: print(
            f"t={net.sim.now:6.3f}s  failover {kw['from_conn']} -> "
            f"{kw['to_conn']}; unacknowledged records replayed"
        ),
    )

    client.connect("10.0.0.2")
    client.handshake()
    net.sim.run(until=0.5)
    server = sessions[0]
    received = bytearray()
    server.on_stream_data = lambda sid, d: received.extend(d)

    stream = client.stream_new()
    client.streams_attach()
    payload = bytes(i % 256 for i in range(FILE_SIZE))
    print(f"t={net.sim.now:6.3f}s  uploading {FILE_SIZE / 1e6:.0f} MB "
          f"(RST bomb armed at {injector.trigger_bytes / 1e6:.1f} MB)")
    client.send(stream, payload)
    net.sim.run(until=30.0)

    print(f"t={net.sim.now:6.3f}s  server received "
          f"{len(received) / 1e6:.1f} MB, byte-exact: "
          f"{bytes(received) == payload}")
    print(f"records replayed: {client.stats['frames_replayed']}, "
          f"duplicates discarded by the receiver: "
          f"{server.tracker.duplicates}")


if __name__ == "__main__":
    main()
