#!/usr/bin/env python3
"""Middlebox detection by SYN echo (paper section 4.5).

The client sends its SYN, byte for byte as transmitted, through the
encrypted channel; the server compares it with the SYN it actually
received and reports every difference — revealing NATs, option
strippers, and transparent proxies that are invisible to the endpoints
otherwise.

Run:  python examples/middlebox_detection.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.core.events import Event
from repro.netsim.middlebox import Nat44, OptionStripper, TransparentProxyMangler
from repro.netsim.topology import Network
from repro.tcp.options import KIND_SACK_PERMITTED, KIND_TIMESTAMPS
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore


def probe(label: str, outbound=None, inbound=None) -> None:
    net = Network()
    client_host = net.add_host("client")
    server_host = net.add_host("server")
    ci = client_host.add_interface("eth0").configure_ipv4("10.0.0.1/24")
    si = server_host.add_interface("eth0").configure_ipv4("20.0.0.2/24")
    link = net.connect(ci, si, delay=0.01)
    client_host.add_route("20.0.0.0/24", ci)
    server_host.add_route("20.0.0.0/24", si)
    server_host.add_route("10.0.0.0/24", si)
    if outbound is not None:
        link.add_transformer(ci, outbound)
    if inbound is not None:
        link.add_transformer(si, inbound)

    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)
    TcplsServer(TcplsContext(identity=identity), TcpStack(server_host))
    client = TcplsSession(
        TcplsContext(trust_store=trust, server_name="server.example"),
        TcpStack(client_host),
    )
    findings = []
    client.on(Event.PROBE_REPORT, lambda **kw: findings.extend(kw["differences"]))
    client.connect("20.0.0.2")
    client.handshake()
    net.sim.run(until=1.0)
    client.send_middlebox_probe()
    net.sim.run(until=2.0)

    print(f"\npath: {label}")
    if not findings:
        print("  no middlebox interference detected")
    for finding in findings:
        print(f"  ! {finding}")


def main() -> None:
    probe("clean")
    nat = Nat44(public_address="20.0.0.9")
    probe("through a NAT", outbound=nat.outbound, inbound=nat.inbound)
    probe(
        "through an option-stripping middlebox",
        outbound=OptionStripper([KIND_TIMESTAMPS, KIND_SACK_PERMITTED]),
    )
    probe(
        "through a transparent proxy",
        outbound=TransparentProxyMangler(clamp_mss=536),
    )


if __name__ == "__main__":
    main()
