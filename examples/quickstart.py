#!/usr/bin/env python3
"""Quickstart: a TCPLS client and server on a simulated network.

Covers the core workflow end to end:

1. build a simulated network (two hosts, one link);
2. start a TCPLS server with a certificate;
3. connect, handshake, open a stream, exchange data;
4. ship a TCP option (User Timeout) through the encrypted channel;
5. close the session securely.

Run:  python examples/quickstart.py
"""

from repro.core import TcplsContext, TcplsServer, TcplsSession
from repro.core.events import Event
from repro.netsim.scenarios import simple_duplex_network
from repro.tcp.options import UserTimeout
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore


def main() -> None:
    # -- 1. the network ----------------------------------------------------
    net, client_host, server_host, _link = simple_duplex_network(
        rate_bps=100e6, delay=0.005
    )

    # -- 2. PKI + server -----------------------------------------------------
    ca = CertificateAuthority("Example Root CA")
    identity = ca.issue_identity("server.example")
    trust = TrustStore()
    trust.add_authority(ca)

    sessions = []
    TcplsServer(
        TcplsContext(identity=identity),
        TcpStack(server_host),
        port=443,
        on_session=sessions.append,
    )

    # -- 3. client: connect, handshake, stream, data ---------------------------
    client = TcplsSession(
        TcplsContext(trust_store=trust, server_name="server.example"),
        TcpStack(client_host),
    )
    client.on(
        Event.HANDSHAKE_DONE,
        lambda **kw: print(f"[client] handshake complete on connection {kw['conn_id']}"),
    )
    client.connect("10.0.0.2", port=443)
    client.handshake()
    net.sim.run(until=1.0)

    server = sessions[0]
    print(f"[server] session established, CONNID={server.connection_id.hex()}")

    # Echo server: send everything back on the same stream.
    def echo(stream_id: int, data: bytes) -> None:
        print(f"[server] stream {stream_id}: {len(data)} bytes -> echoing")
        server.send(stream_id, data)

    server.on_stream_data = echo

    replies = []
    client.on_stream_data = lambda sid, data: replies.append((sid, data))

    stream = client.stream_new()
    client.streams_attach()
    client.send(stream, b"hello TCPLS!" * 3)
    net.sim.run(until=2.0)
    print(f"[client] echo received: {bytes(replies[0][1])[:24]!r}...")

    # -- 4. a TCP option through the secure channel ----------------------------
    server.on(
        Event.TCP_OPTION_RECEIVED,
        lambda **kw: print(
            f"[server] TCP option kind={kw['kind']} received over the "
            f"encrypted channel; applied user_timeout="
            f"{server.connections[0].tcp.user_timeout}s"
        ),
    )
    client.send_tcp_option(UserTimeout(timeout=30))
    net.sim.run(until=3.0)

    # -- 5. secure close ----------------------------------------------------------
    client.close()
    net.sim.run(until=4.0)
    print(f"[client] session closed securely: {client.session_closed}")
    print(f"[server] session closed securely: {server.session_closed}")


if __name__ == "__main__":
    main()
