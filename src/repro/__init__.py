"""TCPLS — a full-system reproduction of "TCPLS: Closely Integrating
TCP and TLS" (Rochet, Assogba, Bonaventure — HotNets 2020).

Subpackages, bottom-up:

- ``repro.utils``     — byte codecs and the error hierarchy
- ``repro.crypto``    — X25519, Ed25519, ChaCha20-Poly1305, HKDF, and
  the TLS 1.3 key schedule (validated against RFC test vectors)
- ``repro.netsim``    — deterministic discrete-event network simulator
  (hosts, routers, links, dual-stack routing, middleboxes, UDP)
- ``repro.tcp``       — byte-accurate TCP (FSM, SACK recovery,
  Reno/CUBIC, TCP Fast Open, user timeout)
- ``repro.tls``       — TLS 1.3 (handshake, record layer, tickets,
  0-RTT early data, key updates)
- ``repro.core``      — **TCPLS itself**: streams with per-stream
  cryptographic contexts, the encrypted control channel, TCPLS
  ACKs/failover, JOIN/multipath, migration, bytecode plugins, 0-RTT
- ``repro.quic``      — a mini-QUIC baseline for the comparisons
- ``repro.baselines`` — plain-TCP and layered TLS/TCP applications
- ``repro.compare``   — the machinery regenerating the paper's Table 1

Start with ``repro.core`` (or ``examples/quickstart.py``); DESIGN.md maps
every paper section to its module, EXPERIMENTS.md records paper-vs-
measured results for every table and figure.
"""

__version__ = "1.0.0"
