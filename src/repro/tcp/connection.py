"""The TCP connection state machine.

Implements the RFC 793 FSM with the loss-recovery and performance
machinery the TCPLS experiments depend on:

- retransmission timeout per RFC 6298 with exponential backoff and Karn's
  algorithm for RTT sampling;
- fast retransmit on three duplicate ACKs with NewReno-style recovery;
- SACK generation (receiver) and a SACK scoreboard (sender) so recovery
  does not retransmit delivered data;
- window scaling, timestamps, MSS negotiation;
- TCP Fast Open (RFC 7413) data-in-SYN on both sides;
- the RFC 5482 user timeout, settable locally (the paper's TCPLS carries
  the peer's value over the secure channel and applies it here — the
  simulated equivalent of the ``setsockopt`` in section 3.1);
- RST handling that surfaces an ``on_reset`` event, which TCPLS failover
  (section 2.1) uses to re-establish the session's underlying connection.

The application-facing surface is callback-based: ``send``/``close`` plus
``on_data``, ``on_established``, ``on_close``, ``on_reset``, ``on_error``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Tuple

from repro import fastpath
from repro.netsim.packet import Datagram, PROTO_TCP, IPAddress
from repro.tcp import seqnum
from repro.tcp.congestion import CongestionControl, make as make_cc
from repro.tcp.options import (
    MAX_USER_TIMEOUT_SECONDS,
    FastOpenCookie,
    MaximumSegmentSize,
    SackBlocks,
    SackPermitted,
    Timestamps,
    UserTimeout,
    WindowScale,
    find_option,
)
from repro.tcp.rto import RtoEstimator
from repro.tcp.segment import Flags, TcpSegment

_send_time_of = attrgetter("send_time")

# Connection states.
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

_MAX_RETRIES = 10
_MAX_SYN_RETRIES = 6
_MAX_BURST_SEGMENTS = 10
_WINDOW_SCALE_SHIFT = 7
_DEFAULT_RECEIVE_WINDOW = 1 << 20  # 1 MiB
# Cap on congestion state carried across a controller swap; the old
# controller may be plugin-driven and its window peer-influenced.
_MAX_PRESERVED_WINDOW = float(16 * 1024 * 1024)


@dataclass
class _Inflight:
    """One unacknowledged segment retained for retransmission."""

    seq: int
    data: bytes
    syn: bool = False
    fin: bool = False
    send_time: float = 0.0
    retransmitted: bool = False
    sacked: bool = False
    lost: bool = False  # deemed lost (set for everything in flight at RTO)

    def length(self) -> int:
        return len(self.data) + (1 if self.syn else 0) + (1 if self.fin else 0)


class TcpConnection:
    """One TCP connection; created via ``TcpStack.connect`` or a listener."""

    def __init__(
        self,
        stack,
        local_addr: IPAddress,
        local_port: int,
        remote_addr: IPAddress,
        remote_port: int,
        mss: int = 1400,
        congestion: str = "reno",
        receive_window: int = _DEFAULT_RECEIVE_WINDOW,
        delayed_ack: bool = False,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = CLOSED

        # Negotiated parameters.
        self.mss = mss
        self.peer_mss = mss
        self.snd_ws_shift = 0  # how much the peer scales windows it sends us
        self.rcv_ws_shift = _WINDOW_SCALE_SHIFT
        self.sack_enabled = False
        self._ts_recent = 0

        # Send state.
        self.iss = stack.allocate_iss()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = mss * 10
        self._send_queue = bytearray()
        # Scoreboard of transmitted-but-unacked segments.  Insertion
        # order is sequence order (entries are keyed by first-transmit
        # seq and never re-keyed), which the "tcp.ack" fast path relies
        # on; ``_inflight_bytes`` mirrors the summed lengths so
        # ``bytes_in_flight()`` is O(1).
        self._inflight: Dict[int, _Inflight] = {}
        self._inflight_bytes = 0
        self._fin_pending = False
        self._fin_sent = False
        self._fin_seq: Optional[int] = None

        # Delayed ACKs (RFC 1122 4.2.3.2): ack every second segment or
        # after at most 40 ms.  Off by default — immediate ACKs keep the
        # ACK clock dense, which the multipath scheduler prefers.
        self.delayed_ack = delayed_ack
        self._ack_pending_segments = 0
        self._delayed_ack_event = None

        # Receive state.
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_wnd_limit = receive_window
        self._reassembly: Dict[int, bytes] = {}
        self._paused = False
        self._pending_delivery = bytearray()
        self._peer_fin_seq: Optional[int] = None

        # Control machinery.
        self.cc: CongestionControl = make_cc(congestion, mss)
        self.rto = RtoEstimator()
        self._rto_event = None
        self._persist_event = None
        self._time_wait_event = None
        self._retries = 0
        self._dup_acks = 0
        self._recovery_point: Optional[int] = None
        self._rto_point: Optional[int] = None
        self._highest_sacked: Optional[int] = None
        self.user_timeout: Optional[float] = None
        self._first_unacked_time: Optional[float] = None

        # TCP Fast Open.
        self._tfo_data: bytes = b""
        self._syn_had_tfo = False
        self.tfo_used = False

        # Middlebox detection support (paper section 4.5).
        self.sent_syn_bytes: bytes = b""
        self.received_syn_bytes: bytes = b""

        # Application callbacks.
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[str], None]] = None
        # Fired whenever an ACK frees send window — cross-layer hook used
        # by the TCPLS scheduler to keep multiple connections' pipes full.
        self.on_send_progress: Optional[Callable[[], None]] = None

        # Statistics for experiments.
        self.stats = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "segments_sent": 0,
            "segments_received": 0,
            "retransmissions": 0,
            "fast_retransmits": 0,
            "timeouts": 0,
            "dup_acks_received": 0,
        }
        # Delivery accounting for TCP_INFO-style snapshots (repro.obs):
        # bytes the peer has cumulatively acknowledged, and when this
        # connection reached ESTABLISHED (basis of the delivery rate).
        self.delivered_bytes = 0
        self.sacked_segments = 0
        self._established_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def four_tuple(self) -> Tuple:
        return (self.local_addr, self.local_port, self.remote_addr, self.remote_port)

    def open_active(
        self, fast_open_cookie: Optional[bytes] = None, fast_open_data: bytes = b""
    ) -> None:
        """Send the initial SYN (client side)."""
        if self.state != CLOSED:
            raise RuntimeError(f"open_active in state {self.state}")
        self.state = SYN_SENT
        options = [
            MaximumSegmentSize(mss=self.mss),
            WindowScale(shift=self.rcv_ws_shift),
            SackPermitted(),
            Timestamps(value=self._ts_now(), echo_reply=0),
        ]
        payload = b""
        if fast_open_cookie is not None:
            options.append(FastOpenCookie(cookie=fast_open_cookie))
            self._syn_had_tfo = True
            if fast_open_cookie and fast_open_data:
                payload = fast_open_data[: self.mss]
                self._tfo_data = payload
                self.tfo_used = True
                fast_open_data = fast_open_data[len(payload):]
        if fast_open_data:
            # No cookie yet (or overflow): deliver after the handshake.
            self._send_queue.extend(fast_open_data)
        syn = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.iss,
            flags=Flags.SYN,
            window=min(self.rcv_wnd_limit, 0xFFFF),
            options=options,
            payload=payload,
        )
        self.snd_nxt = seqnum.seq_add(self.iss, 1 + len(payload))
        entry = _Inflight(
            seq=self.iss, data=payload, syn=True, send_time=self.sim.now
        )
        self._inflight[self.iss] = entry
        self._inflight_bytes += entry.length()
        self.sent_syn_bytes = syn.to_bytes(self.local_addr, self.remote_addr)
        self._transmit_raw(self.sent_syn_bytes)
        self.stats["segments_sent"] += 1
        self._arm_rto()

    def send(self, data: bytes) -> int:
        """Queue application data for transmission; returns bytes accepted."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, SYN_SENT, SYN_RCVD):
            raise RuntimeError(f"send() in state {self.state}")
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("send() after close()")
        self._send_queue.extend(data)
        self._try_send()
        return len(data)

    def close(self) -> None:
        """Graceful close: FIN after all queued data is sent."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, CLOSING, FIN_WAIT_1, FIN_WAIT_2):
            return
        self._fin_pending = True
        self._try_send()

    def abort(self, reason: str = "aborted") -> None:
        """Hard close: send RST and drop all state."""
        if self.state not in (CLOSED, TIME_WAIT):
            rst = self._make_segment(flags=Flags.RST | Flags.ACK, seq=self.snd_nxt)
            self._transmit(rst)
        self._enter_closed(notify_error=reason)

    def set_user_timeout(self, seconds: Optional[float]) -> None:
        """RFC 5482 user timeout: abort if unacked data stalls this long."""
        self.user_timeout = seconds

    def set_congestion_control(self, cc: CongestionControl) -> None:
        """Swap the congestion controller, preserving the current window.

        The outgoing controller may be plugin-driven, so the preserved
        state is clamped: an absurd cwnd must not survive the swap into
        a fresh controller.
        """
        cc.cwnd = min(max(self.cc.cwnd, cc.mss), _MAX_PRESERVED_WINDOW)
        preserved_ssthresh = self.cc.ssthresh
        if preserved_ssthresh != float("inf"):
            preserved_ssthresh = min(preserved_ssthresh, _MAX_PRESERVED_WINDOW)
        cc.ssthresh = preserved_ssthresh
        self.cc = cc

    def pause_reading(self) -> None:
        """Stop delivering to the app; the advertised window shrinks."""
        self._paused = True

    def resume_reading(self) -> None:
        self._paused = False
        if self._pending_delivery:
            data = bytes(self._pending_delivery)
            self._pending_delivery.clear()
            self._deliver(data)
        self._send_ack()

    def send_queue_length(self) -> int:
        return len(self._send_queue)

    def bytes_in_flight(self) -> int:
        if fastpath.flags["tcp.ack"]:
            return self._inflight_bytes
        return sum(entry.length() for entry in self._inflight.values())

    def delivery_rate(self) -> float:
        """Average delivery rate in bits/s since ESTABLISHED (0 before)."""
        if self._established_time is None:
            return 0.0
        elapsed = self.sim.now - self._established_time
        if elapsed <= 0:
            return 0.0
        return self.delivered_bytes * 8 / elapsed

    def info(self) -> dict:
        """Introspection used by TCPLS for cross-layer decisions."""
        return {
            "state": self.state,
            "cwnd": self.cc.window(),
            "ssthresh": self.cc.ssthresh,
            "srtt": self.rto.srtt,
            "rttvar": self.rto.rttvar,
            "rto": self.rto.rto,
            "mss": self.effective_mss(),
            "flight": self.bytes_in_flight(),
            "snd_wnd": self.snd_wnd,
            "congestion": self.cc.name,
            "sacked_segments": self.sacked_segments,
            "delivered_bytes": self.delivered_bytes,
            "delivery_rate_bps": self.delivery_rate(),
            **self.stats,
        }

    def effective_mss(self) -> int:
        return min(self.mss, self.peer_mss)

    # ------------------------------------------------------------------
    # Passive open (invoked by the listener)
    # ------------------------------------------------------------------

    def open_passive(self, syn: TcpSegment, raw_syn: bytes, tfo_cookie_ok: bool) -> None:
        """Initialize from a received SYN and reply with SYN+ACK."""
        if self.state not in (CLOSED, SYN_RCVD):
            raise RuntimeError(f"open_passive in state {self.state}")
        self.received_syn_bytes = raw_syn
        self.irs = syn.seq
        self.rcv_nxt = seqnum.seq_add(syn.seq, 1)
        self._negotiate_from_options(syn)
        self.state = SYN_RCVD

        tfo_payload_accepted = b""
        if syn.payload and tfo_cookie_ok:
            tfo_payload_accepted = syn.payload
            self.rcv_nxt = seqnum.seq_add(self.rcv_nxt, len(syn.payload))
            self.tfo_used = True

        options = [
            MaximumSegmentSize(mss=self.mss),
            Timestamps(value=self._ts_now(), echo_reply=self._ts_recent),
        ]
        if find_option(syn.options, WindowScale) is not None:
            # Window scaling applies only when both sides offer it.
            options.insert(1, WindowScale(shift=self.rcv_ws_shift))
        if self.sack_enabled:
            options.append(SackPermitted())
        tfo_option = find_option(syn.options, FastOpenCookie)
        if tfo_option is not None and not tfo_option.cookie:
            # Cookie request: mint one for this client.
            options.append(
                FastOpenCookie(cookie=self.stack.fastopen.make_cookie(self.remote_addr))
            )
        syn_ack = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.iss,
            ack=self.rcv_nxt,
            flags=Flags.SYN | Flags.ACK,
            window=min(self.rcv_wnd_limit, 0xFFFF),
            options=options,
        )
        self.snd_nxt = seqnum.seq_add(self.iss, 1)
        self._inflight[self.iss] = _Inflight(
            seq=self.iss, data=b"", syn=True, send_time=self.sim.now
        )
        self._inflight_bytes += 1
        self._transmit(syn_ack)
        self._arm_rto()
        if tfo_payload_accepted:
            self._deliver(tfo_payload_accepted)

    # ------------------------------------------------------------------
    # Segment input
    # ------------------------------------------------------------------

    def on_segment(self, segment: TcpSegment) -> None:
        self.stats["segments_received"] += 1
        timestamps = find_option(segment.options, Timestamps)
        if timestamps is not None:
            self._ts_recent = timestamps.value

        if self.state == SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if self.state == CLOSED:
            return
        if self.state == TIME_WAIT:
            if segment.is_fin:
                self._send_ack()
            return

        # RFC 793 sequence acceptability (simplified, no PAWS).
        if segment.is_rst:
            if self._rst_acceptable(segment):
                self._handle_rst()
            return
        if segment.is_syn:
            # SYN on an established connection: retransmitted SYN from the
            # peer means our SYN+ACK was lost — retransmit it.
            if self.state == SYN_RCVD and segment.seq == self.irs:
                self._retransmit_earliest()
            return

        if segment.is_ack:
            self._handle_ack(segment, timestamps)
            if self.state == CLOSED:
                return

        if segment.payload or segment.is_fin:
            self._handle_data(segment)

    # -- SYN_SENT ---------------------------------------------------------

    def _handle_syn_sent(self, segment: TcpSegment) -> None:
        if segment.is_rst:
            if segment.is_ack and segment.ack == self.snd_nxt:
                self._enter_closed(notify_error="connection refused")
            return
        if not (segment.is_syn and segment.is_ack):
            return
        acceptable = seqnum.seq_between(
            seqnum.seq_add(self.iss, 1), segment.ack, seqnum.seq_add(self.snd_nxt, 1)
        )
        if not acceptable:
            return
        self.irs = segment.seq
        self.rcv_nxt = seqnum.seq_add(segment.seq, 1)
        self._negotiate_from_options(segment)
        self.snd_wnd = segment.window  # SYN segments are never scaled

        # Handle TFO: ack may cover SYN only, or SYN + early data.
        acked = seqnum.seq_sub(segment.ack, self.iss) - 1  # payload bytes acked
        entry = self._inflight.pop(self.iss, None)
        if entry is not None:
            self._inflight_bytes -= entry.length()
        if entry is not None and entry.data and acked < len(entry.data):
            # Server ignored our TFO data (cookie rejected): requeue it.
            self._send_queue[:0] = entry.data[max(acked, 0):]
            self.snd_nxt = segment.ack
            self.tfo_used = False
        self.snd_una = segment.ack
        if entry is not None and not entry.retransmitted:
            self.rto.on_measurement(self.sim.now - entry.send_time)
        cookie_option = find_option(segment.options, FastOpenCookie)
        if cookie_option is not None and cookie_option.cookie:
            self.stack.fastopen.remember_cookie(self.remote_addr, cookie_option.cookie)

        self.state = ESTABLISHED
        if self._established_time is None:
            self._established_time = self.sim.now
        self._retries = 0
        self._cancel_rto()
        self._send_ack()
        if segment.payload:
            self._handle_data(segment)
        if self.on_established:
            self.on_established()
        self._try_send()
        self._arm_rto()

    # -- RST --------------------------------------------------------------------

    def _rst_acceptable(self, segment: TcpSegment) -> bool:
        window = max(self._advertised_window(), 1)
        return seqnum.seq_between(
            self.rcv_nxt, segment.seq, seqnum.seq_add(self.rcv_nxt, window)
        ) or segment.seq == self.rcv_nxt

    def _handle_rst(self) -> None:
        was_established = self.state in (
            ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, CLOSE_WAIT, SYN_RCVD,
        )
        self._enter_closed(notify_error=None)
        if was_established and self.on_reset:
            self.on_reset()

    # -- ACK processing -----------------------------------------------------------

    def _handle_ack(
        self, segment: TcpSegment, timestamps: Optional[Timestamps] = None
    ) -> None:
        ack = segment.ack
        # RFC 7323 timestamp-based RTT sampling, but only on ACKs that
        # advance snd_una: echoes on duplicate/idle ACKs reflect stale
        # timestamps and would inflate the RTO.  Unlike Karn sampling this
        # works even when the acked segment was retransmitted, keeping the
        # RTO from staying backed off across consecutive loss events.
        # ``timestamps`` is the option already parsed by ``on_segment`` —
        # reparsing it here would scan the option list a second time per
        # ACK for the identical value.
        if seqnum.seq_gt(ack, self.snd_una):
            if timestamps is None:
                timestamps = find_option(segment.options, Timestamps)
            if timestamps is not None and timestamps.echo_reply:
                sample = self.sim.now - (timestamps.echo_reply / 1000.0)
                if 0 <= sample < 60:
                    self.rto.on_measurement(sample)
                    self.cc.observe_rtt(sample)
        if self.state == SYN_RCVD:
            if seqnum.seq_ge(ack, seqnum.seq_add(self.iss, 1)):
                self.state = ESTABLISHED
                if self._established_time is None:
                    self._established_time = self.sim.now
                if self.on_established:
                    self.on_established()
            else:
                return

        if not segment.is_syn:
            self.snd_wnd = segment.window << self.snd_ws_shift

        sack = find_option(segment.options, SackBlocks)
        if sack is not None:
            self._apply_sack(sack.blocks)

        if seqnum.seq_gt(ack, self.snd_nxt):
            return  # acks data we never sent
        if seqnum.seq_le(ack, self.snd_una):
            self._handle_possible_dup_ack(segment)
        else:
            self._handle_new_ack(ack)

        self._try_send()
        self._maybe_finish_close(ack)

    def _handle_new_ack(self, ack: int) -> None:
        acked_bytes = 0
        rtt_sample: Optional[float] = None
        if fastpath.flags["tcp.ack"]:
            # The scoreboard is in sequence order and entry ends strictly
            # increase, so an ACK always covers a prefix: scan until the
            # first entry past it instead of sorting per ACK.
            acked_seqs: List[int] = []
            for seq, entry in self._inflight.items():
                end = seqnum.seq_add(seq, entry.length())
                if not seqnum.seq_le(end, ack):
                    break
                acked_bytes += entry.length()
                # Karn sample only from the segment whose arrival produced
                # this ACK (end == ack) — see the reference loop below.
                if not entry.retransmitted and not entry.sacked and end == ack:
                    rtt_sample = self.sim.now - entry.send_time
                acked_seqs.append(seq)
            for seq in acked_seqs:
                self._inflight_bytes -= self._inflight.pop(seq).length()
        else:
            for seq in sorted(
                self._inflight, key=lambda s: seqnum.seq_sub(s, self.snd_una)
            ):
                entry = self._inflight[seq]
                end = seqnum.seq_add(seq, entry.length())
                if seqnum.seq_le(end, ack):
                    acked_bytes += entry.length()
                    # Karn sample only from the segment whose arrival produced
                    # this ACK (end == ack): earlier segments may have been
                    # sitting in the receiver's reassembly buffer for many
                    # RTTs waiting for a hole to fill.
                    if not entry.retransmitted and not entry.sacked and end == ack:
                        rtt_sample = self.sim.now - entry.send_time
                    self._inflight_bytes -= entry.length()
                    del self._inflight[seq]
        self.snd_una = ack
        self._retries = 0
        self._dup_acks = 0
        # min() via a C-level attrgetter key: identical value to the
        # generator form, no per-entry generator frame on the ACK path.
        self._first_unacked_time = (
            None
            if not self._inflight
            else min(self._inflight.values(), key=_send_time_of).send_time
        )
        if rtt_sample is not None:
            self.rto.on_measurement(rtt_sample)
        if self._recovery_point is not None:
            if seqnum.seq_ge(ack, self._recovery_point):
                self._recovery_point = None  # recovery complete
                self._highest_sacked = None
            else:
                # Partial ACK: repair holes at ACK-clock rate.  With SACK,
                # the scoreboard knows exactly which segments are missing
                # and which were already retransmitted; without it, fall
                # back to NewReno's one-retransmission-per-partial-ACK.
                if self.sack_enabled:
                    self._sack_recovery_send(cap=3)
                else:
                    self._retransmit_earliest()
        elif self._rto_point is not None:
            if seqnum.seq_ge(ack, self._rto_point):
                self._rto_point = None
            else:
                # Post-RTO recovery: each ACK repairs the next hole while
                # slow start regrows cwnd for new data.
                if self.sack_enabled:
                    self._sack_recovery_send(cap=2)
                else:
                    self._retransmit_earliest()
        self.delivered_bytes += acked_bytes
        if acked_bytes and self._recovery_point is None:
            srtt = self.rto.srtt
            self.cc.on_ack(
                acked_bytes, srtt if srtt is not None else 0.0, self.sim.now
            )
        self._arm_rto()
        if acked_bytes and self.on_send_progress:
            self.on_send_progress()

    def _handle_possible_dup_ack(self, segment: TcpSegment) -> None:
        if segment.payload or segment.is_fin:
            return  # data segments aren't duplicate ACKs
        if not self._inflight:
            return
        self._dup_acks += 1
        self.stats["dup_acks_received"] += 1
        if self._dup_acks == 3 and self._recovery_point is None:
            self.stats["fast_retransmits"] += 1
            self._recovery_point = self.snd_nxt
            self.cc.on_loss(self.bytes_in_flight(), self.sim.now)
            if self.sack_enabled:
                self._sack_recovery_send(cap=2)
            else:
                self._retransmit_earliest()
        elif self._recovery_point is not None:
            self._sack_recovery_send(cap=1)

    def _apply_sack(self, blocks) -> None:
        if not self.sack_enabled:
            return
        for left, right in blocks:
            for seq, entry in self._inflight.items():
                end = seqnum.seq_add(seq, entry.length())
                if seqnum.seq_ge(seq, left) and seqnum.seq_le(end, right):
                    if not entry.sacked:
                        self.sacked_segments += 1
                    entry.sacked = True
            if self._highest_sacked is None or seqnum.seq_gt(
                right, self._highest_sacked
            ):
                self._highest_sacked = right

    def _sack_recovery_send(self, cap: int = 2) -> None:
        """SACK-based loss recovery (RFC 6675, simplified).

        Resend up to ``cap`` not-yet-retransmitted holes below the highest
        SACKed sequence.  Pacing at ACK-clock rate (small cap per event)
        avoids retransmission bursts that would themselves overflow the
        bottleneck queue — the difference between ~5 and ~25 Mbps after a
        slow-start overshoot on a 30 Mbps path.
        """
        if not self.sack_enabled:
            return
        budget_bytes = self.cc.window() - self._pipe_estimate()
        highest = self._highest_sacked
        sent = 0
        # Insertion order is sequence order, so iterating the scoreboard
        # directly visits entries exactly as the sorted reference would.
        ordered = (
            list(self._inflight.values())
            if fastpath.flags["tcp.ack"]
            else sorted(
                self._inflight.values(),
                key=lambda e: seqnum.seq_sub(e.seq, self.snd_una),
            )
        )
        for entry in ordered:
            if sent >= cap or budget_bytes <= 0:
                break
            if entry.sacked or entry.retransmitted:
                continue
            end = seqnum.seq_add(entry.seq, entry.length())
            eligible = entry.lost or (
                highest is not None and seqnum.seq_gt(highest, end)
            )
            if not eligible:
                continue  # no loss evidence for this segment yet
            budget_bytes -= entry.length()
            entry.retransmitted = True
            entry.send_time = self.sim.now
            self.stats["retransmissions"] += 1
            flags = Flags.ACK | (Flags.FIN if entry.fin else Flags.PSH)
            self._transmit(
                self._make_segment(flags=flags, seq=entry.seq, payload=entry.data)
            )
            sent += 1

    # -- data receive ---------------------------------------------------------------

    def _handle_data(self, segment: TcpSegment) -> None:
        if self.state not in (
            ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, SYN_RCVD, CLOSE_WAIT, CLOSING,
        ):
            return
        seq = segment.seq
        payload = segment.payload

        if segment.is_fin:
            fin_seq = seqnum.seq_add(seq, len(payload))
            self._peer_fin_seq = fin_seq

        if payload:
            self.stats["bytes_received"] += len(payload)
            if seqnum.seq_lt(seq, self.rcv_nxt):
                # Partially or fully duplicated segment.
                overlap = seqnum.seq_sub(self.rcv_nxt, seq)
                if overlap < len(payload):
                    payload = payload[overlap:]
                    seq = self.rcv_nxt
                else:
                    payload = b""
            if payload and seqnum.seq_sub(seq, self.rcv_nxt) <= self.rcv_wnd_limit:
                self._reassembly.setdefault(seq, payload)
                self._drain_reassembly()

        self._process_peer_fin()
        if not self.delayed_ack or segment.is_fin or self._reassembly:
            # Immediate ACK (also for out-of-order data: fast retransmit
            # at the sender depends on prompt duplicate ACKs).
            self._send_ack_now()
        else:
            self._ack_pending_segments += 1
            if self._ack_pending_segments >= 2:
                self._send_ack_now()
            elif self._delayed_ack_event is None:
                self._delayed_ack_event = self.sim.schedule(
                    0.040, self._send_ack_now
                )

    def _send_ack_now(self) -> None:
        self._ack_pending_segments = 0
        if self._delayed_ack_event is not None:
            self._delayed_ack_event.cancel()
            self._delayed_ack_event = None
        self._send_ack()

    def _drain_reassembly(self) -> None:
        delivered = bytearray()
        while self._reassembly:
            # Earliest chunk relative to rcv_nxt.
            seq = min(
                self._reassembly, key=lambda s: seqnum.seq_sub(s, self.rcv_nxt)
            )
            offset = seqnum.seq_sub(self.rcv_nxt, seq)
            if offset < 0:
                break  # hole before the earliest buffered chunk
            data = self._reassembly.pop(seq)
            if offset < len(data):
                chunk = data[offset:]
                delivered.extend(chunk)
                self.rcv_nxt = seqnum.seq_add(self.rcv_nxt, len(chunk))
            # else: chunk entirely duplicates delivered data; discard.
        if delivered:
            self._deliver(bytes(delivered))

    def _deliver(self, data: bytes) -> None:
        if self._paused:
            self._pending_delivery.extend(data)
            return
        if self.on_data:
            self.on_data(data)

    def _process_peer_fin(self) -> None:
        if self._peer_fin_seq is None or self.rcv_nxt != self._peer_fin_seq:
            return
        self.rcv_nxt = seqnum.seq_add(self.rcv_nxt, 1)
        self._peer_fin_seq = None
        if self.state in (ESTABLISHED, SYN_RCVD):
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT_1:
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()
        if self.on_close:
            self.on_close()

    # -- closing ----------------------------------------------------------------------

    def _maybe_finish_close(self, ack: int) -> None:
        if self._fin_seq is None:
            return
        fin_acked = seqnum.seq_gt(ack, self._fin_seq)
        if not fin_acked:
            return
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._enter_closed(notify_error=None)

    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        self._cancel_rto()
        self._time_wait_event = self.sim.schedule(
            2 * self.stack.msl, self._enter_closed, None
        )

    def vanish(self) -> None:
        """Crash-model teardown: the owning process died mid-flight.

        No FIN, no RST, no callbacks — the connection simply ceases to
        exist, exactly like kernel state torn down with its process.
        The peer discovers the death only when its next segment draws an
        RST from the stack (which, having forgotten us, answers unknown
        connections per RFC 793).  Pending timers are cancelled so a
        crashed endpoint cannot fire retransmits from beyond the grave.
        """
        self.on_data = None
        self.on_established = None
        self.on_close = None
        self.on_reset = None
        self.on_error = None
        self.on_send_progress = None
        if self._delayed_ack_event is not None:
            self._delayed_ack_event.cancel()
            self._delayed_ack_event = None
        self._send_queue.clear()
        self._enter_closed(notify_error=None)

    def _enter_closed(self, notify_error: Optional[str]) -> None:
        already_closed = self.state == CLOSED
        self.state = CLOSED
        self._cancel_rto()
        if self._persist_event is not None:
            self._persist_event.cancel()
        if self._time_wait_event is not None:
            self._time_wait_event.cancel()
        self._inflight.clear()
        self._inflight_bytes = 0
        self.stack.forget(self)
        if already_closed:
            return
        if notify_error and self.on_error:
            self.on_error(notify_error)

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        sendable = (ESTABLISHED, CLOSE_WAIT)
        if self.tfo_used and self.state == SYN_RCVD:
            # RFC 7413: a TFO server may send data before the handshake
            # completes (its SYN is already acknowledged by the SYN data).
            sendable = (ESTABLISHED, CLOSE_WAIT, SYN_RCVD)
        if self.state not in sendable:
            self._maybe_send_fin()
            return
        mss = self.effective_mss()
        burst = 0
        # netsim.vectorq: the burst's segments are fully decided by the
        # window checks below before anything reaches the wire, so the
        # fast path serializes them all, ships one batch to the link
        # (which computes the queue service times for the whole burst in
        # numpy), and arms the RTO once.  Window/SWS decisions, packet
        # bytes, and delivery times are identical to the per-segment
        # path; only internal event sequence numbering differs, which the
        # cross-check test pins down via pcap-digest equality.
        batching = fastpath.flags["netsim.vectorq"]
        raw_batch: List[bytes] = []
        while self._send_queue:
            if burst >= _MAX_BURST_SEGMENTS:
                break  # ACK clocking resumes the send (burst avoidance)
            window = min(self.cc.window(), self.snd_wnd)
            available = window - self.bytes_in_flight()
            if available <= 0:
                self._arm_persist_if_needed()
                break
            chunk_len = min(mss, len(self._send_queue), max(available, 0))
            if chunk_len <= 0:
                break
            if chunk_len < mss and chunk_len < len(self._send_queue):
                # Sender-side silly-window-syndrome avoidance (RFC 1122
                # 4.2.3.4): don't dribble sub-MSS segments while more data
                # waits; let the window open to a full segment first.
                break
            chunk = bytes(self._send_queue[:chunk_len])
            del self._send_queue[:chunk_len]
            if batching:
                raw_batch.append(self._prepare_data_segment(chunk))
            else:
                self._send_data_segment(chunk)
            burst += 1
        if raw_batch:
            if len(raw_batch) == 1:
                self._transmit_raw(raw_batch[0])
            else:
                self.stack.send_raw_batch(self, raw_batch)
            self._arm_rto()
        self._maybe_send_fin()

    def _prepare_data_segment(self, chunk: bytes) -> bytes:
        """Sequence/in-flight bookkeeping and serialization for one data
        segment, without transmitting — the burst path ships the returned
        wire bytes in one batch."""
        seq = self.snd_nxt
        segment = self._make_segment(
            flags=Flags.ACK | Flags.PSH, seq=seq, payload=chunk
        )
        self.snd_nxt = seqnum.seq_add(self.snd_nxt, len(chunk))
        entry = _Inflight(seq=seq, data=chunk, send_time=self.sim.now)
        self._inflight[seq] = entry
        self._inflight_bytes += len(chunk)
        if self._first_unacked_time is None:
            self._first_unacked_time = self.sim.now
        self.stats["bytes_sent"] += len(chunk)
        self.stats["segments_sent"] += 1
        return segment.to_bytes(self.local_addr, self.remote_addr)

    def _send_data_segment(self, chunk: bytes) -> None:
        self._transmit_raw(self._prepare_data_segment(chunk))
        self._arm_rto()

    def _maybe_send_fin(self) -> None:
        if not self._fin_pending or self._fin_sent or self._send_queue:
            return
        if self.state not in (ESTABLISHED, CLOSE_WAIT, SYN_RCVD):
            return
        seq = self.snd_nxt
        fin = self._make_segment(flags=Flags.FIN | Flags.ACK, seq=seq)
        self.snd_nxt = seqnum.seq_add(self.snd_nxt, 1)
        self._inflight[seq] = _Inflight(
            seq=seq, data=b"", fin=True, send_time=self.sim.now
        )
        self._inflight_bytes += 1
        self._fin_sent = True
        self._fin_seq = seq
        self.state = FIN_WAIT_1 if self.state in (ESTABLISHED, SYN_RCVD) else LAST_ACK
        self._transmit(fin)
        self._arm_rto()

    def _send_ack(self) -> None:
        options = []
        if self.sack_enabled and self._reassembly:
            blocks = self._sack_blocks()
            if blocks:
                options.append(SackBlocks(blocks=tuple(blocks[:3])))
        ack = self._make_segment(flags=Flags.ACK, seq=self.snd_nxt, options=options)
        self._transmit(ack)

    def _sack_blocks(self) -> List[Tuple[int, int]]:
        """Coalesce the reassembly queue into SACK ranges."""
        if not self._reassembly:
            return []
        spans = sorted(
            ((seq, seqnum.seq_add(seq, len(data))) for seq, data in self._reassembly.items()),
            key=lambda span: seqnum.seq_sub(span[0], self.rcv_nxt),
        )
        merged = [list(spans[0])]
        for left, right in spans[1:]:
            if seqnum.seq_le(left, merged[-1][1]):
                if seqnum.seq_gt(right, merged[-1][1]):
                    merged[-1][1] = right
            else:
                merged.append([left, right])
        return [(left, right) for left, right in merged]

    def _make_segment(
        self,
        flags: int,
        seq: int,
        payload: bytes = b"",
        options: Optional[list] = None,
    ) -> TcpSegment:
        options = list(options or [])
        options.append(Timestamps(value=self._ts_now(), echo_reply=self._ts_recent))
        if flags == Flags.SYN:
            window_field = min(self._advertised_window(), 0xFFFF)
        else:
            # The 16-bit field silently truncates; clamp so a stripped
            # window-scale option degrades to a small window, not zero.
            window_field = min(
                self._advertised_window() >> self.rcv_ws_shift, 0xFFFF
            )
        if fastpath.flags["wire.cache"]:
            # Send-path construction: fill the instance dict directly
            # instead of running nine __setattr__ calls through the
            # dataclass __init__.  Values match the reference constructor
            # below exactly (urgent defaults to 0, no cached wire bytes).
            segment = object.__new__(TcpSegment)
            segment.__dict__.update(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=seq,
                ack=self.rcv_nxt,
                flags=flags,
                window=window_field,
                options=options,
                payload=payload,
                urgent=0,
                _wire=None,
            )
            return segment
        return TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt,
            flags=flags,
            window=window_field,
            options=options,
            payload=payload,
        )

    def _advertised_window(self) -> int:
        used = len(self._pending_delivery) + sum(
            len(d) for d in self._reassembly.values()
        )
        return max(self.rcv_wnd_limit - used, 0)

    def _transmit(self, segment: TcpSegment) -> None:
        self.stats["segments_sent"] += 1
        self._transmit_raw(segment.to_bytes(self.local_addr, self.remote_addr))

    def _transmit_raw(self, raw: bytes) -> None:
        self.stack.send_raw(self, raw)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _arm_rto(self) -> None:
        self._cancel_rto()
        if self._inflight:
            self._rto_event = self.sim.schedule(self.rto.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._inflight:
            return
        self._retries += 1
        self.stats["timeouts"] += 1
        max_retries = _MAX_SYN_RETRIES if self.state in (SYN_SENT, SYN_RCVD) else _MAX_RETRIES
        stalled = (
            self._first_unacked_time is not None
            and self.user_timeout is not None
            and self.sim.now - self._first_unacked_time >= self.user_timeout
        )
        if self._retries > max_retries or stalled:
            reason = "user timeout" if stalled else "too many retransmissions"
            self._enter_closed(notify_error=reason)
            return
        self.rto.on_timeout()
        self.cc.on_timeout(self.bytes_in_flight(), self.sim.now)
        self._dup_acks = 0
        self._recovery_point = None
        self._rto_point = self.snd_nxt
        self._highest_sacked = None
        for entry in self._inflight.values():
            # RFC 6675 after RTO: everything outstanding is deemed lost
            # and prior retransmission evidence is discarded; partial
            # ACKs will re-drive go-back-N-style repair in slow start.
            entry.retransmitted = False
            entry.lost = True
        self._retransmit_earliest()
        self._arm_rto()

    def _pipe_estimate(self) -> int:
        """RFC 6675 pipe: bytes actually in flight.

        Unsacked segments with SACK evidence *beyond* them are deemed
        lost (IsLost) and excluded — unless they were retransmitted, in
        which case the retransmission is in flight and counts.
        """
        pipe = 0
        highest = self._highest_sacked
        for entry in self._inflight.values():
            if entry.sacked:
                continue
            end = seqnum.seq_add(entry.seq, entry.length())
            deemed_lost = entry.lost or (
                highest is not None and seqnum.seq_gt(highest, end)
            )
            if entry.retransmitted or not deemed_lost:
                pipe += entry.length()
        return pipe

    def _retransmit_earliest(self) -> None:
        if fastpath.flags["tcp.ack"]:
            # First unsacked entry in insertion (== sequence) order.
            entry = next(
                (e for e in self._inflight.values() if not e.sacked), None
            )
            if entry is None:
                return
        else:
            candidates = sorted(
                (
                    entry
                    for entry in self._inflight.values()
                    if not entry.sacked
                ),
                key=lambda entry: seqnum.seq_sub(entry.seq, self.snd_una),
            )
            if not candidates:
                return
            entry = candidates[0]
        entry.retransmitted = True
        entry.send_time = self.sim.now
        self.stats["retransmissions"] += 1
        if entry.syn:
            if self.state == SYN_SENT:
                if self._syn_had_tfo and self._retries >= 2:
                    # TFO fallback (RFC 7413 section 4.1.3): a middlebox may
                    # be dropping SYNs that carry data or the TFO option —
                    # retry with a plain SYN.
                    self._send_queue[:0] = entry.data
                    self._inflight_bytes -= len(entry.data)
                    entry.data = b""
                    self.tfo_used = False
                    self._syn_had_tfo = False
                    self.snd_nxt = seqnum.seq_add(self.iss, 1)
                    plain_syn = TcpSegment(
                        src_port=self.local_port,
                        dst_port=self.remote_port,
                        seq=self.iss,
                        flags=Flags.SYN,
                        window=min(self.rcv_wnd_limit, 0xFFFF),
                        options=[
                            MaximumSegmentSize(mss=self.mss),
                            WindowScale(shift=self.rcv_ws_shift),
                            SackPermitted(),
                            Timestamps(value=self._ts_now(), echo_reply=0),
                        ],
                    )
                    self.sent_syn_bytes = plain_syn.to_bytes(
                        self.local_addr, self.remote_addr
                    )
                # Retransmit the SYN exactly as (last) built.
                self._transmit_raw(self.sent_syn_bytes)
                self.stats["segments_sent"] += 1
            else:
                syn_ack = self._make_segment(
                    flags=Flags.SYN | Flags.ACK, seq=entry.seq,
                    options=[
                        MaximumSegmentSize(mss=self.mss),
                        WindowScale(shift=self.rcv_ws_shift),
                    ],
                )
                self._transmit(syn_ack)
            return
        flags = Flags.ACK | (Flags.FIN if entry.fin else Flags.PSH)
        segment = self._make_segment(flags=flags, seq=entry.seq, payload=entry.data)
        self._transmit(segment)

    def _arm_persist_if_needed(self) -> None:
        if self.snd_wnd > 0 or self._persist_event is not None:
            return
        if not self._send_queue:
            return
        self._persist_event = self.sim.schedule(0.5, self._persist_probe)

    def _persist_probe(self) -> None:
        self._persist_event = None
        if self.state not in (ESTABLISHED, CLOSE_WAIT) or not self._send_queue:
            return
        if self.snd_wnd == 0:
            # One-byte window probe.
            probe = self._make_segment(
                flags=Flags.ACK | Flags.PSH,
                seq=self.snd_nxt,
                payload=bytes(self._send_queue[:1]),
            )
            self._transmit(probe)
            self._persist_event = self.sim.schedule(1.0, self._persist_probe)
        else:
            self._try_send()

    # ------------------------------------------------------------------
    # Option negotiation
    # ------------------------------------------------------------------

    def _negotiate_from_options(self, syn: TcpSegment) -> None:
        mss_option = find_option(syn.options, MaximumSegmentSize)
        if mss_option is not None:
            self.peer_mss = mss_option.mss
        ws_option = find_option(syn.options, WindowScale)
        self.snd_ws_shift = ws_option.shift if ws_option is not None else 0
        if ws_option is None:
            self.rcv_ws_shift = 0  # both sides must agree
        self.sack_enabled = find_option(syn.options, SackPermitted) is not None
        uto_option = find_option(syn.options, UserTimeout)
        if uto_option is not None:
            # Peer-advertised, so subject to the same local policy cap
            # as the secure-channel path: RFC 5482 lets the wire format
            # claim ~23 days.
            self.user_timeout = min(
                uto_option.timeout_seconds(), MAX_USER_TIMEOUT_SECONDS
            )

    def _ts_now(self) -> int:
        return int(self.sim.now * 1000) & 0xFFFFFFFF

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.local_addr}:{self.local_port} -> "
            f"{self.remote_addr}:{self.remote_port} {self.state}>"
        )
