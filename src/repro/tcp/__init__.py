"""A byte-accurate TCP implementation running on the simulated network.

This substitutes for the Linux kernel stack the paper runs on: segments
are serialized to real wire format (so middleboxes can parse, strip, and
rewrite them), connections run the full FSM with retransmission (RFC
6298 RTO, fast retransmit, SACK-assisted recovery), flow control, and
pluggable congestion control (NewReno and CUBIC).

Entry points:

- ``TcpStack`` — per-host TCP instance; register it on a ``Host``.
- ``TcpConnection`` — one connection's state machine and socket-like API.
- ``congestion`` — congestion-controller implementations.
"""

from repro.tcp.segment import TcpSegment, Flags
from repro.tcp.options import (
    MaximumSegmentSize,
    NoOperation,
    SackBlocks,
    SackPermitted,
    TcpOption,
    FastOpenCookie,
    Timestamps,
    UserTimeout,
    WindowScale,
)
from repro.tcp.stack import TcpStack
from repro.tcp.connection import TcpConnection

__all__ = [
    "TcpSegment",
    "Flags",
    "TcpOption",
    "MaximumSegmentSize",
    "NoOperation",
    "WindowScale",
    "SackPermitted",
    "SackBlocks",
    "Timestamps",
    "UserTimeout",
    "FastOpenCookie",
    "TcpStack",
    "TcpConnection",
]
