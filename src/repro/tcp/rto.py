"""Retransmission timeout estimation (RFC 6298)."""

from __future__ import annotations

from typing import Optional


class RtoEstimator:
    """Maintains SRTT/RTTVAR and the retransmission timeout.

    ``srtt`` is ``None`` until the first sample arrives — an explicit
    "unmeasured" sentinel rather than 0.0, because a measured RTT of
    zero is a legal value in the simulator (two stacks on the same
    zero-delay link) and consumers like the RTT-weighted schedulers must
    be able to tell "blazingly fast" from "never measured".

    ``min_rto`` defaults to 200 ms, the Linux floor rather than RFC
    6298's conservative 1 s, because the simulated topologies have
    LAN-to-WAN scale RTTs.

    One of these exists per TCP connection, so at server-farm scale the
    class is ``__slots__``-packed.
    """

    __slots__ = (
        "srtt",
        "rttvar",
        "rto",
        "min_rto",
        "max_rto",
        "_alpha",
        "_beta",
        "samples",
    )

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        alpha: float = 1 / 8,
        beta: float = 1 / 4,
    ) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.rto: float = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._alpha = alpha
        self._beta = beta
        self.samples = 0

    def on_measurement(self, rtt: float) -> None:
        """Feed one RTT sample (never from a retransmitted segment — Karn)."""
        if rtt < 0:
            raise ValueError("negative RTT sample")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = (1 - self._beta) * self.rttvar + self._beta * abs(
                self.srtt - rtt
            )
            self.srtt = (1 - self._alpha) * self.srtt + self._alpha * rtt
        self.rto = self._clamp(self.srtt + max(4 * self.rttvar, 0.001))

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self.rto = self._clamp(self.rto * 2)

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min_rto), self.max_rto)
