"""Per-host TCP instance: demultiplexing, listeners, port allocation.

One ``TcpStack`` attaches to one ``Host`` (registering itself as the
handler for IP protocol 6) and owns every TCP connection terminating on
that host — across *all* of the host's addresses, which matters for
TCPLS multihoming: the same stack serves the v4 and the v6 interface.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from repro import fastpath
from repro.netsim.node import Host, Interface
from repro.netsim.packet import Datagram, IPAddress, PROTO_TCP, parse_address
from repro.tcp.connection import TcpConnection
from repro.tcp.fastopen import FastOpenManager
from repro.tcp.options import FastOpenCookie, find_option
from repro.tcp.segment import Flags, TcpSegment
from repro.utils.errors import DecodeError, ProtocolViolation

_EPHEMERAL_BASE = 49152


class Listener:
    """A passive socket bound to a local port."""

    def __init__(
        self,
        stack: "TcpStack",
        port: int,
        on_connection: Callable[[TcpConnection], None],
        fast_open: bool = False,
        congestion: str = "reno",
    ) -> None:
        self.stack = stack
        self.port = port
        self.on_connection = on_connection
        self.fast_open = fast_open
        self.congestion = congestion
        self.connections_accepted = 0

    def handle_syn(
        self, datagram: Datagram, segment: TcpSegment, raw_payload: bytes
    ) -> None:
        conn = TcpConnection(
            stack=self.stack,
            local_addr=datagram.dst,
            local_port=self.port,
            remote_addr=datagram.src,
            remote_port=segment.src_port,
            mss=self.stack.mss,
            congestion=self.congestion,
        )
        tfo_ok = False
        tfo_option = find_option(segment.options, FastOpenCookie)
        if self.fast_open and tfo_option is not None and tfo_option.cookie:
            tfo_ok = self.stack.fastopen.validate_cookie(
                datagram.src, tfo_option.cookie
            )
        self.stack.register(conn)
        self.connections_accepted += 1
        # Hand the connection to the application *before* the handshake
        # completes so it can attach callbacks (and receive TFO data).
        # The state is already SYN_RCVD so the app may queue data, which
        # flows once the handshake finishes.
        conn.state = "SYN_RCVD"
        self.on_connection(conn)
        conn.open_passive(segment, raw_payload, tfo_cookie_ok=tfo_ok)


class TcpStack:
    """TCP for one simulated host."""

    def __init__(
        self,
        host: Host,
        seed: int = 0,
        mss: int = 1400,
        msl: float = 1.0,
        congestion: str = "reno",
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.mss = mss
        self.msl = msl
        self.default_congestion = congestion
        self.fastopen = FastOpenManager()
        self._rng = random.Random(seed)
        self._connections: Dict[Tuple, TcpConnection] = {}
        # Parallel demux map keyed on integer address values instead of
        # ``ipaddress`` objects: hashing an IPv4Address builds a hex
        # string per call in CPython, so the per-segment lookup in
        # ``_on_datagram`` keys on ``(cls, int, port, int, port)`` when
        # the netsim.fast flag is on.  Always maintained; only consulted
        # behind the flag.  The address class keeps v4/v6 keys distinct.
        self._connections_fast: Dict[Tuple, TcpConnection] = {}
        self._listeners: Dict[int, Listener] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        self.segments_dropped_checksum = 0
        self.segments_dropped_malformed = 0
        self.rsts_sent = 0
        host.register_protocol(PROTO_TCP, self._on_datagram)

    # -- public API ---------------------------------------------------------

    def listen(
        self,
        port: int,
        on_connection: Callable[[TcpConnection], None],
        fast_open: bool = False,
        congestion: Optional[str] = None,
    ) -> Listener:
        if port in self._listeners:
            raise ValueError(f"port {port} already has a listener")
        listener = Listener(
            self,
            port,
            on_connection,
            fast_open=fast_open,
            congestion=congestion or self.default_congestion,
        )
        self._listeners[port] = listener
        return listener

    def unlisten(self, port: int) -> None:
        """Drop the listener on ``port`` (no-op when absent).

        Models the listening socket dying with its process: later SYNs
        to the port draw an RST (connection refused) from
        ``_on_datagram``'s fall-through, which is exactly what makes a
        crashed server's clients fail fast instead of timing out.
        """
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_addr,
        remote_port: int,
        local_addr=None,
        local_port: Optional[int] = None,
        congestion: Optional[str] = None,
        fast_open: bool = False,
        fast_open_data: bytes = b"",
    ) -> TcpConnection:
        """Active open.  ``local_addr`` selects the source interface —
        the hook TCPLS's explicit multipath uses to pin a connection to a
        path (``tcpls_connect(src, dest)``)."""
        remote_addr = _as_address(remote_addr)
        if local_addr is None:
            local_addr = self._pick_source_address(remote_addr)
        else:
            local_addr = _as_address(local_addr)
            if not self.host.owns_address(local_addr):
                raise ValueError(f"{self.host.name} does not own {local_addr}")
        if local_port is None:
            local_port = self._allocate_port()
        conn = TcpConnection(
            stack=self,
            local_addr=local_addr,
            local_port=local_port,
            remote_addr=remote_addr,
            remote_port=remote_port,
            mss=self.mss,
            congestion=congestion or self.default_congestion,
        )
        self.register(conn)
        cookie: Optional[bytes] = None
        if fast_open:
            cookie = self.fastopen.cookie_for(remote_addr)
            if cookie is None:
                cookie = b""  # request one
        conn.open_active(fast_open_cookie=cookie, fast_open_data=fast_open_data)
        return conn

    # -- plumbing -----------------------------------------------------------------

    def allocate_iss(self) -> int:
        return self._rng.randrange(1 << 32)

    def register(self, conn: TcpConnection) -> None:
        key = conn.four_tuple
        if key in self._connections:
            raise ValueError(f"connection {key} already exists")
        self._connections[key] = conn
        self._connections_fast[_fast_key(conn)] = conn

    def forget(self, conn: TcpConnection) -> None:
        self._connections.pop(conn.four_tuple, None)
        self._connections_fast.pop(_fast_key(conn), None)

    def send_raw(self, conn: TcpConnection, raw_segment: bytes) -> None:
        datagram = Datagram(
            src=conn.local_addr,
            dst=conn.remote_addr,
            protocol=PROTO_TCP,
            payload=raw_segment,
        )
        self.host.send_ip(datagram)

    def send_raw_batch(self, conn: TcpConnection, raw_segments) -> None:
        """Burst form of :meth:`send_raw` (the ``netsim.vectorq`` path).

        All segments belong to one connection, so they share a
        destination and the whole burst reaches the outgoing link as a
        single batched enqueue.
        """
        src = conn.local_addr
        dst = conn.remote_addr
        self.host.send_ip_batch(
            [
                Datagram(src=src, dst=dst, protocol=PROTO_TCP, payload=raw)
                for raw in raw_segments
            ]
        )

    def connection_count(self) -> int:
        return len(self._connections)

    def _allocate_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = _EPHEMERAL_BASE
        return port

    def _pick_source_address(self, remote_addr: IPAddress):
        out = self.host.lookup_route(remote_addr)
        if out is None:
            raise ValueError(f"no route from {self.host.name} to {remote_addr}")
        address = out.address_for_family(remote_addr.version)
        if address is None:
            raise ValueError(
                f"interface {out.name} has no v{remote_addr.version} address"
            )
        return address

    # -- input ------------------------------------------------------------------------

    def _on_datagram(self, datagram: Datagram, interface: Interface) -> None:
        try:
            segment = TcpSegment.from_bytes(
                datagram.payload, datagram.src, datagram.dst, verify_checksum=True
            )
        except DecodeError:
            # Structurally invalid segment (truncated header, lying
            # option length, bad offset): fail closed and drop it.
            self.segments_dropped_malformed += 1
            return
        except ProtocolViolation:
            self.segments_dropped_checksum += 1
            return
        if fastpath.flags["netsim.fast"]:
            dst = datagram.dst
            conn = self._connections_fast.get(
                (dst.__class__, dst._ip, segment.dst_port,
                 datagram.src._ip, segment.src_port)
            )
        else:
            key = (datagram.dst, segment.dst_port, datagram.src, segment.src_port)
            conn = self._connections.get(key)
        if conn is not None:
            conn.on_segment(segment)
            return
        listener = self._listeners.get(segment.dst_port)
        if listener is not None and segment.is_syn and not segment.is_ack:
            listener.handle_syn(datagram, segment, datagram.payload)
            return
        self._send_reset_for(datagram, segment)

    def _send_reset_for(self, datagram: Datagram, segment: TcpSegment) -> None:
        """RFC 793: RST for segments to nonexistent connections."""
        if segment.is_rst:
            return
        self.rsts_sent += 1
        if segment.is_ack:
            rst = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=segment.ack,
                flags=Flags.RST,
            )
        else:
            rst = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=0,
                ack=(segment.seq + segment.sequence_space()) & 0xFFFFFFFF,
                flags=Flags.RST | Flags.ACK,
            )
        self.host.send_ip(
            Datagram(
                src=datagram.dst,
                dst=datagram.src,
                protocol=PROTO_TCP,
                payload=rst.to_bytes(datagram.dst, datagram.src),
            )
        )


def _as_address(value) -> IPAddress:
    return parse_address(value) if isinstance(value, str) else value


def _fast_key(conn: TcpConnection) -> Tuple:
    """Integer-valued demux key matching ``_on_datagram``'s fast lookup."""
    local = conn.local_addr
    return (
        local.__class__,
        local._ip,
        conn.local_port,
        conn.remote_addr._ip,
        conn.remote_port,
    )
