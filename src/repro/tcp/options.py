"""TCP options: the kind/length/value encodings from the RFCs.

The 40-byte option-space ceiling that motivates TCPLS section 3.1 is
enforced here for real: ``encode_options`` raises if the assembled option
block exceeds what a TCP header can carry.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro import fastpath
from repro.utils.bytesio import ByteReader, ByteWriter, NeedMoreData
from repro.utils.errors import InvalidValue, ProtocolViolation, decode_guard

KIND_EOL = 0
KIND_NOP = 1
KIND_MSS = 2
KIND_WINDOW_SCALE = 3
KIND_SACK_PERMITTED = 4
KIND_SACK = 5
KIND_TIMESTAMPS = 8
KIND_USER_TIMEOUT = 28
KIND_FAST_OPEN = 34
KIND_EXPERIMENTAL = 254

MAX_OPTION_SPACE = 40  # TCP header is at most 60 bytes, 20 are fixed.


@dataclass(frozen=True)
class TcpOption:
    """Base class; concrete options define ``kind`` and a body codec."""

    kind: int = field(init=False, default=-1)

    def body(self) -> bytes:
        raise NotImplementedError

    def encoded_length(self) -> int:
        return 2 + len(self.body())


@dataclass(frozen=True)
class NoOperation(TcpOption):
    kind = KIND_NOP

    def body(self) -> bytes:
        return b""

    def encoded_length(self) -> int:
        return 1


@dataclass(frozen=True)
class MaximumSegmentSize(TcpOption):
    kind = KIND_MSS
    mss: int = 1460

    def body(self) -> bytes:
        return self.mss.to_bytes(2, "big")


@dataclass(frozen=True)
class WindowScale(TcpOption):
    kind = KIND_WINDOW_SCALE
    shift: int = 7

    def body(self) -> bytes:
        return bytes([self.shift])


@dataclass(frozen=True)
class SackPermitted(TcpOption):
    kind = KIND_SACK_PERMITTED

    def body(self) -> bytes:
        return b""


@dataclass(frozen=True)
class SackBlocks(TcpOption):
    """SACK option (RFC 2018); each block is a (left, right) seq range."""

    kind = KIND_SACK
    blocks: Tuple[Tuple[int, int], ...] = ()

    def body(self) -> bytes:
        return b"".join(
            struct.pack("!II", left & 0xFFFFFFFF, right & 0xFFFFFFFF)
            for left, right in self.blocks
        )


@dataclass(frozen=True)
class Timestamps(TcpOption):
    kind = KIND_TIMESTAMPS
    value: int = 0
    echo_reply: int = 0

    def body(self) -> bytes:
        return struct.pack(
            "!II", self.value & 0xFFFFFFFF, self.echo_reply & 0xFFFFFFFF
        )


#: Local policy cap on a peer-advertised user timeout (RFC 5482 §4.1
#: requires honoring local limits).  The wire format can express up to
#: 32767 minutes (~23 days); accepting that verbatim lets a peer pin
#: connection state nearly forever, so anything above an hour is
#: clamped at the point the option is applied.
MAX_USER_TIMEOUT_SECONDS = 3600.0


@dataclass(frozen=True)
class UserTimeout(TcpOption):
    """TCP User Timeout option (RFC 5482): granularity flag + 15-bit value.

    This is the option the TCPLS prototype carries over the secure
    channel instead of the TCP header (paper section 3.1).
    """

    kind = KIND_USER_TIMEOUT
    granularity_minutes: bool = False
    timeout: int = 0  # seconds or minutes per the granularity flag

    def body(self) -> bytes:
        if not 0 <= self.timeout < (1 << 15):
            raise ValueError("user timeout must fit in 15 bits")
        value = (int(self.granularity_minutes) << 15) | self.timeout
        return value.to_bytes(2, "big")

    def timeout_seconds(self) -> float:
        return self.timeout * (60.0 if self.granularity_minutes else 1.0)


@dataclass(frozen=True)
class FastOpenCookie(TcpOption):
    """TCP Fast Open option (RFC 7413): empty = cookie request."""

    kind = KIND_FAST_OPEN
    cookie: bytes = b""

    def body(self) -> bytes:
        if len(self.cookie) > 16:
            raise ValueError("TFO cookie longer than 16 bytes")
        return self.cookie


@dataclass(frozen=True)
class RawOption(TcpOption):
    """Catch-all for unknown kinds so middlebox tests can round-trip them."""

    raw_kind: int = KIND_EXPERIMENTAL
    data: bytes = b""

    @property
    def kind(self) -> int:  # type: ignore[override]
        return self.raw_kind

    def body(self) -> bytes:
        return self.data


def encode_options(options: List[TcpOption]) -> bytes:
    """Serialize options with NOP-free padding to a 4-byte boundary.

    Runs once per transmitted segment, so the ``wire.cache`` fast path
    assembles a parts list and joins it once; the ``ByteWriter``
    reference below is the specification and emits identical bytes.
    """
    if not fastpath.flags["wire.cache"]:
        return _encode_options_reference(options)
    parts: List[bytes] = []
    length = 0
    for option in options:
        if isinstance(option, NoOperation):
            parts.append(b"\x01")
            length += 1
            continue
        body = option.body()
        parts.append(bytes((option.kind, 2 + len(body))))
        parts.append(body)
        length += 2 + len(body)
    if length > MAX_OPTION_SPACE:
        raise ProtocolViolation(
            f"TCP options exceed the 40-byte header budget ({length}B)"
        )
    parts.append(b"\x00" * ((-length) % 4))
    return b"".join(parts)


def _encode_options_reference(options: List[TcpOption]) -> bytes:
    """Original writer-based encoder (the scalar-baseline path)."""
    writer = ByteWriter()
    for option in options:
        if isinstance(option, NoOperation):
            writer.put_u8(KIND_NOP)
            continue
        body = option.body()
        writer.put_u8(option.kind).put_u8(2 + len(body)).put_bytes(body)
    encoded = writer.getvalue()
    if len(encoded) > MAX_OPTION_SPACE:
        raise ProtocolViolation(
            f"TCP options exceed the 40-byte header budget ({len(encoded)}B)"
        )
    padding = (-len(encoded)) % 4
    return encoded + b"\x00" * padding


def decode_options(data: bytes) -> List[TcpOption]:
    """Parse an option block back into option objects.

    Fast path (``wire.cache``): index-based scan, no ``ByteReader``
    allocation — this runs once per received segment.  Truncated
    buffers raise ``NeedMoreData`` exactly like the reader-based
    reference parser.

    Fail-closed rules (both paths): a kind/length option whose length
    byte is 0 or 1 is rejected (a zero-length option would loop the
    scan forever), and a length that runs past the end of the option
    block is rejected instead of silently misparsing the tail.
    """
    with decode_guard("TCP option block"):
        if not fastpath.flags["wire.cache"]:
            return _decode_options_reference(data)
        options: List[TcpOption] = []
        offset, end = 0, len(data)
        while offset < end:
            kind = data[offset]
            offset += 1
            if kind == KIND_EOL:
                break
            if kind == KIND_NOP:
                options.append(NoOperation())
                continue
            if offset >= end:
                raise NeedMoreData("wanted 1 bytes, only 0 available")
            length = data[offset]
            offset += 1
            if length < 2:
                raise InvalidValue(f"TCP option kind {kind} with length {length}")
            body = bytes(data[offset : offset + length - 2])
            if len(body) != length - 2:
                raise NeedMoreData(
                    f"wanted {length - 2} bytes, only {len(body)} available"
                )
            offset += length - 2
            options.append(_decode_one(kind, body))
        return options


def _decode_options_reference(data: bytes) -> List[TcpOption]:
    """Original reader-based decoder (the scalar-baseline path)."""
    reader = ByteReader(data)
    options: List[TcpOption] = []
    while not reader.is_empty():
        kind = reader.get_u8()
        if kind == KIND_EOL:
            break
        if kind == KIND_NOP:
            options.append(NoOperation())
            continue
        length = reader.get_u8()
        if length < 2:
            raise InvalidValue(f"TCP option kind {kind} with length {length}")
        body = reader.get_bytes(length - 2)
        options.append(_decode_one(kind, body))
    return options


def _decode_one(kind: int, body: bytes) -> TcpOption:
    with decode_guard(f"TCP option kind {kind}"):
        return _decode_one_inner(kind, body)


def _decode_one_inner(kind: int, body: bytes) -> TcpOption:
    if kind == KIND_MSS and len(body) == 2:
        return MaximumSegmentSize(mss=int.from_bytes(body, "big"))
    if kind == KIND_WINDOW_SCALE and len(body) == 1:
        return WindowScale(shift=body[0])
    if kind == KIND_SACK_PERMITTED and not body:
        return SackPermitted()
    if kind == KIND_SACK and len(body) % 8 == 0:
        words = struct.unpack(f"!{len(body) // 4}I", body)
        blocks = tuple(
            (words[i], words[i + 1]) for i in range(0, len(words), 2)
        )
        return SackBlocks(blocks=blocks)
    if kind == KIND_TIMESTAMPS and len(body) == 8:
        value, echo = struct.unpack("!II", body)
        return Timestamps(value=value, echo_reply=echo)
    if kind == KIND_USER_TIMEOUT and len(body) == 2:
        value = int.from_bytes(body, "big")
        return UserTimeout(
            granularity_minutes=bool(value >> 15), timeout=value & 0x7FFF
        )
    if kind == KIND_FAST_OPEN and len(body) <= 16:
        return FastOpenCookie(cookie=body)
    return RawOption(raw_kind=kind, data=body)


def decode_single_option(kind: int, body: bytes) -> TcpOption:
    """Decode one option from its kind and body (no kind/len framing)."""
    return _decode_one(kind, body)


def find_option(options: List[TcpOption], option_type: type):
    """Return the first option of the given type, or None."""
    for option in options:
        if isinstance(option, option_type):
            return option
    return None
