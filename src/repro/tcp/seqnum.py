"""Modular 32-bit sequence-number arithmetic (RFC 793 section 3.3)."""

from __future__ import annotations

MOD = 1 << 32
_HALF = 1 << 31


def seq_add(a: int, b: int) -> int:
    return (a + b) % MOD


def seq_sub(a: int, b: int) -> int:
    """a - b in sequence space, interpreted as a signed distance."""
    diff = (a - b) % MOD
    return diff - MOD if diff >= _HALF else diff


def seq_lt(a: int, b: int) -> bool:
    return seq_sub(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_sub(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_sub(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_sub(a, b) >= 0


def seq_between(low: int, value: int, high: int) -> bool:
    """low <= value < high in sequence space."""
    return seq_le(low, value) and seq_lt(value, high)
