"""TCP segment wire format (RFC 793) with a real Internet checksum.

Segments serialize to genuine header bytes so that middleboxes in
``repro.netsim.middlebox`` can observe and rewrite exactly what a
hardware middlebox would — the mechanism behind the paper's middlebox
interference and SYN-echo detection experiments (sections 2.1 and 4.5).

Fast path (``fastpath`` feature ``wire.cache``):

- :func:`internet_checksum` folds the whole buffer through one big-int
  conversion instead of a Python loop over 16-bit words (``2^16 ≡ 1
  (mod 0xFFFF)``, so the byte string's big-endian value is congruent to
  its ones-complement word sum).  The original loop survives as
  :func:`internet_checksum_reference`; both agree on every input.
- :meth:`TcpSegment.to_bytes` serializes into a single buffer with the
  checksum patched in place, and caches the wire bytes on the segment.
  Any header/payload attribute assignment invalidates the cache;
  :meth:`TcpSegment.from_bytes` seeds it with the original raw bytes
  (only when their checksum verifies), so parse → forward round-trips
  are byte-identical *and* free.
- :class:`TcpHeaderPeek` reads the fixed header fields straight out of a
  raw buffer so middleboxes can decide pass/rewrite without a full
  parse; :func:`patch_checksum` refreshes a raw segment they edited in
  place.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import fastpath
from repro.netsim.packet import IPAddress, PROTO_TCP
from repro.tcp.options import TcpOption, decode_options, encode_options
from repro.utils.errors import (
    InvalidValue,
    ProtocolViolation,
    TruncatedInput,
    decode_guard,
)


class Flags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    @staticmethod
    def names(flags: int) -> str:
        parts = []
        for name in ("FIN", "SYN", "RST", "PSH", "ACK", "URG", "ECE", "CWR"):
            if flags & getattr(Flags, name):
                parts.append(name)
        return "|".join(parts) or "none"


def internet_checksum_reference(data: bytes) -> int:
    """RFC 1071 ones-complement checksum, the original word-loop form.

    Kept as the executable specification for :func:`internet_checksum`;
    the randomized cross-check tests assert the two agree on every input
    (including the ``sum ≡ 0 (mod 0xFFFF)`` folding edge case).
    """
    data = bytes(data)
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _fold(total: int) -> int:
    # total % 0xFFFF equals the fully folded word sum *except* when the
    # sum is a nonzero multiple of 0xFFFF, where the reference folding
    # loop settles on 0xFFFF rather than 0.
    folded = total % 0xFFFF
    if folded == 0 and total:
        folded = 0xFFFF
    return ~folded & 0xFFFF


def internet_checksum(data) -> int:
    """RFC 1071 ones-complement checksum over 16-bit big-endian words.

    Fast path: one ``int.from_bytes`` then a single ``% 0xFFFF`` — since
    ``2^16 ≡ 1 (mod 0xFFFF)``, the big-endian integer value of the
    buffer is congruent to its 16-bit word sum.  Accepts any bytes-like
    object (odd lengths are handled by shifting, never by copying).
    """
    if not fastpath.flags["wire.cache"]:
        return internet_checksum_reference(data)
    total = int.from_bytes(data, "big")
    if len(data) % 2:
        total <<= 8
    return _fold(total)


def internet_checksum_parts(*parts) -> int:
    """Checksum of the concatenation of ``parts`` without concatenating.

    Exact only while every part except the last has even length (so the
    16-bit word boundaries of the virtual concatenation are preserved) —
    true for the TCP pseudo-header, which is 12 bytes for IPv4 and 40
    for IPv6.
    """
    total = 0
    for part in parts:
        value = int.from_bytes(part, "big")
        if len(part) % 2:
            value <<= 8
        total += value
    return _fold(total)


#: (address class, src int, dst int) -> packed src||dst prefix.  The
#: packed form of an address pair never changes, so memoizing it saves
#: two ``packed`` conversions per checksum; keys hash as plain ints.
_PSEUDO_PREFIX: dict = {}


def _pseudo_header(src: IPAddress, dst: IPAddress, tcp_length: int) -> bytes:
    if fastpath.flags["wire.cache"]:
        key = (src.__class__, src._ip, dst._ip)
        prefix = _PSEUDO_PREFIX.get(key)
        if prefix is None:
            prefix = _PSEUDO_PREFIX[key] = src.packed + dst.packed
    else:
        prefix = src.packed + dst.packed
    if src.version == 4:
        return prefix + struct.pack("!BBH", 0, PROTO_TCP, tcp_length)
    return prefix + struct.pack("!IBBBB", tcp_length, 0, 0, 0, PROTO_TCP)


def patch_checksum(buffer: bytearray, src: IPAddress, dst: IPAddress) -> None:
    """Recompute and patch the checksum of a raw TCP segment in place.

    For middleboxes that rewrite header bytes directly instead of going
    through parse → mutate → reserialize.
    """
    buffer[16:18] = b"\x00\x00"
    checksum = internet_checksum_parts(_pseudo_header(src, dst, len(buffer)), buffer)
    struct.pack_into("!H", buffer, 16, checksum)


class TcpHeaderPeek:
    """Fixed-offset view of a TCP header inside a raw buffer.

    Lets middleboxes inspect ports, flags, payload length and option
    kinds without building a :class:`TcpSegment` (no option decoding, no
    payload copy).  Read-only; rewriters copy the buffer and use
    :func:`patch_checksum`.
    """

    __slots__ = ("buffer", "src_port", "dst_port", "flags", "data_offset")

    @classmethod
    def of(cls, data) -> Optional["TcpHeaderPeek"]:
        """Peek at ``data``, or None when it cannot be a TCP segment."""
        if len(data) < 20:
            return None
        offset = (data[12] >> 4) * 4
        if offset < 20 or offset > len(data):
            return None
        peek = cls.__new__(cls)
        peek.buffer = data
        peek.src_port = (data[0] << 8) | data[1]
        peek.dst_port = (data[2] << 8) | data[3]
        peek.flags = data[13]
        peek.data_offset = offset
        return peek

    @property
    def payload_length(self) -> int:
        return len(self.buffer) - self.data_offset

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def is_syn(self) -> bool:
        return self.has(Flags.SYN)

    @property
    def is_ack(self) -> bool:
        return self.has(Flags.ACK)

    def option_kinds(self) -> List[int]:
        """Option kind bytes present, scanned without decoding values."""
        kinds: List[int] = []
        data = self.buffer
        index = 20
        while index < self.data_offset:
            kind = data[index]
            if kind == 0:  # end of option list
                break
            kinds.append(kind)
            if kind == 1:  # NOP
                index += 1
                continue
            if index + 1 >= self.data_offset:
                break
            length = data[index + 1]
            if length < 2:
                break
            index += length
        return kinds


#: Attribute assignments that change the wire encoding drop the cache.
_WIRE_FIELDS = frozenset(
    {
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "options",
        "payload",
        "urgent",
    }
)


@dataclass
class TcpSegment:
    """One TCP segment (header fields + payload)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    options: List[TcpOption] = field(default_factory=list)
    payload: bytes = b""
    urgent: int = 0

    def __setattr__(self, name: str, value) -> None:
        # NOTE: mutating nested objects in place (appending to
        # ``segment.options`` or editing an option object) bypasses this
        # hook — rewriters must assign whole attributes, as every
        # middlebox in ``repro.netsim.middlebox`` does.
        if name in _WIRE_FIELDS:
            object.__setattr__(self, "_wire", None)
        object.__setattr__(self, name, value)

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def is_syn(self) -> bool:
        return self.has(Flags.SYN)

    @property
    def is_ack(self) -> bool:
        return self.has(Flags.ACK)

    @property
    def is_fin(self) -> bool:
        return self.has(Flags.FIN)

    @property
    def is_rst(self) -> bool:
        return self.has(Flags.RST)

    def sequence_space(self) -> int:
        """Bytes of sequence space the segment occupies (SYN/FIN count 1)."""
        length = len(self.payload)
        if self.is_syn:
            length += 1
        if self.is_fin:
            length += 1
        return length

    # -- wire format -----------------------------------------------------

    def to_bytes(self, src: IPAddress, dst: IPAddress) -> bytes:
        if fastpath.flags["wire.cache"]:
            cached: Optional[Tuple[IPAddress, IPAddress, bytes]]
            cached = getattr(self, "_wire", None)
            if cached is not None and cached[0] == src and cached[1] == dst:
                return cached[2]
            wire = self._serialize_fast(src, dst)
            object.__setattr__(self, "_wire", (src, dst, wire))
            return wire
        # Reference path: the original splice-based serializer.
        options_block = encode_options(self.options)
        data_offset_words = 5 + len(options_block) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset_words << 4,
            self.flags,
            self.window & 0xFFFF,
            0,  # checksum placeholder
            self.urgent,
        )
        segment = header + options_block + self.payload
        checksum = internet_checksum_reference(
            _pseudo_header(src, dst, len(segment)) + segment
        )
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]

    def _serialize_fast(self, src: IPAddress, dst: IPAddress) -> bytes:
        """Single-buffer serialization with the checksum patched in place."""
        options_block = encode_options(self.options)
        header_length = 20 + len(options_block)
        buffer = bytearray(header_length + len(self.payload))
        struct.pack_into(
            "!HHIIBBHHH",
            buffer,
            0,
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (header_length // 4) << 4,
            self.flags,
            self.window & 0xFFFF,
            0,  # checksum patched below
            self.urgent,
        )
        buffer[20:header_length] = options_block
        buffer[header_length:] = self.payload
        checksum = internet_checksum_parts(
            _pseudo_header(src, dst, len(buffer)), buffer
        )
        struct.pack_into("!H", buffer, 16, checksum)
        return bytes(buffer)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        src: IPAddress = None,
        dst: IPAddress = None,
        verify_checksum: bool = True,
    ) -> "TcpSegment":
        with decode_guard("TCP segment"):
            if len(data) < 20:
                raise TruncatedInput("TCP segment shorter than minimum header")
            (
                src_port,
                dst_port,
                seq,
                ack,
                offset_flags_hi,
                flags,
                window,
                checksum,
                urgent,
            ) = struct.unpack("!HHIIBBHHH", data[:20])
            data_offset = (offset_flags_hi >> 4) * 4
            if data_offset < 20 or data_offset > len(data):
                raise InvalidValue(f"bad TCP data offset {data_offset}")
            checksum_ok = False
            if src is not None and dst is not None:
                use_fast = fastpath.flags["wire.cache"]
                if verify_checksum or use_fast:
                    if use_fast:
                        checksum_ok = (
                            internet_checksum_parts(
                                _pseudo_header(src, dst, len(data)), data
                            )
                            == 0
                        )
                    else:
                        checksum_ok = (
                            internet_checksum(
                                _pseudo_header(src, dst, len(data)) + bytes(data)
                            )
                            == 0
                        )
                    if verify_checksum and not checksum_ok:
                        raise ProtocolViolation("TCP checksum verification failed")
            options = decode_options(data[20:data_offset])
            if fastpath.flags["wire.cache"]:
                # Receive-path construction bypasses the dataclass __init__
                # (nine __setattr__ calls per segment) and fills the instance
                # dict in one go.  Field values are exactly what the
                # reference constructor below would set.  The wire cache is
                # seeded with the original bytes only when the checksum
                # verified, so a reserialize can never launder a corrupted
                # checksum through the cache.
                segment = object.__new__(cls)
                segment.__dict__.update(
                    src_port=src_port,
                    dst_port=dst_port,
                    seq=seq,
                    ack=ack,
                    flags=flags,
                    window=window,
                    options=options,
                    payload=data[data_offset:],
                    urgent=urgent,
                    _wire=(src, dst, bytes(data)) if checksum_ok else None,
                )
                return segment
            return cls(
                src_port=src_port,
                dst_port=dst_port,
                seq=seq,
                ack=ack,
                flags=flags,
                window=window,
                options=options,
                payload=data[data_offset:],
                urgent=urgent,
            )

    def summary(self) -> str:
        return (
            f"TCP {self.src_port}->{self.dst_port} [{Flags.names(self.flags)}] "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}"
        )
