"""TCP segment wire format (RFC 793) with a real Internet checksum.

Segments serialize to genuine header bytes so that middleboxes in
``repro.netsim.middlebox`` can observe and rewrite exactly what a
hardware middlebox would — the mechanism behind the paper's middlebox
interference and SYN-echo detection experiments (sections 2.1 and 4.5).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.netsim.packet import IPAddress, PROTO_TCP
from repro.tcp.options import TcpOption, decode_options, encode_options
from repro.utils.errors import ProtocolViolation


class Flags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    @staticmethod
    def names(flags: int) -> str:
        parts = []
        for name in ("FIN", "SYN", "RST", "PSH", "ACK", "URG", "ECE", "CWR"):
            if flags & getattr(Flags, name):
                parts.append(name)
        return "|".join(parts) or "none"


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over 16-bit big-endian words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _pseudo_header(src: IPAddress, dst: IPAddress, tcp_length: int) -> bytes:
    if src.version == 4:
        return src.packed + dst.packed + struct.pack("!BBH", 0, PROTO_TCP, tcp_length)
    return src.packed + dst.packed + struct.pack("!IBBBB", tcp_length, 0, 0, 0, PROTO_TCP)


@dataclass
class TcpSegment:
    """One TCP segment (header fields + payload)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    options: List[TcpOption] = field(default_factory=list)
    payload: bytes = b""
    urgent: int = 0

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def is_syn(self) -> bool:
        return self.has(Flags.SYN)

    @property
    def is_ack(self) -> bool:
        return self.has(Flags.ACK)

    @property
    def is_fin(self) -> bool:
        return self.has(Flags.FIN)

    @property
    def is_rst(self) -> bool:
        return self.has(Flags.RST)

    def sequence_space(self) -> int:
        """Bytes of sequence space the segment occupies (SYN/FIN count 1)."""
        length = len(self.payload)
        if self.is_syn:
            length += 1
        if self.is_fin:
            length += 1
        return length

    # -- wire format -----------------------------------------------------

    def to_bytes(self, src: IPAddress, dst: IPAddress) -> bytes:
        options_block = encode_options(self.options)
        data_offset_words = 5 + len(options_block) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset_words << 4,
            self.flags,
            self.window & 0xFFFF,
            0,  # checksum placeholder
            self.urgent,
        )
        segment = header + options_block + self.payload
        checksum = internet_checksum(_pseudo_header(src, dst, len(segment)) + segment)
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        src: IPAddress = None,
        dst: IPAddress = None,
        verify_checksum: bool = True,
    ) -> "TcpSegment":
        if len(data) < 20:
            raise ProtocolViolation("TCP segment shorter than minimum header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags_hi,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIBBHHH", data[:20])
        data_offset = (offset_flags_hi >> 4) * 4
        if data_offset < 20 or data_offset > len(data):
            raise ProtocolViolation(f"bad TCP data offset {data_offset}")
        if verify_checksum and src is not None and dst is not None:
            if internet_checksum(_pseudo_header(src, dst, len(data)) + data) != 0:
                raise ProtocolViolation("TCP checksum verification failed")
        options = decode_options(data[20:data_offset])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            options=options,
            payload=data[data_offset:],
            urgent=urgent,
        )

    def summary(self) -> str:
        return (
            f"TCP {self.src_port}->{self.dst_port} [{Flags.names(self.flags)}] "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}"
        )
