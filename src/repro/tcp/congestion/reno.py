"""NewReno congestion control (RFC 5681 / RFC 6582, byte-counting)."""

from __future__ import annotations

from repro.tcp.congestion.base import CongestionControl


class NewReno(CongestionControl):
    """Slow start + AIMD congestion avoidance with fast recovery halving."""

    name = "reno"

    def on_ack(self, acked_bytes: int, rtt: float, now: float) -> None:
        if self.in_slow_start():
            # Byte-counting slow start (RFC 3465): grow by bytes acked,
            # capped at 2*MSS per ACK.
            self.cwnd += min(acked_bytes, 2 * self.mss)
        else:
            self.cwnd += self.mss * self.mss / self.cwnd

    def on_loss(self, flight_size: int, now: float) -> None:
        self.ssthresh = max(flight_size / 2, 2 * self.mss)
        self.cwnd = self.ssthresh
