"""Congestion-controller interface."""

from __future__ import annotations


class CongestionControl:
    """Base class: byte-based cwnd with slow-start threshold.

    Subclasses override the event hooks; the connection calls them as ACKs
    and losses are observed.  All quantities are in bytes.
    """

    name = "base"

    def __init__(self, mss: int) -> None:
        self.mss = mss
        self.cwnd: float = 10 * mss  # RFC 6928 initial window
        self.ssthresh: float = float("inf")
        self._min_rtt: float = float("inf")

    def observe_rtt(self, rtt: float) -> None:
        """HyStart-like delay-based slow-start exit.

        When queueing delay shows the pipe is full (RTT grew 25% above
        the minimum), leave slow start *before* the overflow loss burst
        that doubling into a drop-tail queue would otherwise cause.
        """
        if rtt <= 0:
            return
        self._min_rtt = min(self._min_rtt, rtt)
        if (
            self.in_slow_start()
            and self.cwnd > 16 * self.mss
            and rtt > self._min_rtt * 1.25
        ):
            self.ssthresh = self.cwnd

    # -- event hooks -------------------------------------------------------

    def on_ack(self, acked_bytes: int, rtt: float, now: float) -> None:
        """New data was cumulatively acknowledged."""

    def on_loss(self, flight_size: int, now: float) -> None:
        """Loss detected via fast retransmit (3 duplicate ACKs / SACK)."""

    def on_timeout(self, flight_size: int, now: float) -> None:
        """Retransmission timer fired: collapse to one segment."""
        self.ssthresh = max(flight_size / 2, 2 * self.mss)
        self.cwnd = self.mss

    # -- queries -------------------------------------------------------------

    def window(self) -> int:
        return int(self.cwnd)

    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def describe(self) -> dict:
        return {
            "name": self.name,
            "cwnd": int(self.cwnd),
            "ssthresh": self.ssthresh if self.ssthresh != float("inf") else None,
        }
