"""CUBIC congestion control (RFC 8312, simplified).

Implements the cubic window growth function with the TCP-friendly region
and fast convergence.  Pacing and HyStart are out of scope (DESIGN.md
section 5).
"""

from __future__ import annotations

from repro.tcp.congestion.base import CongestionControl

_C = 0.4  # cubic scaling constant (RFC 8312 section 5)
_BETA = 0.7  # multiplicative decrease factor


class Cubic(CongestionControl):
    name = "cubic"

    def __init__(self, mss: int) -> None:
        super().__init__(mss)
        self._w_max = 0.0  # window (bytes) at last congestion event
        self._epoch_start: float = -1.0
        self._k = 0.0
        self._tcp_cwnd = 0.0  # Reno-equivalent window for the friendly region

    def on_ack(self, acked_bytes: int, rtt: float, now: float) -> None:
        if self.in_slow_start():
            self.cwnd += min(acked_bytes, 2 * self.mss)
            return
        if self._epoch_start < 0:
            self._epoch_start = now
            if self.cwnd < self._w_max:
                self._k = (
                    (self._w_max - self.cwnd) / self.mss / _C
                ) ** (1.0 / 3.0)
            else:
                self._k = 0.0
            self._tcp_cwnd = self.cwnd
        t = now - self._epoch_start
        target_segments = _C * (t - self._k) ** 3 + self._w_max / self.mss
        target = target_segments * self.mss
        # TCP-friendly region (RFC 8312 section 4.2).
        self._tcp_cwnd += (
            3 * (1 - _BETA) / (1 + _BETA) * acked_bytes * self.mss / self.cwnd
        )
        target = max(target, self._tcp_cwnd)
        if target > self.cwnd:
            # Approach the target over one RTT's worth of ACKs.
            self.cwnd += (target - self.cwnd) * acked_bytes / max(self.cwnd, 1.0)
        else:
            self.cwnd += self.mss * self.mss / (100 * self.cwnd)

    def on_loss(self, flight_size: int, now: float) -> None:
        window = max(self.cwnd, float(self.mss))
        # Fast convergence (RFC 8312 section 4.6).
        if window < self._w_max:
            self._w_max = window * (1 + _BETA) / 2
        else:
            self._w_max = window
        self.cwnd = max(window * _BETA, 2 * self.mss)
        self.ssthresh = self.cwnd
        self._epoch_start = -1.0

    def on_timeout(self, flight_size: int, now: float) -> None:
        super().on_timeout(flight_size, now)
        self._w_max = max(flight_size, 2 * self.mss)
        self._epoch_start = -1.0
