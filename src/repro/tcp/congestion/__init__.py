"""Pluggable congestion controllers.

A controller can be swapped at runtime (``TcpConnection.set_congestion_
control``) — that is the hook the TCPLS plugin system uses to install a
congestion-control scheme shipped as bytecode over the secure channel
(paper section 3, item iii).
"""

from repro.tcp.congestion.base import CongestionControl
from repro.tcp.congestion.reno import NewReno
from repro.tcp.congestion.cubic import Cubic

__all__ = ["CongestionControl", "NewReno", "Cubic"]


def make(name: str, mss: int) -> CongestionControl:
    """Instantiate a controller by name ("reno" or "cubic")."""
    name = name.lower()
    if name in ("reno", "newreno"):
        return NewReno(mss)
    if name == "cubic":
        return Cubic(mss)
    raise ValueError(f"unknown congestion controller {name!r}")
