"""TCP Fast Open cookies (RFC 7413).

The server mints a cookie bound to the client's IP address with a keyed
hash; the client caches cookies per server.  The paper's section 4.2
observes that the TCP header limits TFO cookies to 16 bytes — TCPLS lifts
that limit by carrying a longer cookie inside the TLS ClientHello in the
SYN payload (see ``repro.core.zero_rtt``).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Optional

from repro.netsim.packet import IPAddress

COOKIE_LENGTH = 8  # RFC 7413 recommends 8..16 bytes


class FastOpenManager:
    """Per-stack TFO state: server cookie secret + client cookie cache."""

    def __init__(self, secret: bytes = b"") -> None:
        self._secret = secret or b"repro-tfo-secret"
        self._client_cache: Dict[IPAddress, bytes] = {}

    # -- server side ---------------------------------------------------------

    def make_cookie(self, client_addr: IPAddress) -> bytes:
        return hmac.new(
            self._secret, client_addr.packed, hashlib.sha256
        ).digest()[:COOKIE_LENGTH]

    def validate_cookie(self, client_addr: IPAddress, cookie: bytes) -> bool:
        return hmac.compare_digest(self.make_cookie(client_addr), cookie)

    # -- client side -------------------------------------------------------------

    def remember_cookie(self, server_addr: IPAddress, cookie: bytes) -> None:
        self._client_cache[server_addr] = cookie

    def cookie_for(self, server_addr: IPAddress) -> Optional[bytes]:
        return self._client_cache.get(server_addr)
