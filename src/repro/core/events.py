"""TCPLS event callbacks.

The paper's API (section 2.4, Figure 3): "The application may configure
callbacks to connection events that would occur within TCPLS, such as a
connection establishment, a stream attachment, a multipath join, the
reception of a TCP option to tune TCP, and more."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Event:
    """Event names deliverable to application callbacks."""

    CONN_ESTABLISHED = "conn_established"
    CONN_FAILED = "conn_failed"
    CONN_CLOSED = "conn_closed"
    HANDSHAKE_DONE = "handshake_done"
    JOIN = "join"
    STREAM_OPENED = "stream_opened"
    STREAM_ATTACHED = "stream_attached"
    STREAM_CLOSED = "stream_closed"
    TCP_OPTION_RECEIVED = "tcp_option_received"
    ADDRESS_ADVERTISED = "address_advertised"
    ADDRESS_REMOVED = "address_removed"
    PLUGIN_INSTALLED = "plugin_installed"
    PROBE_REPORT = "probe_report"
    SESSION_CLOSED = "session_closed"
    FAILOVER = "failover"
    MIGRATION_DONE = "migration_done"
    TICKET = "ticket"
    # Robustness lifecycle (fault injection & recovery): a session loses
    # path redundancy or all connectivity (DEGRADED), a reconnection
    # attempt is scheduled (CONN_RETRY), connectivity comes back
    # (RECOVERED).  ``terminal=True`` on SESSION_DEGRADED means recovery
    # was abandoned (cookie or retry budget exhausted).
    SESSION_DEGRADED = "session_degraded"
    SESSION_RECOVERED = "session_recovered"
    CONN_RETRY = "conn_retry"

    # Flow control: a stream that raised WouldBlock has drained below
    # half its send-buffer limit and accepts writes again.
    STREAM_WRITABLE = "stream_writable"

    ALL = (
        CONN_ESTABLISHED, CONN_FAILED, CONN_CLOSED, HANDSHAKE_DONE, JOIN,
        STREAM_OPENED, STREAM_ATTACHED, STREAM_CLOSED, TCP_OPTION_RECEIVED,
        ADDRESS_ADVERTISED, ADDRESS_REMOVED, PLUGIN_INSTALLED, PROBE_REPORT,
        SESSION_CLOSED,
        FAILOVER, MIGRATION_DONE, TICKET,
        SESSION_DEGRADED, SESSION_RECOVERED, CONN_RETRY,
        STREAM_WRITABLE,
    )


class EventDispatcher:
    """Per-session registry of application callbacks."""

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Callable]] = {}
        self.log: List[tuple] = []  # (event, kwargs) history for inspection
        # Observability tap: called as observer(event, kwargs) before the
        # application handlers for every emission.  Recording only — it
        # must never mutate session state or schedule simulator events.
        self.observer: Optional[Callable[[str, dict], None]] = None
        # Optional clock (e.g. ``lambda: sim.now``).  When set, every
        # emission is also appended to ``timeline`` as (time, event,
        # kwargs) — the trace the fault-injection invariant checker
        # replays to bound recovery times.
        self.clock: Optional[Callable[[], float]] = None
        self.timeline: List[tuple] = []

    def on(self, event: str, handler: Callable) -> None:
        if event not in Event.ALL:
            raise ValueError(f"unknown event {event!r}")
        self._handlers.setdefault(event, []).append(handler)

    def off(self, event: str, handler: Callable) -> bool:
        """Deregister one handler; True if it was registered.

        One-shot protocol handlers (failover's on-JOIN continuation,
        migration chains) must deregister once they fire or are
        abandoned, otherwise every failover leaks a handler that can
        re-trigger stale replays on later JOINs.
        """
        handlers = self._handlers.get(event)
        if handlers is None or handler not in handlers:
            return False
        handlers.remove(handler)
        return True

    def handler_count(self, event: str) -> int:
        return len(self._handlers.get(event, []))

    def emit(self, event: str, **kwargs) -> None:
        self.log.append((event, kwargs))
        if self.clock is not None:
            self.timeline.append((self.clock(), event, kwargs))
        if self.observer is not None:
            self.observer(event, kwargs)
        # Snapshot: a handler may (de)register handlers while firing.
        for handler in list(self._handlers.get(event, [])):
            handler(**kwargs)

    def events_named(self, event: str) -> List[dict]:
        return [kw for name, kw in self.log if name == event]
