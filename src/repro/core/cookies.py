"""Connection identifiers and one-time JOIN cookies (paper section 2.4).

The server mints a connection identifier (CONNID) and a list of random
128-bit cookies, delivered to the client inside the encrypted
ServerHello flight.  A cookie authorizes exactly one JOIN: "when the
server receives a valid cookie, it accepts the attachment [...] and
discards the cookie".  The cookie count bounds the number of extra
connections, defusing the denial-of-service vector the paper notes for
Multipath TCP.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

COOKIE_LENGTH = 16  # 128 bits, per the paper
CONNID_LENGTH = 16


class CookieJar:
    """Server-side cookie issuance and single-use validation."""

    def __init__(self, rng: random.Random, batch_size: int = 4) -> None:
        self._rng = rng
        self.batch_size = batch_size
        self._valid: set = set()
        self.consumed = 0
        self.rejected = 0

    def mint(self, count: Optional[int] = None) -> List[bytes]:
        cookies = [
            bytes(self._rng.randrange(256) for _ in range(COOKIE_LENGTH))
            for _ in range(count if count is not None else self.batch_size)
        ]
        self._valid.update(cookies)
        return cookies

    def consume(self, cookie: bytes) -> bool:
        """Validate and discard; a replayed cookie fails."""
        if cookie in self._valid:
            self._valid.discard(cookie)
            self.consumed += 1
            return True
        self.rejected += 1
        return False

    def outstanding(self) -> int:
        return len(self._valid)


class CookiePurse:
    """Client-side stash of cookies received from the server."""

    def __init__(self) -> None:
        self._cookies: List[bytes] = []

    def deposit(self, cookies: List[bytes]) -> None:
        self._cookies.extend(cookies)

    def withdraw(self) -> Optional[bytes]:
        if not self._cookies:
            return None
        return self._cookies.pop(0)

    def __len__(self) -> int:
        return len(self._cookies)


def mint_connection_id(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(CONNID_LENGTH))
