"""The Figure 3 API: thin ``tcpls_*`` functions over ``TcplsSession``.

The paper exposes a C-style API (``tcpls_new``, ``tcpls_connect``,
``tcpls_handshake``, ``tcpls_stream_new``, ``tcpls_streams_attach``,
``tcpls_send``, ``tcpls_receive``, ``tcpls_send_tcpoption``, ...).  These
wrappers reproduce that workflow verbatim — the benchmark for Figure 3
drives exactly this surface — while the object API underneath remains
the idiomatic-Python entry point.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.session import TcplsContext, TcplsSession, TcplsServer
from repro.tcp.stack import TcpStack


def tcpls_new(context: TcplsContext, stack: TcpStack, is_server: bool = False) -> TcplsSession:
    """Create a TCPLS session object (``tcpls_new`` in Figure 3)."""
    return TcplsSession(context, stack, is_server=is_server)


def tcpls_add_v4(session: TcplsSession, address: str, primary: bool = False) -> None:
    """Register a local IPv4 address for explicit path selection."""
    session.local_v4_addresses = getattr(session, "local_v4_addresses", [])
    if primary:
        session.local_v4_addresses.insert(0, address)
    else:
        session.local_v4_addresses.append(address)


def tcpls_add_v6(session: TcplsSession, address: str, primary: bool = False) -> None:
    """Register a local IPv6 address for explicit path selection."""
    session.local_v6_addresses = getattr(session, "local_v6_addresses", [])
    if primary:
        session.local_v6_addresses.insert(0, address)
    else:
        session.local_v6_addresses.append(address)


def tcpls_connect(
    session: TcplsSession,
    dest: str,
    port: int = 443,
    src: Optional[str] = None,
    timeout: Optional[float] = None,
) -> int:
    """Open one TCP connection of the session's multipath mesh.

    ``timeout`` reproduces the happy-eyeballs chaining of Figure 3: when
    given, the connect is considered "pending" and the caller may issue
    another ``tcpls_connect`` for the other address family; the session
    races them (see ``TcplsSession.happy_eyeballs_connect`` for the
    packaged version).
    """
    return session.connect(dest, port, src=src)


def tcpls_handshake(
    session: TcplsSession,
    conn_id: Optional[int] = None,
    early_data: bytes = b"",
) -> None:
    """Run the TLS/TCPLS handshake, or a JOIN on a secondary connection."""
    session.handshake(conn_id=conn_id, early_data=early_data)


def tcpls_accept(
    context: TcplsContext, stack: TcpStack, port: int = 443, on_session=None
) -> TcplsServer:
    """Server side: listen and accept TCPLS sessions."""
    return TcplsServer(context, stack, port=port, on_session=on_session)


def tcpls_stream_new(session: TcplsSession, conn_id: Optional[int] = None) -> int:
    """Create a stream pinned to a connection."""
    return session.stream_new(conn_id=conn_id)


def tcpls_streams_attach(session: TcplsSession) -> None:
    """Announce newly created streams to the peer."""
    session.streams_attach()


def tcpls_send(session: TcplsSession, stream_id: int, data: bytes) -> int:
    """Send application data on a stream."""
    return session.send(stream_id, data)


def tcpls_receive(session: TcplsSession, stream_id: int) -> bytes:
    """Drain received data for one stream (poll-style alternative to the
    ``on_stream_data`` callback).

    Backed by the session's bounded per-stream app-read queue: with no
    delivery callback installed, in-order bytes park there (counted
    against the stream's receive window), and draining them here returns
    flow-control credit to the peer.  A caller that stops draining
    backpressures the sender instead of growing an unbounded collector.
    """
    return session.recv_data(stream_id)


def tcpls_stream_close(session: TcplsSession, stream_id: int) -> None:
    """Close one stream (stream-level termination, section 2.1)."""
    session.stream_close(stream_id)


def tcpls_send_tcpoption(session: TcplsSession, option, conn_id: int = 0) -> None:
    """Ship a TCP option through the encrypted control channel."""
    session.send_tcp_option(option, apply_to_conn=conn_id)
