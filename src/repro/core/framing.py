"""TCPLS record framing: true types and control-frame codecs.

Figure 1 of the paper: every TCPLS record travels as an ordinary TLS 1.3
``application_data`` record; the *true* type (TType) is the trailing
byte of the encrypted payload, extending TLS 1.3's inner-content-type
mechanism.  A middlebox sees indistinguishable APPDATA records whether
they carry file data, a TCP option, an ACK, or eBPF bytecode.

Frame layout (all inside the AEAD-protected plaintext):

    [ session_seq u64 ][ frame body ... ][ TType u8 ]

``session_seq`` is the TCPLS sequence number of section 2.1 (0 means
"unsequenced": the frame is not replayed on failover and not ACKed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import functools

from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import decode_guard


def _armored(fn):
    """Fail-closed wrapper: any stray exception a frame-body decoder
    leaks (bad text encoding, arithmetic on lying fields) surfaces as a
    typed ``DecodeError`` naming the decoder."""

    @functools.wraps(fn)
    def wrapper(body: bytes):
        with decode_guard(fn.__name__):
            return fn(body)

    return wrapper


class TType:
    """True content types.  20-24 are standard TLS; 0x30+ are TCPLS."""

    ALERT = 21
    HANDSHAKE = 22
    APPDATA = 23  # plain TLS application data (non-TCPLS payloads)

    STREAM_DATA = 0x30
    TCP_OPTION = 0x31
    ACK = 0x32
    STREAM_OPEN = 0x33
    STREAM_CLOSE = 0x34
    JOIN_ACK = 0x35
    NEW_COOKIES = 0x36
    PLUGIN = 0x37
    PROBE = 0x38
    PROBE_REPORT = 0x39
    SESSION_CLOSE = 0x3A
    PING = 0x3B
    ADDRESS_ADVERT = 0x3C
    ADDRESS_REMOVE = 0x3D
    WINDOW_UPDATE = 0x3E

    RELIABLE = {
        STREAM_DATA,
        TCP_OPTION,
        STREAM_OPEN,
        STREAM_CLOSE,
        NEW_COOKIES,
        PLUGIN,
        PROBE,
        PROBE_REPORT,
        SESSION_CLOSE,
        ADDRESS_ADVERT,
        ADDRESS_REMOVE,
        WINDOW_UPDATE,
    }


@dataclass
class Frame:
    """A decoded TCPLS frame."""

    ttype: int
    seq: int
    body: bytes

    def reader(self) -> ByteReader:
        return ByteReader(self.body)


def encode_frame(ttype: int, seq: int, body: bytes) -> bytes:
    """Frame plaintext, minus the trailing TType byte (the record layer
    appends the inner type)."""
    writer = ByteWriter()
    writer.put_u64(seq)
    writer.put_bytes(body)
    return writer.getvalue()


def decode_frame(ttype: int, plaintext: bytes) -> Frame:
    with decode_guard("decode_frame"):
        reader = ByteReader(plaintext)
        seq = reader.get_u64()
        return Frame(ttype=ttype, seq=seq, body=reader.get_rest())


# ---------------------------------------------------------------------------
# Frame bodies
# ---------------------------------------------------------------------------


def encode_stream_data(stream_id: int, offset: int, data: bytes, fin: bool = False) -> bytes:
    writer = ByteWriter()
    writer.put_u32(stream_id)
    writer.put_u64(offset)
    writer.put_u8(1 if fin else 0)
    writer.put_bytes(data)
    return writer.getvalue()


@_armored
def decode_stream_data(body: bytes) -> Tuple[int, int, bool, bytes]:
    reader = ByteReader(body)
    stream_id = reader.get_u32()
    offset = reader.get_u64()
    fin = bool(reader.get_u8())
    return stream_id, offset, fin, reader.get_rest()


def encode_tcp_option(kind: int, option_body: bytes, apply_to_conn: int = 0) -> bytes:
    """A TCP option shipped over the secure channel (Figure 1)."""
    writer = ByteWriter()
    writer.put_u8(kind)
    writer.put_u32(apply_to_conn)
    writer.put_vec16(option_body)
    return writer.getvalue()


@_armored
def decode_tcp_option(body: bytes) -> Tuple[int, int, bytes]:
    reader = ByteReader(body)
    kind = reader.get_u8()
    conn = reader.get_u32()
    return kind, conn, reader.get_vec16()


def encode_ack(cumulative_seq: int, conn_id: int) -> bytes:
    writer = ByteWriter()
    writer.put_u64(cumulative_seq)
    writer.put_u32(conn_id)
    return writer.getvalue()


@_armored
def decode_ack(body: bytes) -> Tuple[int, int]:
    reader = ByteReader(body)
    return reader.get_u64(), reader.get_u32()


def encode_stream_open(stream_id: int, conn_id: int) -> bytes:
    writer = ByteWriter()
    writer.put_u32(stream_id)
    writer.put_u32(conn_id)
    return writer.getvalue()


@_armored
def decode_stream_open(body: bytes) -> Tuple[int, int]:
    reader = ByteReader(body)
    return reader.get_u32(), reader.get_u32()


def encode_stream_close(stream_id: int, final_offset: int) -> bytes:
    writer = ByteWriter()
    writer.put_u32(stream_id)
    writer.put_u64(final_offset)
    return writer.getvalue()


@_armored
def decode_stream_close(body: bytes) -> Tuple[int, int]:
    reader = ByteReader(body)
    return reader.get_u32(), reader.get_u64()


def encode_window_update(stream_id: int, max_offset: int) -> bytes:
    """Flow-control credit grant: the receiver permits stream bytes up
    to absolute offset ``max_offset``.  Grants are cumulative — a stale
    (smaller) limit never revokes credit, so replayed grants after a
    failover are harmless."""
    writer = ByteWriter()
    writer.put_u32(stream_id)
    writer.put_u64(max_offset)
    return writer.getvalue()


@_armored
def decode_window_update(body: bytes) -> Tuple[int, int]:
    reader = ByteReader(body)
    return reader.get_u32(), reader.get_u64()


def encode_join_ack(conn_index: int) -> bytes:
    writer = ByteWriter()
    writer.put_u32(conn_index)
    return writer.getvalue()


@_armored
def decode_join_ack(body: bytes) -> int:
    return ByteReader(body).get_u32()


def encode_new_cookies(cookies: List[bytes]) -> bytes:
    writer = ByteWriter()
    writer.put_u8(len(cookies))
    for cookie in cookies:
        writer.put_vec8(cookie)
    return writer.getvalue()


@_armored
def decode_new_cookies(body: bytes) -> List[bytes]:
    reader = ByteReader(body)
    return [reader.get_vec8() for _ in range(reader.get_u8())]


def encode_plugin(target: str, bytecode: bytes) -> bytes:
    writer = ByteWriter()
    writer.put_vec8(target.encode("ascii"))
    writer.put_vec16(bytecode)
    return writer.getvalue()


@_armored
def decode_plugin(body: bytes) -> Tuple[str, bytes]:
    reader = ByteReader(body)
    return reader.get_vec8().decode("ascii"), reader.get_vec16()


def encode_probe(conn_id: int, syn_bytes: bytes) -> bytes:
    """SYN-echo middlebox probe (section 4.5): the SYN as we sent it."""
    writer = ByteWriter()
    writer.put_u32(conn_id)
    writer.put_vec16(syn_bytes)
    return writer.getvalue()


@_armored
def decode_probe(body: bytes) -> Tuple[int, bytes]:
    reader = ByteReader(body)
    return reader.get_u32(), reader.get_vec16()


def encode_probe_report(conn_id: int, differences: List[str]) -> bytes:
    writer = ByteWriter()
    writer.put_u32(conn_id)
    writer.put_u8(len(differences))
    for diff in differences:
        writer.put_vec16(diff.encode("utf-8"))
    return writer.getvalue()


@_armored
def decode_probe_report(body: bytes) -> Tuple[int, List[str]]:
    reader = ByteReader(body)
    conn_id = reader.get_u32()
    return conn_id, [
        reader.get_vec16().decode("utf-8") for _ in range(reader.get_u8())
    ]


def encode_address_advert(v4_addresses: List[str], v6_addresses: List[str]) -> bytes:
    writer = ByteWriter()
    writer.put_u8(len(v4_addresses))
    for address in v4_addresses:
        writer.put_vec8(address.encode("ascii"))
    writer.put_u8(len(v6_addresses))
    for address in v6_addresses:
        writer.put_vec8(address.encode("ascii"))
    return writer.getvalue()


@_armored
def decode_address_advert(body: bytes) -> Tuple[List[str], List[str]]:
    reader = ByteReader(body)
    v4 = [reader.get_vec8().decode("ascii") for _ in range(reader.get_u8())]
    v6 = [reader.get_vec8().decode("ascii") for _ in range(reader.get_u8())]
    return v4, v6


def encode_session_close(last_stream_id: int) -> bytes:
    writer = ByteWriter()
    writer.put_u32(last_stream_id)
    return writer.getvalue()


@_armored
def decode_session_close(body: bytes) -> int:
    return ByteReader(body).get_u32()
