"""Session-level sequencing, TCPLS ACKs, and failover replay buffers.

Paper section 2.1: "To support data from a given datastream to be
exchanged over several TCP connections, TCPLS includes its sequence
numbers.  [...] Thanks to these TCPLS acknowledgments, a TCPLS session
can react to the failure of the underlying TCP connection by
reestablishing a new TCP connection and replay the records that have
been lost."

``ReplayBuffer`` keeps every reliable frame until the peer's cumulative
TCPLS ACK covers it.  ``ReceiveTracker`` deduplicates (replay after
failover can resend frames that had actually arrived) and produces the
cumulative ACK value.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple


class ReplayBuffer:
    """Sender side: sequenced frames retained for possible replay.

    Byte occupancy is tracked incrementally so ``pending_bytes`` is O(1):
    the per-session memory budget reads it on every received frame, and
    summing thousands of retained bodies per frame would be quadratic.
    """

    __slots__ = ("_next_seq", "_frames", "_pending_bytes", "highest_acked")

    def __init__(self) -> None:
        self._next_seq = 1  # seq 0 means "unsequenced"
        self._frames: "OrderedDict[int, Tuple[int, int, bytes]]" = OrderedDict()
        self._pending_bytes = 0
        self.highest_acked = 0

    def next_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def store(self, seq: int, ttype: int, stream_id: int, body: bytes) -> None:
        old = self._frames.get(seq)
        if old is not None:
            self._pending_bytes -= len(old[2])
        self._frames[seq] = (ttype, stream_id, body)
        self._pending_bytes += len(body)

    def on_ack(self, cumulative_seq: int) -> int:
        """Drop frames covered by a cumulative ACK; returns frames freed."""
        freed = 0
        for seq in [s for s in self._frames if s <= cumulative_seq]:
            self._pending_bytes -= len(self._frames.pop(seq)[2])
            freed += 1
        self.highest_acked = max(self.highest_acked, cumulative_seq)
        return freed

    def unacked_frames(self) -> Iterator[Tuple[int, int, int, bytes]]:
        """Frames to replay after a connection failure, in seq order."""
        for seq, (ttype, stream_id, body) in self._frames.items():
            yield seq, ttype, stream_id, body

    def pending_count(self) -> int:
        return len(self._frames)

    def pending_bytes(self) -> int:
        """Retained (unacked) body bytes — O(1), tracked incrementally."""
        return self._pending_bytes


class ReceiveTracker:
    """Receiver side: dedup + cumulative ACK computation.

    ``window`` bounds the out-of-order set: a frame whose seq is more
    than ``window`` ahead of the cumulative point is refused (counted in
    ``rejected_window``), so a replay flood or an adversarial sender
    cannot grow ``_out_of_order`` without bound.  Honest senders never
    open such a gap — the replay buffer only holds unacked frames, and
    each TCP connection delivers its share in order.
    """

    DEFAULT_WINDOW = 1 << 20

    # No __slots__ here: the fault-matrix TrackerAudit instruments a
    # live tracker by rebinding ``accept`` on the instance, and there is
    # exactly one tracker per session so the dict costs little.

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self.cumulative = 0  # every seq <= cumulative has been received
        self.window = window
        self._out_of_order: set = set()
        self.duplicates = 0
        self.received = 0
        self.rejected_window = 0

    def accept(self, seq: int) -> bool:
        """Record a sequenced frame; False if it is a duplicate."""
        if seq == 0:
            return True  # unsequenced frames are never deduplicated
        if seq <= self.cumulative or seq in self._out_of_order:
            self.duplicates += 1
            return False
        if seq > self.cumulative + self.window:
            self.rejected_window += 1
            return False
        self.received += 1
        if seq == self.cumulative + 1:
            self.cumulative = seq
            while self.cumulative + 1 in self._out_of_order:
                self.cumulative += 1
                self._out_of_order.discard(self.cumulative)
        else:
            self._out_of_order.add(seq)
        return True

    def reordering_depth(self) -> int:
        return len(self._out_of_order)
