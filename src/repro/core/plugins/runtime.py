"""Installing received plugin bytecode into the live stack.

The only plugin target implemented end-to-end (matching the paper's
prototype) is ``cc``: a congestion-control scheme.  The program is
invoked on each congestion event with:

    r1 = event   (0 = ack, 1 = loss, 2 = timeout)
    r2 = acked bytes (ack) or flight size (loss/timeout)
    r3 = current cwnd (bytes)
    r4 = mss
    r5 = current ssthresh (or 2^53 when infinite)

and must return the new cwnd in r0.  Memory slot 15, when non-zero, is
read back as the new ssthresh.  The verifier ran before installation, so
the host only executes provably-terminating, memory-safe code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tcp.congestion.base import CongestionControl
from repro.core.plugins.vm import BytecodeProgram, VerificationError, Vm

EVENT_ACK = 0
EVENT_LOSS = 1
EVENT_TIMEOUT = 2

_SSTHRESH_SLOT = 15
_INFINITE = 1 << 53

#: Upper bound on plugin-driven window state.  The verifier proves the
#: bytecode is structurally safe, but the *values* it computes are still
#: peer-chosen: an unbounded cwnd/ssthresh would let a malicious plugin
#: disable congestion control entirely.
MAX_PLUGIN_WINDOW = float(16 * 1024 * 1024)


class BytecodeCongestionControl(CongestionControl):
    """A congestion controller whose policy is plugin bytecode."""

    name = "plugin"

    def __init__(self, mss: int, program: BytecodeProgram) -> None:
        super().__init__(mss)
        self.vm = Vm(program)

    def _invoke(self, event: int, arg: int) -> None:
        ssthresh = int(self.ssthresh) if self.ssthresh != float("inf") else _INFINITE
        new_cwnd = self.vm.run(event, arg, int(self.cwnd), self.mss, ssthresh)
        self.cwnd = float(min(max(new_cwnd, self.mss), MAX_PLUGIN_WINDOW))
        stored = self.vm.memory[_SSTHRESH_SLOT]
        if stored > 0:
            self.ssthresh = float(min(stored, MAX_PLUGIN_WINDOW))

    def on_ack(self, acked_bytes: int, rtt: float, now: float) -> None:
        self._invoke(EVENT_ACK, acked_bytes)

    def on_loss(self, flight_size: int, now: float) -> None:
        self._invoke(EVENT_LOSS, flight_size)

    def on_timeout(self, flight_size: int, now: float) -> None:
        self._invoke(EVENT_TIMEOUT, flight_size)


def install_plugin(session, target: str, bytecode: bytes) -> bool:
    """Verify and activate plugin bytecode received over the channel.

    Returns True when installed; False when verification failed or the
    target is unknown (the session reports the outcome via the
    PLUGIN_INSTALLED event either way).
    """
    if target != "cc":
        return False
    try:
        program = BytecodeProgram.from_bytes(bytecode)
    except VerificationError:
        return False
    for conn in session.connections.values():
        if conn.state == conn.ACTIVE:
            controller = BytecodeCongestionControl(conn.tcp.effective_mss(), program)
            conn.tcp.set_congestion_control(controller)
    return True
