"""A tiny assembler for the plugin VM.

Syntax, one instruction per line (``;`` starts a comment)::

    ; r1=event r2=bytes r3=cwnd r4=mss r5=ssthresh
    start:
        movi r0, 0
        jeq  r1, r6, on_ack      ; r6 == 0 initially
    on_ack:
        mov  r0, r3
        ret

Labels resolve to *forward* jump offsets (the verifier rejects backward
jumps).  Registers are ``r0``..``r7``; immediates are decimal or hex.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.core.plugins import vm
from repro.core.plugins.vm import BytecodeProgram, Instruction, VerificationError

_OPCODES = {
    "mov": (vm.OP_MOV, "rr"),
    "movi": (vm.OP_MOVI, "ri"),
    "add": (vm.OP_ADD, "rr"),
    "addi": (vm.OP_ADDI, "ri"),
    "sub": (vm.OP_SUB, "rr"),
    "mul": (vm.OP_MUL, "rr"),
    "muli": (vm.OP_MULI, "ri"),
    "div": (vm.OP_DIV, "rr"),
    "divi": (vm.OP_DIVI, "ri"),
    "min": (vm.OP_MIN, "rr"),
    "max": (vm.OP_MAX, "rr"),
    "ld": (vm.OP_LD, "ri"),
    "st": (vm.OP_ST, "ir"),   # st slot, rX
    "jmp": (vm.OP_JMP, "l"),
    "jeq": (vm.OP_JEQ, "rrl"),
    "jne": (vm.OP_JNE, "rrl"),
    "jlt": (vm.OP_JLT, "rrl"),
    "jge": (vm.OP_JGE, "rrl"),
    "ret": (vm.OP_RET, ""),
}

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")


def _parse_register(token: str) -> int:
    if not token.startswith("r"):
        raise VerificationError(f"expected register, got {token!r}")
    return int(token[1:])


def _parse_immediate(token: str) -> int:
    return int(token, 0)


def assemble(source: str) -> BytecodeProgram:
    """Assemble source text into a verified program."""
    lines: List[Tuple[str, List[str]]] = []
    labels: Dict[str, int] = {}
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            labels[label_match.group(1)] = len(lines)
            continue
        parts = line.replace(",", " ").split()
        lines.append((parts[0].lower(), parts[1:]))

    instructions: List[Instruction] = []
    for index, (mnemonic, operands) in enumerate(lines):
        if mnemonic not in _OPCODES:
            raise VerificationError(f"unknown mnemonic {mnemonic!r}")
        opcode, shape = _OPCODES[mnemonic]
        dst = src = imm = 0
        if shape == "rr":
            dst, src = _parse_register(operands[0]), _parse_register(operands[1])
        elif shape == "ri":
            dst, imm = _parse_register(operands[0]), _parse_immediate(operands[1])
        elif shape == "ir":
            imm, src = _parse_immediate(operands[0]), _parse_register(operands[1])
        elif shape == "l":
            imm = _resolve_label(labels, operands[0], index)
        elif shape == "rrl":
            dst = _parse_register(operands[0])
            src = _parse_register(operands[1])
            imm = _resolve_label(labels, operands[2], index)
        elif shape == "":
            pass
        instructions.append(Instruction(opcode=opcode, dst=dst, src=src, imm=imm))
    return BytecodeProgram(instructions)


def _resolve_label(labels: Dict[str, int], token: str, current: int) -> int:
    if token in labels:
        offset = labels[token] - (current + 1)
        if offset <= 0:
            raise VerificationError(f"backward jump to {token!r}")
        return offset
    return _parse_immediate(token)
