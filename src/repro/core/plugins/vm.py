"""The plugin virtual machine and its static verifier.

ISA: 8 signed 64-bit registers (r0..r7), 16 persistent memory slots that
survive across invocations (plugin state), fixed 8-byte instructions:

    [ opcode u8 | dst u8 | src u8 | unused u8 | imm i32 ]

The verifier enforces eBPF-like safety *statically*:

- every opcode, register index, and memory slot index is valid;
- jumps land inside the program and only go **forward**, so every
  execution terminates in at most ``len(program)`` steps;
- the program ends with RET.

Division is checked at runtime (x/0 == 0, like eBPF).  Arithmetic wraps
to signed 64-bit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.utils.errors import ReproError, decode_guard

# Opcodes.
OP_MOV = 0x01    # dst = src
OP_MOVI = 0x02   # dst = imm
OP_ADD = 0x03    # dst += src
OP_ADDI = 0x04   # dst += imm
OP_SUB = 0x05    # dst -= src
OP_MUL = 0x06    # dst *= src
OP_MULI = 0x07   # dst *= imm
OP_DIV = 0x08    # dst = dst / src (0 if src == 0)
OP_DIVI = 0x09   # dst = dst / imm (0 if imm == 0)
OP_MIN = 0x0A    # dst = min(dst, src)
OP_MAX = 0x0B    # dst = max(dst, src)
OP_LD = 0x0C     # dst = memory[imm]
OP_ST = 0x0D     # memory[imm] = src
OP_JMP = 0x10    # pc += imm (forward only)
OP_JEQ = 0x11    # if dst == src: pc += imm
OP_JNE = 0x12
OP_JLT = 0x13    # signed <
OP_JGE = 0x14
OP_RET = 0x20    # return r0

N_REGISTERS = 8
N_MEMORY_SLOTS = 16
MAX_INSTRUCTIONS = 4096
INSTRUCTION_SIZE = 8

_JUMPS = {OP_JMP, OP_JEQ, OP_JNE, OP_JLT, OP_JGE}
_VALID_OPS = {
    OP_MOV, OP_MOVI, OP_ADD, OP_ADDI, OP_SUB, OP_MUL, OP_MULI,
    OP_DIV, OP_DIVI, OP_MIN, OP_MAX, OP_LD, OP_ST,
    OP_JMP, OP_JEQ, OP_JNE, OP_JLT, OP_JGE, OP_RET,
}

_I64_MASK = (1 << 64) - 1


def _wrap_i64(value: int) -> int:
    value &= _I64_MASK
    return value - (1 << 64) if value >= 1 << 63 else value


class VerificationError(ReproError):
    """The bytecode failed static verification and will not run."""


@dataclass(frozen=True)
class Instruction:
    opcode: int
    dst: int
    src: int
    imm: int

    def to_bytes(self) -> bytes:
        return struct.pack("!BBBBi", self.opcode, self.dst, self.src, 0, self.imm)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Instruction":
        with decode_guard("plugin instruction"):
            opcode, dst, src, _pad, imm = struct.unpack("!BBBBi", raw)
            return cls(opcode=opcode, dst=dst, src=src, imm=imm)


class BytecodeProgram:
    """Verified bytecode, ready to run."""

    def __init__(self, instructions: List[Instruction]) -> None:
        self.instructions = instructions
        self.verify()

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        return b"".join(ins.to_bytes() for ins in self.instructions)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BytecodeProgram":
        with decode_guard("plugin bytecode"):
            if len(raw) % INSTRUCTION_SIZE:
                raise VerificationError("bytecode length not a multiple of 8")
            instructions = [
                Instruction.from_bytes(raw[i : i + INSTRUCTION_SIZE])
                for i in range(0, len(raw), INSTRUCTION_SIZE)
            ]
            return cls(instructions)

    # -- verifier ------------------------------------------------------------

    def verify(self) -> None:
        program = self.instructions
        if not program:
            raise VerificationError("empty program")
        if len(program) > MAX_INSTRUCTIONS:
            raise VerificationError("program too long")
        if program[-1].opcode != OP_RET:
            raise VerificationError("program must end with RET")
        for index, ins in enumerate(program):
            if ins.opcode not in _VALID_OPS:
                raise VerificationError(f"invalid opcode {ins.opcode:#04x} at {index}")
            if not 0 <= ins.dst < N_REGISTERS or not 0 <= ins.src < N_REGISTERS:
                raise VerificationError(f"register out of range at {index}")
            if ins.opcode in (OP_LD, OP_ST):
                if not 0 <= ins.imm < N_MEMORY_SLOTS:
                    raise VerificationError(f"memory slot out of range at {index}")
            if ins.opcode in _JUMPS:
                if ins.imm <= 0:
                    raise VerificationError(
                        f"non-forward jump at {index} (termination unprovable)"
                    )
                if index + 1 + ins.imm > len(program):
                    raise VerificationError(f"jump past end of program at {index}")


class Vm:
    """Executes a verified program; memory persists across runs."""

    def __init__(self, program: BytecodeProgram) -> None:
        self.program = program
        self.memory = [0] * N_MEMORY_SLOTS
        self.invocations = 0

    def run(self, *inputs: int) -> int:
        """Execute with r1..rN preloaded from ``inputs``; returns r0."""
        if len(inputs) > N_REGISTERS - 1:
            raise ValueError("too many VM inputs")
        registers = [0] * N_REGISTERS
        for index, value in enumerate(inputs, start=1):
            registers[index] = _wrap_i64(value)
        self.invocations += 1

        pc = 0
        program = self.program.instructions
        while pc < len(program):
            ins = program[pc]
            op = ins.opcode
            if op == OP_RET:
                return registers[0]
            if op == OP_MOV:
                registers[ins.dst] = registers[ins.src]
            elif op == OP_MOVI:
                registers[ins.dst] = ins.imm
            elif op == OP_ADD:
                registers[ins.dst] = _wrap_i64(registers[ins.dst] + registers[ins.src])
            elif op == OP_ADDI:
                registers[ins.dst] = _wrap_i64(registers[ins.dst] + ins.imm)
            elif op == OP_SUB:
                registers[ins.dst] = _wrap_i64(registers[ins.dst] - registers[ins.src])
            elif op == OP_MUL:
                registers[ins.dst] = _wrap_i64(registers[ins.dst] * registers[ins.src])
            elif op == OP_MULI:
                registers[ins.dst] = _wrap_i64(registers[ins.dst] * ins.imm)
            elif op == OP_DIV:
                divisor = registers[ins.src]
                registers[ins.dst] = (
                    0 if divisor == 0 else _wrap_i64(int(registers[ins.dst] / divisor))
                )
            elif op == OP_DIVI:
                registers[ins.dst] = (
                    0 if ins.imm == 0 else _wrap_i64(int(registers[ins.dst] / ins.imm))
                )
            elif op == OP_MIN:
                registers[ins.dst] = min(registers[ins.dst], registers[ins.src])
            elif op == OP_MAX:
                registers[ins.dst] = max(registers[ins.dst], registers[ins.src])
            elif op == OP_LD:
                registers[ins.dst] = self.memory[ins.imm]
            elif op == OP_ST:
                self.memory[ins.imm] = registers[ins.src]
            elif op == OP_JMP:
                pc += ins.imm
            elif op in (OP_JEQ, OP_JNE, OP_JLT, OP_JGE):
                left = registers[ins.dst]
                right = registers[ins.src]
                taken = (
                    (op == OP_JEQ and left == right)
                    or (op == OP_JNE and left != right)
                    or (op == OP_JLT and left < right)
                    or (op == OP_JGE and left >= right)
                )
                if taken:
                    pc += ins.imm
            pc += 1
        return registers[0]
