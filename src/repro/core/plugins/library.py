"""Ready-made congestion-control plugins.

Each constant is assembler source; ``assemble(...)`` turns it into
verified bytecode to ship with ``TcplsSession.send_plugin("cc", ...)``.
"""

from __future__ import annotations

from repro.core.plugins.assembler import assemble
from repro.core.plugins.vm import BytecodeProgram

# Inputs: r1=event(0 ack,1 loss,2 timeout) r2=bytes r3=cwnd r4=mss r5=ssthresh.

FIXED_WINDOW_ASM = """
; Pin cwnd to 4 * MSS regardless of events (a rate limiter).
    mov  r0, r4
    muli r0, 4
    ret
"""

AIMD_CONSERVATIVE_ASM = """
; AIMD with quarter-MSS additive increase and 3/4 multiplicative decrease.
    mov  r0, r3            ; default: keep cwnd
    movi r6, 0
    jne  r1, r6, not_ack
    ; ack: cwnd += (mss/4) * acked/cwnd  ~= mss/4 per RTT
    mov  r7, r4
    divi r7, 4
    mul  r7, r2
    div  r7, r3
    add  r0, r7
    ret
not_ack:
    movi r6, 2
    jeq  r1, r6, timeout
    ; loss: cwnd = 3/4 * cwnd, floor 2*mss; ssthresh likewise
    mov  r0, r3
    muli r0, 3
    divi r0, 4
    mov  r7, r4
    muli r7, 2
    max  r0, r7
    st   15, r0            ; ssthresh = new cwnd
    ret
timeout:
    mov  r0, r4            ; collapse to one segment
    mov  r7, r2
    divi r7, 2
    st   15, r7
    ret
"""

SLOW_START_ONLY_ASM = """
; Pure slow start: always cwnd += acked (never leaves exponential growth).
    mov  r0, r3
    add  r0, r2
    ret
"""


def fixed_window_program() -> BytecodeProgram:
    return assemble(FIXED_WINDOW_ASM)


def aimd_conservative_program() -> BytecodeProgram:
    return assemble(AIMD_CONSERVATIVE_ASM)


def slow_start_only_program() -> BytecodeProgram:
    return assemble(SLOW_START_ONLY_ASM)
