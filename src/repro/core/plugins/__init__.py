"""Pluginized TCPLS (paper section 3 item iii and section 4.3).

PQUIC demonstrated shipping protocol extensions as eBPF bytecode over
the connection; the paper proposes the same for TCPLS: "TCPLS can
transport eBPF bytecode using TLS records as a second non-data stream"
to, e.g., "upgrade the client's TCP congestion control scheme".

This package is that capability, with our own eBPF-like ISA:

- ``vm``: a register-machine interpreter with an eBPF-style static
  verifier (bounds-checked memory, forward-only jumps, instruction
  budget) so a malicious or buggy plugin cannot harm the host;
- ``assembler``: a tiny assembler so plugins are written readably;
- ``runtime``: adapters installing verified bytecode as a live
  congestion controller on the session's TCP connections;
- ``library``: ready-made plugins used by examples and benchmarks.
"""

from repro.core.plugins.vm import BytecodeProgram, VerificationError, Vm
from repro.core.plugins.assembler import assemble
from repro.core.plugins.runtime import BytecodeCongestionControl, install_plugin

__all__ = [
    "BytecodeProgram",
    "VerificationError",
    "Vm",
    "assemble",
    "BytecodeCongestionControl",
    "install_plugin",
]
