"""Application-level connection migration (paper section 3.2).

"Triggering the connection migration involves chaining 5 API calls:
first, tcpls_handshake() configured with handshake properties announcing
a JOIN over the v6 connection id.  Then, the creation of a new stream
tcpls_stream_new() for the v6 connection id, finally followed by the
attachment of this new stream tcpls_streams_attach() and the secure
closing of the v4 TCP connection using tcpls_stream_close()."

``migrate`` packages exactly that chain.  The decision *when* to migrate
stays with the application — TCPLS's semantic is "let the applications
make the decision" (section 2.5).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.api import (
    tcpls_handshake,
    tcpls_stream_close,
    tcpls_stream_new,
    tcpls_streams_attach,
)
from repro.core.events import Event
from repro.core.session import TcplsSession


def migrate(
    session: TcplsSession,
    to_conn_id: int,
    close_stream_id: Optional[int] = None,
    retire_conn_id: Optional[int] = None,
    on_done: Optional[Callable[[int], None]] = None,
) -> None:
    """Move the session's traffic onto ``to_conn_id``.

    The chain completes asynchronously: the JOIN must round-trip before
    the new stream attaches.  ``on_done(new_stream_id)`` fires once the
    new stream is attached and the old one (``close_stream_id``) closed.
    """
    state = {"new_stream": None}

    def after_join(conn_id: int) -> None:
        if conn_id != to_conn_id or state["new_stream"] is not None:
            return
        # 2) new stream pinned to the new connection,
        state["new_stream"] = tcpls_stream_new(session, conn_id=to_conn_id)
        # 3) attach it,
        tcpls_streams_attach(session)
        # 4) close the old stream,
        if close_stream_id is not None:
            tcpls_stream_close(session, close_stream_id)
        # 5) securely close the old TCP connection; the peer re-pins its
        # streams onto the surviving connection ("the server seamlessly
        # switches the path while looping over tcpls_send").
        if retire_conn_id is not None:
            retire_connection(session, retire_conn_id)
        session.events.emit(Event.MIGRATION_DONE, stream_id=state["new_stream"])
        if on_done:
            on_done(state["new_stream"])

    session.on(Event.JOIN, after_join)
    # 1) JOIN handshake over the target connection.
    tcpls_handshake(session, conn_id=to_conn_id)


def retire_connection(session: TcplsSession, conn_id: int) -> None:
    """Gracefully close one TCP connection of the session (FIN)."""
    conn = session.connections.get(conn_id)
    if conn is None:
        return
    if conn.tcp.state in ("ESTABLISHED", "CLOSE_WAIT"):
        conn.tcp.close()
    conn.state = conn.CLOSED
    # Contexts stay installed so in-flight records on this connection
    # keep decrypting while the FIN handshake drains the pipe.
