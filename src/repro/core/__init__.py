"""TCPLS — the paper's contribution: TCP and TLS closely integrated.

The package implements the design of sections 2 and 3 of the paper on
top of this repository's own substrates (``repro.netsim``, ``repro.tcp``,
``repro.tls``):

- a secure control channel carrying TCP options, acknowledgments, and
  session control as encrypted TLS records with a trailing true-type
  byte (``framing``, Figure 1);
- datastreams with per-stream cryptographic contexts found by trial
  AEAD decryption (``contexts``, ``streams``, section 2.3);
- session-level sequence numbers, TCPLS ACKs, and failover replay
  (``reliability``, section 2.1);
- connection identifiers + one-time cookies and the JOIN handshake for
  attaching extra TCP connections (``cookies``, ``join``, Figure 2);
- explicit multipath with pluggable schedulers, application-level
  connection migration, and happy-eyeballs connects (``scheduler``,
  ``session``, sections 2.4–2.5 and 3.2);
- TCP options over the secure channel, including a working end-to-end
  User Timeout (section 3.1);
- congestion-control plugins shipped as verified bytecode over the
  control channel (``plugins``, section 3 item iii / 4.3);
- 0-RTT session resumption combined with TCP Fast Open (``session``,
  section 4.2) and SYN-echo middlebox detection (section 4.5).

Public entry points: ``TcplsContext``/``TcplsSession``/``TcplsServer``
plus the Figure 3 style ``tcpls_*`` functions in ``repro.core.api``.
"""

from repro.core.session import TcplsContext, TcplsSession, TcplsServer
from repro.core.events import Event
from repro.core.api import (
    tcpls_new,
    tcpls_add_v4,
    tcpls_add_v6,
    tcpls_connect,
    tcpls_handshake,
    tcpls_accept,
    tcpls_send,
    tcpls_receive,
    tcpls_stream_new,
    tcpls_streams_attach,
    tcpls_stream_close,
    tcpls_send_tcpoption,
)

__all__ = [
    "TcplsContext",
    "TcplsSession",
    "TcplsServer",
    "Event",
    "tcpls_new",
    "tcpls_add_v4",
    "tcpls_add_v6",
    "tcpls_connect",
    "tcpls_handshake",
    "tcpls_accept",
    "tcpls_send",
    "tcpls_receive",
    "tcpls_stream_new",
    "tcpls_streams_attach",
    "tcpls_stream_close",
    "tcpls_send_tcpoption",
]
