"""Multipath schedulers (paper sections 2.4-2.5).

Two application-selectable behaviours, mutually exclusive by design
("HOL-blocking avoidance is incompatible with the aggregation of
bandwidth"):

- **aggregation**: one stream's data is striped over every active TCP
  connection to sum their bandwidths; the receiver reorders by stream
  offset (accepting cross-connection HOL blocking);
- **hol_avoidance**: each stream stays pinned to its own connection, so
  a loss on one connection never delays another stream.

The scheduler only picks *which connection gets the next chunk*; chunk
sizing is the record-sizing policy's job (section 4.6).
"""

from __future__ import annotations

from typing import List, Optional


def _sendable(conn) -> bool:
    """The uniform usable-set predicate every scheduler filters on.

    A connection must be both established (``usable``) and have flow/
    congestion window room (``send_room``).  Every scheduler shares this
    definition: a zero-window connection is never a valid pick, because
    handing it a chunk silently stalls that chunk until the window
    reopens even when another path could have carried it.
    """
    return conn.usable() and conn.send_room() > 0


class Scheduler:
    """Base: pick a connection for the next chunk of a stream."""

    name = "base"

    def pick(self, stream, connections: List) -> Optional[object]:
        raise NotImplementedError


class PinnedScheduler(Scheduler):
    """HOL-avoidance mode: a stream only ever uses its own connection."""

    name = "pinned"

    def pick(self, stream, connections: List) -> Optional[object]:
        for conn in connections:
            if conn.conn_id == stream.conn_id and _sendable(conn):
                return conn
        return None


class RoundRobinScheduler(Scheduler):
    """Aggregation mode: cycle through usable connections.

    The rotation cursor is the *identity* of the last-picked connection,
    not an index into the usable list: indexing modulo a list whose
    membership changes (a JOIN adds a path, a failure removes one)
    silently double-serves or skips paths, skewing aggregation fairness.
    Resuming after the last-picked ``conn_id`` keeps every surviving
    path served exactly once per cycle across churn.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._last_conn_id: Optional[int] = None

    def pick(self, stream, connections: List) -> Optional[object]:
        usable = [conn for conn in connections if _sendable(conn)]
        if not usable:
            return None
        chosen = None
        if self._last_conn_id is not None:
            # Cyclic successor by conn_id (ids are assigned monotonically,
            # so this is the connection order): the smallest id strictly
            # greater than the last pick, wrapping to the smallest overall.
            after = [c for c in usable if c.conn_id > self._last_conn_id]
            if after:
                chosen = min(after, key=lambda c: c.conn_id)
        if chosen is None:
            chosen = min(usable, key=lambda c: c.conn_id)
        self._last_conn_id = chosen.conn_id
        return chosen


class CwndAwareScheduler(Scheduler):
    """Aggregation mode: prefer the connection with the most free window.

    This approximates the coupled schedulers of Multipath TCP: a faster
    path drains its queue quicker and therefore shows more free cwnd, so
    it receives proportionally more chunks.
    """

    name = "cwnd_aware"

    def pick(self, stream, connections: List) -> Optional[object]:
        best = None
        best_room = 0
        for conn in connections:
            if not conn.usable():
                continue
            room = conn.send_room()
            if room > best_room:
                best = conn
                best_room = room
        return best


class LowestRttScheduler(Scheduler):
    """Aggregation mode favouring latency: fill the lowest-RTT path first."""

    name = "lowest_rtt"

    def pick(self, stream, connections: List) -> Optional[object]:
        # An unmeasured path (srtt is None) sorts last; a *measured*
        # zero RTT is a legitimate fast path and must sort first, so no
        # falsy-zero coercion here.
        usable = sorted(
            (conn for conn in connections if _sendable(conn)),
            key=lambda conn: (
                1e9 if conn.tcp.rto.srtt is None else conn.tcp.rto.srtt
            ),
        )
        return usable[0] if usable else None


class HealthAwareScheduler(Scheduler):
    """Aggregation mode steered by the per-path health monitor.

    Picks the usable connection with the best (lowest) ``PathHealth``
    score — RTT inflated by observed loss — so a path that starts
    retransmitting sheds load *before* it fails outright.  Connections
    without a health record (unit-test stubs) fall back to RTT only.
    """

    name = "health"

    def pick(self, stream, connections: List) -> Optional[object]:
        best = None
        best_score = None
        for conn in connections:
            if not _sendable(conn):
                continue
            health = getattr(conn, "health", None)
            if health is not None:
                score = health.score(conn)
            else:
                srtt = conn.tcp.rto.srtt
                score = 1e9 if srtt is None else srtt
            if best_score is None or score < best_score:
                best = conn
                best_score = score
        return best


def make_scheduler(name: str) -> Scheduler:
    name = name.lower()
    if name in ("pinned", "hol_avoidance"):
        return PinnedScheduler()
    if name in ("round_robin", "rr"):
        return RoundRobinScheduler()
    if name in ("cwnd_aware", "aggregate", "aggregation"):
        return CwndAwareScheduler()
    if name in ("lowest_rtt", "rtt"):
        return LowestRttScheduler()
    if name in ("health", "health_aware"):
        return HealthAwareScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
