"""Record sizing: matching TLS records to the TCP congestion window.

Paper section 4.6: "performance advantages of combining those two layers
may be achieved from, for example, adjusting the size of TLS records
based on the current TCP congestion window to avoid fragmented records
(non-fragmented records makes TCPLS' design having a zero-copy code
path)".

A record is *fragmented* when its wire bytes do not fit into the
connection's currently available send window, so the tail waits at least
one ACK before leaving — the receiver cannot decrypt (and thus deliver)
anything until the whole record arrives.  The cwnd-matched policy sizes
each record to the free window, eliminating those stalls; the ablation
benchmark quantifies the difference.
"""

from __future__ import annotations

# Frame overhead inside the plaintext: seq(8) + stream header(13).
FRAME_OVERHEAD = 8 + 4 + 8 + 1
# Record overhead on the wire: TLS header(5) + inner type(1) + tag(16).
RECORD_OVERHEAD = 5 + 1 + 16
TOTAL_OVERHEAD = FRAME_OVERHEAD + RECORD_OVERHEAD


class RecordSizer:
    """Chooses the stream-data payload size for the next record."""

    def __init__(self, max_payload: int = 16000, match_cwnd: bool = False) -> None:
        if max_payload <= 0:
            raise ValueError("max_payload must be positive")
        self.max_payload = max_payload
        self.match_cwnd = match_cwnd
        self.records = 0
        self.fragmented_records = 0

    def chunk_size(self, conn) -> int:
        """Payload bytes for the next record on ``conn``."""
        if not self.match_cwnd:
            return self.max_payload
        room = conn.send_room()
        usable = room - TOTAL_OVERHEAD
        if usable <= 0:
            # The window is (nearly) closed; send a minimal record rather
            # than stalling — it will queue in TCP like any other byte.
            return min(self.max_payload, conn.tcp.effective_mss())
        return max(min(self.max_payload, usable), 1)

    def account(self, payload_length: int, conn) -> None:
        """Record bookkeeping: was this record fragmented by the window?"""
        self.records += 1
        wire = payload_length + TOTAL_OVERHEAD
        if wire > max(conn.send_room(), 0):
            self.fragmented_records += 1

    def stats(self) -> dict:
        return {
            "records": self.records,
            "fragmented": self.fragmented_records,
            "fragmented_ratio": (
                self.fragmented_records / self.records if self.records else 0.0
            ),
        }
