"""The TCPLS session: the object behind every ``tcpls_*`` API call.

A ``TcplsSession`` gathers one TLS 1.3 session and one or more TCP
connections (like a Multipath TCP connection gathers subflows — paper
section 2.1) and runs the machinery of sections 2-3 on top of them:

- per-(stream, connection) cryptographic contexts with receiver-side
  trial decryption;
- session sequence numbers, TCPLS ACKs, replay-on-failover;
- JOIN of additional connections using CONNID + one-time cookies;
- application-driven connection migration and automatic failover on
  spurious RST or outage;
- the secure TCP-option channel (User Timeout working end-to-end);
- congestion-control plugins delivered as bytecode;
- 0-RTT resumption over TCP Fast Open;
- SYN-echo middlebox detection.

``TcplsServer`` demultiplexes incoming TCP connections on a listening
port into new sessions (ClientHello) or JOINs to existing ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import framing, join as joinmod
from repro.core.contexts import CONTROL_STREAM_ID, ContextManager
from repro.core.cookies import CookieJar, CookiePurse, mint_connection_id
from repro.core.events import Event, EventDispatcher
from repro.core.framing import TType
from repro.core.health import PathHealth, best_path
from repro.core.record_sizing import RecordSizer, TOTAL_OVERHEAD
from repro.core.reliability import ReceiveTracker, ReplayBuffer
from repro.core.scheduler import make_scheduler
from repro.core.streams import DEFAULT_STREAM_WINDOW, TcplsStream
from repro.obs import Observability
from repro.obs import keys as obs_keys
from repro.tcp.connection import TcpConnection
from repro.tcp.options import (
    MAX_USER_TIMEOUT_SECONDS,
    UserTimeout,
    decode_single_option,
)
from repro.tcp.stack import TcpStack
from repro.tls import messages as m
from repro.tls.certificates import Identity, TrustStore
from repro.tls.record import ContentType, RecordDecoder, record_header
from repro.tls.replay import AntiReplayRegister
from repro.tls.session import SessionTicketStore, TlsConfig, TlsSession
from repro.utils.bytesio import ByteWriter
from repro.utils.errors import (
    DecodeError,
    GuardLimitExceeded,
    ProtocolViolation,
    UnknownType,
    WouldBlock,
)

# Per-process session counter mixed into each session's RNG: one server
# context accepts many sessions, and each must mint a distinct CONNID and
# cookie set (deterministic given creation order, which the simulator
# fixes).
_session_counter = [0]


@dataclass
class TcplsContext:
    """Configuration for TCPLS sessions (client or server side)."""

    # TLS material.
    identity: Optional[Identity] = None            # server
    trust_store: Optional[TrustStore] = None       # client
    server_name: str = ""                          # client
    ticket_store: Optional[SessionTicketStore] = None
    ticket_key: bytes = b"\x00" * 32
    send_tickets: int = 2
    # Resumption hardening.  ``ticket_lifetime`` is sealed into every
    # issued ticket and enforced on both ends (the TLS layer reads the
    # simulator clock, wired in by the session).  ``zero_rtt_anti_replay``
    # sizes the server's bounded 0-RTT strike register (0 disables it);
    # ``anti_replay`` lets several servers share one register — a
    # TcplsServer builds its own when left None.
    ticket_lifetime: int = 7200
    zero_rtt_anti_replay: int = 4096
    anti_replay: Optional[AntiReplayRegister] = None
    # Overload retry coupon (client side): a sealed coupon a server
    # handed out when it refused this client under pressure, presented
    # in the redial's ClientHello for cheap-class admission.
    retry_coupon: bytes = b""

    # TCPLS behaviour.
    congestion: str = "reno"
    multipath_mode: str = "pinned"   # pinned | aggregate | round_robin | rtt
    ack_every: int = 16
    ack_flush_delay: float = 0.025
    max_record_payload: int = 16000
    cwnd_match_records: bool = False
    auto_failover: bool = True
    # Applied to every underlying TCP connection so path outages surface
    # as connection failures quickly enough for failover to act (the
    # local analogue of the RFC 5482 option TCPLS ships to the peer).
    connection_user_timeout: Optional[float] = 5.0
    cookie_batch: int = 4
    advertise_addresses: bool = True
    seed: int = 0

    # Robustness / recovery (client-side reconnection after total path
    # loss).  The seed code made exactly one reconnect attempt; these
    # knobs bound an exponential-backoff retry loop instead: attempt i
    # waits ``min(backoff_base * 2**(i-1), backoff_max)`` plus a random
    # jitter fraction before redialling, up to ``reconnect_max_retries``
    # attempts (each consuming one JOIN cookie).  ``join_timeout`` is a
    # per-attempt guard for JOINs that hang without the TCP connection
    # dying.
    reconnect_max_retries: int = 4
    reconnect_backoff_base: float = 0.25
    reconnect_backoff_max: float = 4.0
    reconnect_backoff_jitter: float = 0.1
    join_timeout: float = 10.0

    # How many *consecutive* record-authentication failures a connection
    # tolerates before it is declared compromised and failed over.  A
    # lone forged record injected by an attacker fails once and genuine
    # traffic keeps decrypting (the receive nonce never advanced), so
    # small runs are survivable noise; but a tampered *genuine* record
    # desynchronizes the AEAD nonce sequence and every later record on
    # that connection fails too — only killing the connection (and
    # replaying its unacked frames elsewhere) can recover from that, and
    # a tolerance this small bounds how long the stall lasts.
    auth_failure_tolerance: int = 3

    # Resource-exhaustion guards (fail closed; each trip increments the
    # session's ``guard.tripped`` counter).  ``max_streams`` caps the
    # concurrent stream table; ``max_reassembly_bytes`` caps one
    # stream's out-of-order buffer (a peer striping far ahead of a hole
    # is hoarding our memory); ``max_plaintext_records`` caps how much
    # post-establishment plaintext junk (injected non-APPDATA records)
    # a connection tolerates before it is torn down; the JOIN knobs
    # rate-limit cookie-guessing against the server per peer address.
    # ``max_session_memory`` caps the *session-wide* buffered-byte
    # footprint — every stream's reassembly buffer plus the failover
    # replay buffer — so one session cannot hoard a scale run's memory
    # even while each individual stream stays under its own cap.
    max_streams: int = 64
    max_reassembly_bytes: int = 4 << 20
    max_session_memory: int = 16 << 20
    max_plaintext_records: int = 32
    join_rate_limit: int = 8
    join_rate_window: float = 1.0

    # Per-stream flow control (PR 9).  ``stream_recv_window`` is the
    # credit this endpoint grants a peer per stream: in-order bytes the
    # application has not consumed plus reassembly backlog may never
    # exceed it, and a compliant sender stalls instead of overrunning.
    # The default equals ``DEFAULT_STREAM_WINDOW`` so symmetric contexts
    # agree on the initial credit without a handshake extension.
    # ``stream_send_buffer`` bounds the *local* unsent backlog per
    # stream: 0 keeps the legacy queue-everything behaviour (still
    # capped by ``max_session_memory``); a positive value makes
    # ``send()`` raise ``WouldBlock`` instead of queueing past it, with
    # ``Event.STREAM_WRITABLE`` fired once the backlog drains below
    # half the limit.
    stream_recv_window: int = DEFAULT_STREAM_WINDOW
    stream_send_buffer: int = 0

    # Path health monitor.  ``health_interval > 0`` arms a periodic tick
    # that refreshes per-path loss scores and sends a heartbeat PING on
    # connections idle longer than ``health_idle_ping`` (keeping TCP's
    # RTT/loss signals fresh on quiet paths so a dead one is noticed).
    # Off by default: scoring itself works without the tick, and the
    # tick adds wire traffic.
    health_interval: float = 0.0
    health_idle_ping: float = 1.0

    # Observability (repro.obs).  ``telemetry`` keeps the per-session
    # hub on by default (instrumentation is observation-only, so
    # disabling it never changes a simulated result); ``observability``
    # shares one hub — one timeline, one metrics registry — across all
    # sessions built from this context (e.g. a server and everything it
    # accepts).
    telemetry: bool = True
    observability: Optional[Observability] = None

    def rng(self) -> random.Random:
        return random.Random(self.seed)


class TcplsConnection:
    """One TCP connection inside a TCPLS session.

    ``__slots__``-packed: thousands of concurrent sessions mean
    thousands of these plus their per-frame attribute reads; slots cut
    the per-instance dict and keep the hot fields in fixed offsets.
    """

    __slots__ = (
        "session",
        "conn_id",
        "tcp",
        "state",
        "is_primary",
        "token",
        "decoder",
        "bytes_delivered",
        "records_received",
        "auth_failure_run",
        "plaintext_junk",
        "health",
    )

    CONNECTING = "CONNECTING"
    TLS_HANDSHAKE = "TLS_HANDSHAKE"
    JOIN_SENT = "JOIN_SENT"
    ACTIVE = "ACTIVE"
    FAILED = "FAILED"
    CLOSED = "CLOSED"

    def __init__(self, session: "TcplsSession", conn_id: int, tcp: TcpConnection) -> None:
        self.session = session
        self.conn_id = conn_id
        self.tcp = tcp
        self.state = self.CONNECTING
        self.is_primary = False
        self.token = b""  # key-derivation token: CONNID or the JOIN cookie
        self.decoder = RecordDecoder()  # raw record splitting only
        self.bytes_delivered = 0
        self.records_received = 0
        self.auth_failure_run = 0  # consecutive open_record failures
        self.plaintext_junk = 0  # post-establishment non-APPDATA records
        self.health = PathHealth()
        tcp.on_data = self._on_data
        tcp.on_established = lambda: session._on_tcp_established(self)
        tcp.on_reset = lambda: session._on_tcp_failed(self, "reset")
        tcp.on_error = lambda reason: session._on_tcp_failed(self, reason)
        tcp.on_close = lambda: session._on_tcp_peer_close(self)
        tcp.on_send_progress = session._pump

    def _on_data(self, data: bytes) -> None:
        self.session._on_tcp_data(self, data)

    def usable(self) -> bool:
        return self.state == self.ACTIVE and self.tcp.state in (
            "ESTABLISHED", "CLOSE_WAIT",
        )

    def send_room(self) -> int:
        """Free sending capacity: window minus flight minus queued bytes.

        Clamped at zero: queued bytes can exceed the window after a
        congestion-window collapse, and a negative value skews the
        round-robin scheduler's capacity comparisons.
        """
        info_window = min(self.tcp.cc.window(), self.tcp.snd_wnd)
        room = info_window - self.tcp.bytes_in_flight() - self.tcp.send_queue_length()
        return max(0, room)

    def path_score(self) -> float:
        """Health score (lower is better) for scheduler/failover choice."""
        return self.health.score(self)

    def describe(self) -> dict:
        return {
            "conn_id": self.conn_id,
            "state": self.state,
            "primary": self.is_primary,
            "local": f"{self.tcp.local_addr}:{self.tcp.local_port}",
            "remote": f"{self.tcp.remote_addr}:{self.tcp.remote_port}",
            "tcp": self.tcp.info(),
            "health": self.health.describe(self),
        }


class TcplsSession:
    """One endpoint (client or server) of a TCPLS session."""

    def __init__(
        self,
        context: TcplsContext,
        stack: TcpStack,
        is_server: bool = False,
    ) -> None:
        self.context = context
        self.stack = stack
        self.sim = stack.sim
        self.is_server = is_server
        _session_counter[0] += 1
        self.rng = random.Random(
            (context.seed, _session_counter[0], is_server).__hash__() & 0x7FFFFFFF
        )

        self.connections: Dict[int, TcplsConnection] = {}
        self._next_conn_id = 0
        self.primary: Optional[TcplsConnection] = None

        self.streams: Dict[int, TcplsStream] = {}
        self._next_stream_id = 2 if is_server else 1

        self.tls: Optional[TlsSession] = None
        self.handshake_complete = False
        self.contexts: Optional[ContextManager] = None
        self.replay = ReplayBuffer()
        self.tracker = ReceiveTracker()
        self.sizer = RecordSizer(
            max_payload=context.max_record_payload,
            match_cwnd=context.cwnd_match_records,
        )
        self.scheduler = make_scheduler(
            context.multipath_mode if context.multipath_mode != "pinned" else "pinned"
        )
        self.multipath_enabled = context.multipath_mode != "pinned"
        self.events = EventDispatcher()

        # Identity / join state.
        self.connection_id = b""
        self.cookie_jar = CookieJar(self.rng, batch_size=context.cookie_batch)
        self.cookie_purse = CookiePurse()
        self.peer_v4_addresses: List[str] = []
        self.peer_v6_addresses: List[str] = []

        # Application callbacks.
        self.on_stream_data: Optional[Callable[[int, bytes], None]] = None
        self.on_stream_fin: Optional[Callable[[int], None]] = None
        self.on_early_data: Optional[Callable[[bytes], None]] = None

        # Accounting for the experiments.
        self.delivery_log: List[Tuple[float, int, int]] = []  # (time, conn, bytes)
        self.stats = {
            "records_sent": 0,
            "records_received": 0,
            "frames_replayed": 0,
            "acks_sent": 0,
            "acks_received": 0,
        }
        self._unacked_since_flush = 0
        self._ack_flush_event = None
        self._closing = False
        self.session_closed = False
        self._probe_reports: Dict[int, List[str]] = {}

        # Robustness state.  ``_reconnect`` is the in-flight reconnection
        # state machine (None when idle); ``_degraded_level`` is None,
        # "single_path" or "no_path"; ``_peak_active`` remembers the best
        # path redundancy the session ever had, so dropping from 2 paths
        # to 1 counts as degradation but a single-path session does not.
        self._reconnect: Optional[dict] = None
        self._degraded_level: Optional[str] = None
        self._degraded_since = 0.0
        self._peak_active = 0
        self._health_timer = None

        # Observability: one hub per session unless the context shares
        # one.  Instruments are looked up once here so the hot paths
        # below are single attribute increments.
        self.obs = context.observability or Observability(
            self.sim, enabled=context.telemetry
        )
        component = obs_keys.session_component(is_server)
        self._obs_component = component
        telemetry = self.obs.telemetry
        self._obs_records_sent = telemetry.counter(component, obs_keys.RECORDS_SENT)
        self._obs_records_received = telemetry.counter(
            component, obs_keys.RECORDS_RECEIVED
        )
        self._obs_record_bytes = telemetry.histogram(
            component, obs_keys.RECORD_BYTES
        )
        self._obs_acks_sent = telemetry.counter(component, obs_keys.ACKS_SENT)
        self._obs_acks_received = telemetry.counter(
            component, obs_keys.ACKS_RECEIVED
        )
        self._obs_frames_replayed = telemetry.counter(
            component, obs_keys.FRAMES_REPLAYED
        )
        self._obs_stream_bytes = telemetry.counter(
            component, obs_keys.STREAM_BYTES_RECEIVED
        )
        # Fault & recovery counters (the fault-injection test matrix and
        # the invariant checker read these).
        self._obs_retries = telemetry.counter(component, obs_keys.FAILOVER_RETRIES)
        self._obs_recovered = telemetry.counter(
            component, obs_keys.FAILOVER_RECOVERED
        )
        self._obs_abandoned = telemetry.counter(
            component, obs_keys.FAILOVER_ABANDONED
        )
        self._obs_cookies_exhausted = telemetry.counter(
            component, obs_keys.FAILOVER_COOKIES_EXHAUSTED
        )
        self._obs_pings = telemetry.counter(component, obs_keys.HEALTH_PINGS_SENT)
        # Fail-closed wire hardening: rejected decodes and tripped
        # resource guards, per layer (the fuzz/attacker tests and the
        # BENCH export read these).
        self._obs_decode_rejected = telemetry.counter(
            component, obs_keys.DECODE_REJECTED
        )
        self._obs_guard_tripped = telemetry.counter(
            component, obs_keys.GUARD_TRIPPED
        )
        self._obs_memory = telemetry.gauge(
            component, obs_keys.SESSION_MEMORY_BYTES
        )
        # Resumption outcomes (the recovery benchmark reads these to
        # compute the 0-RTT acceptance rate across a key rotation).
        self._obs_psk_accepted = telemetry.counter(
            component, obs_keys.RESUMPTION_PSK_ACCEPTED
        )
        self._obs_psk_declined = telemetry.counter(
            component, obs_keys.RESUMPTION_PSK_DECLINED
        )
        self._obs_early_accepted = telemetry.counter(
            component, obs_keys.RESUMPTION_EARLY_ACCEPTED
        )
        self._obs_early_rejected = telemetry.counter(
            component, obs_keys.RESUMPTION_EARLY_REJECTED
        )
        self._obs_replay_rejected = telemetry.counter(
            component, obs_keys.RESUMPTION_REPLAY_REJECTED
        )
        # Per-stream flow control (the overload tests and O1 benchmark
        # read these to prove backpressure engaged).
        self._obs_flow_would_block = telemetry.counter(
            component, obs_keys.FLOW_WOULD_BLOCK
        )
        self._obs_flow_stalls = telemetry.counter(
            component, obs_keys.FLOW_STALLS
        )
        self._obs_flow_writable = telemetry.counter(
            component, obs_keys.FLOW_WRITABLE
        )
        self._obs_flow_updates_sent = telemetry.counter(
            component, obs_keys.FLOW_WINDOW_UPDATES_SENT
        )
        self._obs_flow_updates_received = telemetry.counter(
            component, obs_keys.FLOW_WINDOW_UPDATES_RECEIVED
        )
        self._obs_flow_violations = telemetry.counter(
            component, obs_keys.FLOW_VIOLATIONS
        )
        self.events.observer = self._observe_session_event
        self.events.clock = lambda: self.sim.now
        self._hs_span = None
        self._join_spans: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Event registration
    # ------------------------------------------------------------------

    def on(self, event: str, handler: Callable) -> None:
        self.events.on(event, handler)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    # Session state transitions worth a TCP_INFO snapshot of every
    # connection (cheap: a handful per session lifetime, never per-record).
    _SNAPSHOT_EVENTS = frozenset(
        (
            Event.HANDSHAKE_DONE,
            Event.JOIN,
            Event.FAILOVER,
            Event.CONN_FAILED,
            Event.CONN_CLOSED,
            Event.MIGRATION_DONE,
            Event.SESSION_DEGRADED,
            Event.SESSION_RECOVERED,
        )
    )

    def _observe_session_event(self, event: str, kwargs: dict) -> None:
        """EventDispatcher tap: mirror every session event onto the
        timeline (correlatable with pcap timestamps) and snapshot TCP
        state on the transitions the paper's figures care about."""
        self.obs.tracer.point(self._obs_component, event, **kwargs)
        self.obs.telemetry.counter(
            self._obs_component, obs_keys.session_event(event)
        ).inc()
        if event in self._SNAPSHOT_EVENTS:
            self.obs.tcp_log.sample(event, self.connections.values())

    def metrics(self) -> dict:
        """Machine-readable self-description: stats, counters, per-
        connection TCP snapshots, and the event timeline."""
        from repro.obs.export import _session_metrics

        return _session_metrics(self)

    # ------------------------------------------------------------------
    # Connection management (client)
    # ------------------------------------------------------------------

    def connect(
        self,
        dest: str,
        port: int = 443,
        src: Optional[str] = None,
        fast_open: bool = False,
        fast_open_data: bytes = b"",
    ) -> int:
        """Open a TCP connection toward the server; returns a conn id.

        ``src`` pins the connection to a local address (explicit
        multipath: ``tcpls_connect(src, dest)``).
        """
        tcp = self.stack.connect(
            dest,
            port,
            local_addr=src,
            congestion=self.context.congestion,
            fast_open=fast_open,
            fast_open_data=fast_open_data,
        )
        return self._register_tcp(tcp).conn_id

    def _register_tcp(self, tcp: TcpConnection) -> TcplsConnection:
        if self.context.connection_user_timeout is not None:
            tcp.set_user_timeout(self.context.connection_user_timeout)
        conn = TcplsConnection(self, self._next_conn_id, tcp)
        self.connections[self._next_conn_id] = conn
        self._next_conn_id += 1
        return conn

    def happy_eyeballs_connect(
        self,
        dest_v4: str,
        dest_v6: str,
        port: int = 443,
        timeout: float = 0.050,
    ) -> dict:
        """Race v4 and v6 connects, preferring whichever establishes first.

        Mirrors the Figure 3 pattern: try the first family; if it has not
        established within ``timeout`` (50 ms in the paper), also start
        the second; the first to establish wins and the loser is aborted.
        Returns a dict whose ``winner``/``v4``/``v6`` fields fill in as
        the simulation progresses.
        """
        result = {"winner": None, "v4": None, "v6": None}
        result["v4"] = self.connect(dest_v4, port)

        def on_established(conn_id: int) -> None:
            if result["winner"] is not None:
                return
            if conn_id not in (result["v4"], result["v6"]):
                return
            result["winner"] = conn_id
            for loser_id in (result["v4"], result["v6"]):
                if loser_id is not None and loser_id != conn_id:
                    loser = self.connections[loser_id]
                    if loser.state == TcplsConnection.CONNECTING:
                        loser.state = TcplsConnection.CLOSED
                        loser.tcp.abort()

        self.events.on(Event.CONN_ESTABLISHED, on_established)

        def start_v6_if_needed() -> None:
            if result["winner"] is None:
                result["v6"] = self.connect(dest_v6, port)

        self.sim.schedule(timeout, start_v6_if_needed)
        return result

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    def handshake(self, conn_id: Optional[int] = None, early_data: bytes = b"") -> None:
        """Start the TLS/TCPLS handshake (client).

        With ``conn_id`` naming a non-primary connection after the
        session is established, this performs a JOIN on that connection
        instead (the Figure 4 migration chain's first call).
        """
        if self.is_server:
            raise RuntimeError("handshake() is client-side; use TcplsServer")
        conn = self._resolve_conn(conn_id)
        if self.handshake_complete:
            self._start_join(conn)
            return
        self._start_tls_client(conn, early_data)

    def _resolve_conn(self, conn_id: Optional[int]) -> TcplsConnection:
        if conn_id is not None:
            return self.connections[conn_id]
        if self.primary is not None and self.primary.state not in (
            TcplsConnection.FAILED,
            TcplsConnection.CLOSED,
        ):
            return self.primary
        # The primary is gone: pin to the healthiest surviving path
        # instead of silently targeting a dead connection.
        fallback = best_path(self._active_conns())
        if fallback is not None:
            return fallback
        if not self.connections:
            raise RuntimeError("no connection; call connect() first")
        return next(iter(self.connections.values()))

    def _wire_tls_guards(self, tls: TlsSession) -> None:
        """Feed TLS-layer rejections into the session's observability.

        The TLS driver fails closed on its own (alert + teardown); this
        only makes those events visible in ``decode.rejected`` /
        ``guard.tripped`` alongside the TCPLS-layer ones.
        """
        tls.on_decode_rejected = lambda _why: self._obs_decode_rejected.inc()
        tls.on_guard_tripped = lambda _why: self._obs_guard_tripped.inc()

    def _client_extensions(self) -> List[Tuple[int, bytes]]:
        """ClientHello extensions: the TCPLS marker, plus a retry coupon
        when a refusing server handed one out (cheap-class admission on
        the redial)."""
        extensions = [(joinmod.EXT_TCPLS, joinmod.build_tcpls_marker())]
        if self.context.retry_coupon:
            extensions.append((m.EXT_TCPLS_COUPON, self.context.retry_coupon))
        return extensions

    def _start_tls_client(self, conn: TcplsConnection, early_data: bytes) -> None:
        conn.is_primary = True
        self.primary = conn
        self._hs_span = self.obs.tracer.span(
            self._obs_component, "handshake", conn_id=conn.conn_id,
            early_data=bool(early_data),
        )
        tls_config = TlsConfig(
            trust_store=self.context.trust_store,
            server_name=self.context.server_name,
            ticket_store=self.context.ticket_store,
            extra_client_extensions=self._client_extensions(),
            rng=random.Random(self.rng.randrange(1 << 30)),
            clock=lambda: self.sim.now,
        )
        self.tls = TlsSession(
            tls_config, is_server=False, transport_write=conn.tcp.send
        )
        self._wire_tls_guards(self.tls)
        self.tls.on_handshake_complete = lambda: self._on_tls_complete(conn)

        def start():
            conn.state = TcplsConnection.TLS_HANDSHAKE
            self.tls.start_handshake(early_data=early_data)

        if conn.tcp.state == "ESTABLISHED":
            start()
        else:
            previous = conn.tcp.on_established

            def on_established():
                if previous:
                    previous()
                start()

            conn.tcp.on_established = on_established

    def connect_0rtt(
        self, dest: str, port: int = 443, early_data: bytes = b""
    ) -> int:
        """0-RTT TCPLS (section 4.2): TLS 0-RTT inside a TFO SYN.

        The ClientHello plus early-data records ride in the SYN payload;
        on a path with a cached TFO cookie and a resumption ticket the
        server application sees the request with zero extra round trips.
        """
        if self.is_server:
            raise RuntimeError("connect_0rtt is client-side")
        first_flight = bytearray()
        hold = [first_flight.extend]

        def write(data: bytes) -> None:
            hold[0](data)

        tls_config = TlsConfig(
            trust_store=self.context.trust_store,
            server_name=self.context.server_name,
            ticket_store=self.context.ticket_store,
            extra_client_extensions=self._client_extensions(),
            rng=random.Random(self.rng.randrange(1 << 30)),
            clock=lambda: self.sim.now,
        )
        self.tls = TlsSession(tls_config, is_server=False, transport_write=write)
        self._wire_tls_guards(self.tls)
        self.tls.start_handshake(early_data=early_data)
        syn_payload = bytes(first_flight)

        conn_id = self.connect(
            dest, port, fast_open=True, fast_open_data=syn_payload
        )
        conn = self.connections[conn_id]
        conn.is_primary = True
        conn.state = TcplsConnection.TLS_HANDSHAKE
        self.primary = conn
        self._hs_span = self.obs.tracer.span(
            self._obs_component, "handshake", conn_id=conn.conn_id,
            zero_rtt=True,
        )
        hold[0] = conn.tcp.send  # later flights go straight to TCP
        self.tls.on_handshake_complete = lambda: self._on_tls_complete(conn)
        return conn_id

    # -- server side (driven by TcplsServer) ------------------------------

    def accept_primary(self, tcp: TcpConnection, initial_bytes: bytes) -> None:
        conn = self._register_tcp(tcp)
        conn.is_primary = True
        conn.state = TcplsConnection.TLS_HANDSHAKE
        self.primary = conn
        self._hs_span = self.obs.tracer.span(
            self._obs_component, "handshake", conn_id=conn.conn_id
        )

        self.connection_id = mint_connection_id(self.rng)
        cookies = self.cookie_jar.mint()
        params = joinmod.TcplsServerParams(
            connection_id=self.connection_id,
            cookies=cookies,
            v4_addresses=[
                str(a) for a in self.stack.host.addresses(version=4)
            ] if self.context.advertise_addresses else [],
            v6_addresses=[
                str(a) for a in self.stack.host.addresses(version=6)
            ] if self.context.advertise_addresses else [],
        )
        tls_config = TlsConfig(
            identity=self.context.identity,
            ticket_key=self.context.ticket_key,
            send_tickets=self.context.send_tickets,
            ticket_lifetime=self.context.ticket_lifetime,
            anti_replay=self.context.anti_replay,
            extra_encrypted_extensions=[(joinmod.EXT_TCPLS, params.to_bytes())],
            rng=random.Random(self.rng.randrange(1 << 30)),
            clock=lambda: self.sim.now,
        )
        self.tls = TlsSession(tls_config, is_server=True, transport_write=tcp.send)
        self._wire_tls_guards(self.tls)
        self.tls.on_handshake_complete = lambda: self._on_tls_complete(conn)
        self.tls.on_early_data = self._on_tls_early_data
        if initial_bytes:
            self._on_tcp_data(conn, initial_bytes)

    def _on_tls_early_data(self, data: bytes) -> None:
        if self.on_early_data:
            self.on_early_data(data)

    # -- handshake completion ------------------------------------------------

    def _on_tls_complete(self, conn: TcplsConnection) -> None:
        self.handshake_complete = True
        conn.state = TcplsConnection.ACTIVE
        if self._hs_span is not None:
            self._hs_span.end()
            self._hs_span = None
        # Resumption outcome counters, from the TLS layer's flags.
        if self.tls.psk_offered:
            if self.tls.used_psk:
                self._obs_psk_accepted.inc()
            else:
                self._obs_psk_declined.inc()
        if self.tls.early_data_accepted:
            self._obs_early_accepted.inc()
        elif self.tls.early_data_sent or self.tls.early_replay_rejected:
            self._obs_early_rejected.inc()
        if self.tls.early_replay_rejected:
            self._obs_replay_rejected.inc()
        # Post-handshake TLS records (tickets, key updates) feed the
        # same record-size histogram as TCPLS frames.
        self.tls.encoder.on_record_encrypted = self._obs_record_bytes.observe
        self.tls.decoder.on_record_decrypted = self._obs_record_bytes.observe
        self.contexts = ContextManager(self.tls.export, is_client=not self.is_server)

        if not self.is_server:
            body = m.get_extension(
                self.tls.peer_encrypted_extensions, joinmod.EXT_TCPLS
            )
            if body is None:
                raise ProtocolViolation("server did not negotiate TCPLS")
            params = joinmod.TcplsServerParams.from_bytes(body)
            self.connection_id = params.connection_id
            self.cookie_purse.deposit(params.cookies)
            self.peer_v4_addresses = params.v4_addresses
            self.peer_v6_addresses = params.v6_addresses
            if params.v4_addresses or params.v6_addresses:
                self.events.emit(
                    Event.ADDRESS_ADVERTISED,
                    v4=params.v4_addresses,
                    v6=params.v6_addresses,
                )
        conn.token = self.connection_id

        # The TLS application cipher states become the primary control
        # context, keeping one nonce sequence with post-handshake TLS.
        self.contexts.install_external(
            CONTROL_STREAM_ID,
            conn.conn_id,
            send=self.tls.encoder.cipher,
            recv=self.tls.decoder.cipher,
        )
        self.events.emit(Event.HANDSHAKE_DONE, conn_id=conn.conn_id)
        self._note_path_active()
        self._start_health_monitor()
        self._pump()

    # ------------------------------------------------------------------
    # JOIN (client side)
    # ------------------------------------------------------------------

    def _start_join(self, conn: TcplsConnection) -> None:
        cookie = self.cookie_purse.withdraw()
        if cookie is None:
            self._on_tcp_failed(conn, "no JOIN cookie available")
            return
        conn.token = cookie
        self._join_spans[conn.conn_id] = self.obs.tracer.span(
            self._obs_component, "join", conn_id=conn.conn_id
        )

        def send_join():
            conn.state = TcplsConnection.JOIN_SENT
            hello = joinmod.build_join_client_hello(
                self.connection_id, cookie, self.rng
            )
            conn.tcp.send(record_header(ContentType.HANDSHAKE, len(hello)) + hello)
            # Derive this connection's contexts from the session + cookie.
            self.contexts.install(CONTROL_STREAM_ID, conn.conn_id, cookie)

        if conn.tcp.state == "ESTABLISHED":
            send_join()
        else:
            previous = conn.tcp.on_established

            def on_established():
                if previous:
                    previous()
                send_join()

            conn.tcp.on_established = on_established

    # -- server side JOIN (driven by TcplsServer) -----------------------------

    def adopt_joined_connection(
        self, tcp: TcpConnection, cookie: bytes, leftover: bytes
    ) -> bool:
        if not self.cookie_jar.consume(cookie):
            tcp.abort("invalid TCPLS cookie")
            return False
        conn = self._register_tcp(tcp)
        conn.token = cookie
        self.contexts.install(CONTROL_STREAM_ID, conn.conn_id, cookie)
        self._activate_joined(conn)
        self._send_frame(
            conn, TType.JOIN_ACK, framing.encode_join_ack(conn.conn_id), seq=0
        )
        self.events.emit(Event.JOIN, conn_id=conn.conn_id)
        # Replenish what the JOIN consumed (plus cover for attempts that
        # burned a cookie without completing): without a top-up, a few
        # reconnect cycles exhaust the handshake batch and the next
        # failure becomes unrecoverable.  Sent as sequenced control data,
        # so a replenishment in flight when a path dies is replayed.
        if self.context.cookie_batch > 0:
            self.send_new_cookies(self.context.cookie_batch)
        if leftover:
            self._on_tcp_data(conn, leftover)
        return True

    def _activate_joined(self, conn: TcplsConnection) -> None:
        conn.state = TcplsConnection.ACTIVE
        # Every attached stream gains contexts on the new connection so
        # multipath striping and migration can use it immediately.
        for stream in self.streams.values():
            if stream.attached:
                self.contexts.install(stream.stream_id, conn.conn_id, conn.token)
        self._note_path_active()

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def stream_new(self, conn_id: Optional[int] = None) -> int:
        conn = self._resolve_conn(conn_id)
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        stream = TcplsStream(
            stream_id, conn.conn_id,
            recv_window=self.context.stream_recv_window,
        )
        self._wire_stream(stream)
        self.streams[stream_id] = stream
        return stream_id

    def _wire_stream(self, stream: TcplsStream) -> None:
        stream.on_data = lambda data: self._deliver_stream_data(stream, data)
        stream.on_fin = lambda: self._on_stream_fin(stream)

    def streams_attach(self) -> None:
        """Announce every unattached stream to the peer (STREAM_OPEN)."""
        if not self.handshake_complete:
            raise RuntimeError("streams_attach before handshake completion")
        for stream in self.streams.values():
            if stream.attached:
                continue
            stream.attached = True
            for conn in self._active_conns():
                self.contexts.install(stream.stream_id, conn.conn_id, conn.token)
            seq = self.replay.next_seq()
            body = framing.encode_stream_open(stream.stream_id, stream.conn_id)
            self.replay.store(seq, TType.STREAM_OPEN, stream.stream_id, body)
            # Announce on EVERY active connection (same seq; the receiver
            # deduplicates): each TCP's in-order delivery then guarantees
            # the peer knows the stream before any of its data arrives on
            # that connection — otherwise data racing ahead of the
            # STREAM_OPEN on another connection would fail trial
            # decryption and be lost.
            for conn in self._active_conns():
                self._send_frame(
                    conn, TType.STREAM_OPEN, body, seq,
                    stream_id=CONTROL_STREAM_ID,
                )
            self.events.emit(
                Event.STREAM_ATTACHED,
                stream_id=stream.stream_id,
                conn_id=stream.conn_id,
            )

    def send(self, stream_id: int, data: bytes) -> int:
        stream = self.streams[stream_id]
        limit = self.context.stream_send_buffer
        if limit > 0 and len(stream.send_buffer) + len(data) > limit:
            # Typed backpressure: the peer has not granted enough credit
            # to drain the local queue.  Nothing is queued; the caller
            # waits for Event.STREAM_WRITABLE and retries.
            stream.writable_blocked = True
            self._obs_flow_would_block.inc()
            raise WouldBlock(stream_id, len(stream.send_buffer), limit)
        if (
            self.session_memory_bytes() + len(data)
            > self.context.max_session_memory
        ):
            # Fail closed toward the application: queueing past the
            # session budget would let one slow peer pin unbounded local
            # memory.  The caller sees backpressure as an exception
            # instead of the farm seeing an OOM.
            self._obs_guard_tripped.inc()
            raise GuardLimitExceeded(
                f"session memory budget "
                f"({self.context.max_session_memory}B) exhausted; "
                f"refusing {len(data)}B write to stream {stream_id}"
            )
        stream.queue(data)
        self._obs_memory.set(self.session_memory_bytes())
        self._pump()
        return len(data)

    def session_memory_bytes(self) -> int:
        """Buffered bytes this session currently pins.

        Counts every stream's send queue, out-of-order reassembly
        buffer, and delivered-but-unread app-read queue, plus the
        failover replay buffer — the stores whose growth is driven by
        the peer (or a slow consumer) rather than by us.  All are O(1)
        reads.
        """
        total = self.replay.pending_bytes()
        for stream in self.streams.values():
            total += (
                len(stream.send_buffer)
                + stream.reassembly_bytes()
                + stream.app_buffered()
            )
        return total

    def recv_data(self, stream_id: int, max_bytes: Optional[int] = None) -> bytes:
        """Pull delivered stream bytes from the app-read queue.

        Only meaningful when no ``on_stream_data`` callback consumes
        data at delivery time.  Draining the queue returns flow-control
        credit to the peer (a WINDOW_UPDATE grant once a quarter of the
        window has been consumed), so a reader that stops calling this
        backpressures the sender instead of growing our memory.
        """
        stream = self.streams.get(stream_id)
        if stream is None:
            return b""
        data = stream.read(max_bytes)
        if data:
            self._obs_memory.set(self.session_memory_bytes())
            self._maybe_grant_credit(stream)
        return data

    def stream_close(self, stream_id: int) -> None:
        stream = self.streams.get(stream_id)
        if stream is None or stream.fin_pending:
            return
        stream.close()
        self._pump()

    def close(self) -> None:
        """Securely terminate: close all streams, then the session."""
        self._closing = True
        for stream_id in list(self.streams):
            self.stream_close(stream_id)
        self._pump()

    def crash(self) -> None:
        """Crash-model teardown: the owning process died.

        Nothing goes on the wire (no close_notify, no FIN, no RST at the
        instant of death) and no session events fire — there is no
        process left to send or observe them.  Timers are cancelled so
        the corpse cannot act, and every TCP connection vanishes from
        the stack; the peer learns of the death from the RSTs the
        still-running stack sends for its now-unknown connections.
        """
        self.session_closed = True
        self._closing = True
        if self._ack_flush_event is not None:
            self._ack_flush_event.cancel()
            self._ack_flush_event = None
        if self._health_timer is not None:
            self._health_timer.cancel()
            self._health_timer = None
        self._reconnect = None
        for conn in list(self.connections.values()):
            conn.state = TcplsConnection.CLOSED
            conn.tcp.vanish()
        self.connections.clear()

    # ------------------------------------------------------------------
    # The send pump
    # ------------------------------------------------------------------

    def _active_conns(self) -> List[TcplsConnection]:
        return [c for c in self.connections.values() if c.usable()]

    def _pump(self) -> None:
        if not self.handshake_complete or self.contexts is None:
            return
        conns = self._active_conns()
        if not conns:
            return
        progress = True
        while progress:
            progress = False
            for stream in list(self.streams.values()):
                if not stream.attached or not stream.has_pending_data():
                    continue
                if stream.send_buffer and stream.send_credit() <= 0:
                    # Out of flow-control credit: the peer's receive
                    # window is exhausted.  Blocked here, not dropped —
                    # a WINDOW_UPDATE grant re-pumps.
                    if not stream.stalled:
                        stream.stalled = True
                        self._obs_flow_stalls.inc()
                    continue
                conn = self.scheduler.pick(stream, conns)
                if conn is None or conn.send_room() <= TOTAL_OVERHEAD:
                    continue
                chunk_size = self.sizer.chunk_size(conn)
                taken = stream.take_chunk(chunk_size)
                if taken is None:
                    continue
                offset, data, fin = taken
                self._send_stream_chunk(stream, conn, offset, data, fin)
                self._maybe_writable(stream)
                progress = True
        self._maybe_session_close()

    def _maybe_writable(self, stream: TcplsStream) -> None:
        """Fire STREAM_WRITABLE once a blocked stream's backlog drains.

        Hysteresis at half the send-buffer limit: the event means a
        retried ``send()`` of reasonable size will succeed, not that a
        single byte of headroom appeared.
        """
        if not stream.writable_blocked:
            return
        limit = self.context.stream_send_buffer
        if limit > 0 and len(stream.send_buffer) > limit // 2:
            return
        stream.writable_blocked = False
        self._obs_flow_writable.inc()
        self.events.emit(Event.STREAM_WRITABLE, stream_id=stream.stream_id)

    def _send_stream_chunk(
        self,
        stream: TcplsStream,
        conn: TcplsConnection,
        offset: int,
        data: bytes,
        fin: bool,
    ) -> None:
        if data:
            seq = self.replay.next_seq()
            body = framing.encode_stream_data(
                stream.stream_id, offset, data, fin=False
            )
            self.replay.store(seq, TType.STREAM_DATA, stream.stream_id, body)
            self.sizer.account(len(data), conn)
            self._send_frame(conn, TType.STREAM_DATA, body, seq)
        if fin:
            close_seq = self.replay.next_seq()
            close_body = framing.encode_stream_close(
                stream.stream_id, offset + len(data)
            )
            self.replay.store(
                close_seq, TType.STREAM_CLOSE, stream.stream_id, close_body
            )
            self._send_frame(conn, TType.STREAM_CLOSE, close_body, close_seq)
            self.events.emit(Event.STREAM_CLOSED, stream_id=stream.stream_id)
            self._maybe_retire_connection(stream)

    def _maybe_retire_connection(self, closed_stream: TcplsStream) -> None:
        """Section 2.1/3.2: closing the last stream attached to a TCP
        connection retires that connection (graceful FIN) — the "secure
        closing of the v4 TCP connection" step of the migration chain.
        Only applies while other active connections remain and the
        session itself is not closing (session close handles the rest)."""
        conn = self.connections.get(closed_stream.conn_id)
        if conn is None or not conn.usable():
            return
        if self._closing or self.session_closed:
            return
        local_parity = 0 if self.is_server else 1
        still_pinned = [
            s
            for s in self.streams.values()
            if s.attached
            and s.conn_id == conn.conn_id
            and s is not closed_stream
            and not s.fin_sent
            # Only streams we originated hold the connection open; the
            # peer reacts to our close by re-pinning its own streams
            # (the paper's server "seamlessly switches the path").
            and s.stream_id % 2 == local_parity
        ]
        if still_pinned:
            return
        others = [c for c in self._active_conns() if c is not conn]
        if not others:
            return  # never retire the only connection
        conn.state = TcplsConnection.CLOSED
        conn.tcp.close()
        # Keep the receive contexts: in-flight peer data on this
        # connection must still decrypt until the peer's FIN arrives.
        self.events.emit(Event.CONN_CLOSED, conn_id=conn.conn_id)

    def _send_frame(
        self, conn: TcplsConnection, ttype: int, body: bytes, seq: int,
        stream_id: Optional[int] = None,
    ) -> None:
        """Encrypt one frame under the right context and hand it to TCP."""
        context_stream = (
            stream_id
            if stream_id is not None
            else (framing.decode_stream_data(body)[0] if ttype == TType.STREAM_DATA else CONTROL_STREAM_ID)
        )
        cipher = self.contexts.send_context(context_stream, conn.conn_id)
        if cipher is None:
            cipher = self.contexts.send_context(CONTROL_STREAM_ID, conn.conn_id)
            if cipher is None:
                return
        plaintext = framing.encode_frame(ttype, seq, body)
        inner = plaintext + bytes([ttype])
        header = record_header(ContentType.APPLICATION_DATA, len(inner) + 16)
        # seal() routes large records through the keystream lookahead
        # cache (bit-identical to aead.encrypt at this nonce).
        sealed = cipher.seal(inner, header)
        cipher.advance()
        conn.tcp.send(header + sealed)
        conn.health.last_activity = self.sim.now
        self.stats["records_sent"] += 1
        self._obs_records_sent.inc()
        self._obs_record_bytes.observe(len(header) + len(sealed))

    def _send_control(self, ttype: int, body: bytes, seq: int) -> None:
        conns = self._active_conns()
        if not conns:
            return
        primary_like = next((c for c in conns if c.is_primary), conns[0])
        self._send_frame(primary_like, ttype, body, seq, stream_id=CONTROL_STREAM_ID)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _on_tcp_data(self, conn: TcplsConnection, data: bytes) -> None:
        conn.health.last_activity = self.sim.now
        conn.decoder.feed(data)
        try:
            for outer_type, body in conn.decoder.raw_records():
                self._on_raw_record(conn, outer_type, body)
        except GuardLimitExceeded:
            # A resource-exhaustion guard fired (stream table,
            # reassembly buffer, plaintext-junk cap, ...): tear the
            # connection down before the attacker-controlled state
            # grows any further.
            self._obs_guard_tripped.inc()
            conn.tcp.abort("resource guard tripped")
            self._on_tcp_failed(conn, "guard_tripped")
        except DecodeError:
            # Malformed bytes that a parser rejected (fail-closed wire
            # armor): count, kill this connection; the session survives
            # on the others.
            self._obs_decode_rejected.inc()
            conn.tcp.abort("malformed record stream")
            self._on_tcp_failed(conn, "malformed record stream")
        except ProtocolViolation:
            # Other protocol violations (e.g. AEAD desync detected at a
            # higher layer): same teardown, separate bookkeeping.
            conn.tcp.abort("malformed record stream")
            self._on_tcp_failed(conn, "malformed record stream")

    def _on_raw_record(self, conn: TcplsConnection, outer_type: int, body: bytes) -> None:
        if conn.state == TcplsConnection.TLS_HANDSHAKE:
            # Hand exactly one record to the TLS driver; completion flips
            # the connection to ACTIVE between records.
            self.tls.receive(record_header(outer_type, len(body)) + body)
            return
        if conn.state == TcplsConnection.JOIN_SENT:
            self._client_join_record(conn, outer_type, body)
            return
        if outer_type != ContentType.APPLICATION_DATA:
            # Plaintext records after establishment: middlebox junk.
            # Tolerate a few (a confused box re-emitting handshake
            # flights), but an endless stream of them is an injection
            # attack burning our cycles — fail the connection.
            conn.plaintext_junk += 1
            if conn.plaintext_junk > self.context.max_plaintext_records:
                raise GuardLimitExceeded(
                    f"conn {conn.conn_id}: {conn.plaintext_junk} plaintext "
                    f"records after establishment"
                )
            return
        opened = self.contexts.open_record(conn.conn_id, body)
        if opened is None:
            # Forgery attempt — counted in the context manager.  A short
            # run is survivable (an injected record never advanced our
            # nonce), but a long run means the genuine record stream no
            # longer authenticates (tampering desynchronized the AEAD
            # sequence): fail the connection so replay/reconnect can act
            # instead of stalling silently.
            conn.auth_failure_run += 1
            if conn.auth_failure_run >= self.context.auth_failure_tolerance:
                self._obs_guard_tripped.inc()
                conn.tcp.abort("record authentication failures")
                self._on_tcp_failed(conn, "record_auth_failures")
            return
        conn.auth_failure_run = 0
        stream_id, ttype, plaintext = opened
        conn.records_received += 1
        self.stats["records_received"] += 1
        self._obs_records_received.inc()
        if ttype == TType.HANDSHAKE:
            self.tls.process_handshake_bytes(plaintext)
            self._maybe_collect_ticket()
            return
        if ttype == TType.ALERT:
            self.session_closed = True
            self.events.emit(Event.SESSION_CLOSED)
            return
        if ttype == TType.APPDATA:
            if self.on_early_data:
                self.on_early_data(plaintext)
            return
        frame = framing.decode_frame(ttype, plaintext)
        if not self.tracker.accept(frame.seq):
            return  # duplicate after a failover replay
        self._dispatch_frame(conn, frame)
        if frame.seq:
            self._unacked_since_flush += 1
            if self._unacked_since_flush >= self.context.ack_every:
                self._flush_ack()
            else:
                self._arm_ack_flush()

    def _client_join_record(self, conn: TcplsConnection, outer_type: int, body: bytes) -> None:
        if outer_type != ContentType.APPLICATION_DATA:
            return
        opened = self.contexts.open_record(conn.conn_id, body)
        if opened is None:
            return
        stream_id, ttype, plaintext = opened
        if ttype != TType.JOIN_ACK:
            return
        span = self._join_spans.pop(conn.conn_id, None)
        if span is not None:
            span.end()
        self._activate_joined(conn)
        self.events.emit(Event.JOIN, conn_id=conn.conn_id)
        self._pump()

    def _maybe_collect_ticket(self) -> None:
        self.events.emit(Event.TICKET)

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------

    def _dispatch_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        handler = {
            TType.STREAM_DATA: self._on_stream_data_frame,
            TType.STREAM_OPEN: self._on_stream_open_frame,
            TType.STREAM_CLOSE: self._on_stream_close_frame,
            TType.ACK: self._on_ack_frame,
            TType.TCP_OPTION: self._on_tcp_option_frame,
            TType.NEW_COOKIES: self._on_new_cookies_frame,
            TType.PLUGIN: self._on_plugin_frame,
            TType.PROBE: self._on_probe_frame,
            TType.PROBE_REPORT: self._on_probe_report_frame,
            TType.SESSION_CLOSE: self._on_session_close_frame,
            TType.ADDRESS_ADVERT: self._on_address_advert_frame,
            TType.ADDRESS_REMOVE: self._on_address_remove_frame,
            TType.WINDOW_UPDATE: self._on_window_update_frame,
            TType.PING: lambda c, f: self._flush_ack(),
        }.get(frame.ttype)
        if handler is None:
            raise UnknownType(f"unknown TCPLS frame type {frame.ttype:#04x}")
        handler(conn, frame)

    def _on_stream_data_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        stream_id, offset, fin, data = framing.decode_stream_data(frame.body)
        stream = self._ensure_stream(stream_id, conn)
        if data and offset + len(data) > max(
            stream.granted_limit, DEFAULT_STREAM_WINDOW
        ):
            # Flow-control violation: the peer wrote past every grant we
            # ever issued (tolerating the protocol-default initial
            # window, so asymmetric configurations converge rather than
            # abort).  A compliant sender can never hit this.
            self._obs_flow_violations.inc()
            raise GuardLimitExceeded(
                f"stream {stream_id} data past flow-control limit "
                f"{stream.granted_limit}"
            )
        if (
            stream.reassembly_bytes() + len(data)
            > self.context.max_reassembly_bytes
        ):
            # A peer striping far past an unfilled hole is making us
            # hoard memory; cap the out-of-order buffer.
            raise GuardLimitExceeded(
                f"stream {stream_id} reassembly buffer over "
                f"{self.context.max_reassembly_bytes}B"
            )
        if (
            self.session_memory_bytes() + len(data)
            > self.context.max_session_memory
        ):
            # Session-wide budget: many streams each under their own cap
            # can still sum to a hoard; fail the connection, not the
            # process.
            raise GuardLimitExceeded(
                f"session buffered memory over "
                f"{self.context.max_session_memory}B"
            )
        self.delivery_log.append((self.sim.now, conn.conn_id, len(data)))
        conn.bytes_delivered += len(data)
        self._obs_stream_bytes.inc(len(data))
        stream.on_segment(offset, data, fin)
        self._obs_memory.set(self.session_memory_bytes())

    def _on_stream_open_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        stream_id, pinned_conn = framing.decode_stream_open(frame.body)
        self._ensure_stream(stream_id, conn)
        self.events.emit(Event.STREAM_OPENED, stream_id=stream_id, conn_id=conn.conn_id)

    def _ensure_stream(self, stream_id: int, conn: TcplsConnection) -> TcplsStream:
        stream = self.streams.get(stream_id)
        if stream is None:
            if len(self.streams) >= self.context.max_streams:
                # Implicit stream creation is peer-controlled: cap it so
                # a hostile sender can't grow the table without bound.
                raise GuardLimitExceeded(
                    f"stream table full ({self.context.max_streams}); "
                    f"refusing stream {stream_id}"
                )
            stream = TcplsStream(
                stream_id, conn.conn_id,
                recv_window=self.context.stream_recv_window,
            )
            stream.attached = True
            self._wire_stream(stream)
            self.streams[stream_id] = stream
            for active in self._active_conns():
                self.contexts.install(stream_id, active.conn_id, active.token)
        return stream

    def _on_stream_close_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        stream_id, final_offset = framing.decode_stream_close(frame.body)
        stream = self.streams.get(stream_id)
        if stream is None:
            return
        stream.on_segment(final_offset, b"", True)
        self._flush_ack()

    def _on_ack_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        cumulative, _conn_id = framing.decode_ack(frame.body)
        self.stats["acks_received"] += 1
        self._obs_acks_received.inc()
        self.replay.on_ack(cumulative)

    def _on_tcp_option_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        kind, target_conn, option_body = framing.decode_tcp_option(frame.body)
        option = decode_single_option(kind, option_body)
        # Apply the option to the requested connection — the simulated
        # equivalent of "the server extracts it and performs the required
        # setsockopt" (paper section 3.1).
        targets = (
            [self.connections[target_conn]]
            if target_conn in self.connections
            else self._active_conns()
        )
        if isinstance(option, UserTimeout):
            # The option arrives over the secure channel but its value is
            # still peer-chosen: clamp to local policy before it becomes a
            # timer, or a peer could pin connection state for ~23 days.
            for target in targets:
                target.tcp.set_user_timeout(
                    min(option.timeout_seconds(), MAX_USER_TIMEOUT_SECONDS)
                )
        self.events.emit(
            Event.TCP_OPTION_RECEIVED,
            kind=kind,
            option=option,
            conn_id=conn.conn_id,
        )

    def _on_new_cookies_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        self.cookie_purse.deposit(framing.decode_new_cookies(frame.body))

    def _on_plugin_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        target, bytecode = framing.decode_plugin(frame.body)
        from repro.core.plugins.runtime import install_plugin

        result = install_plugin(self, target, bytecode)
        self.events.emit(
            Event.PLUGIN_INSTALLED, target=target, ok=result, conn_id=conn.conn_id
        )

    def _on_probe_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        from repro.core.middlebox_detect import compare_syns

        probe_conn_id, syn_as_sent = framing.decode_probe(frame.body)
        differences = compare_syns(syn_as_sent, conn.tcp.received_syn_bytes)
        reply = framing.encode_probe_report(probe_conn_id, differences)
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.PROBE_REPORT, CONTROL_STREAM_ID, reply)
        self._send_frame(conn, TType.PROBE_REPORT, reply, seq, stream_id=CONTROL_STREAM_ID)

    def _on_probe_report_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        probe_conn_id, differences = framing.decode_probe_report(frame.body)
        self._probe_reports[probe_conn_id] = differences
        self.events.emit(
            Event.PROBE_REPORT, conn_id=probe_conn_id, differences=differences
        )

    def _on_session_close_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        self.session_closed = True
        self._flush_ack()
        self.events.emit(Event.SESSION_CLOSED)
        for c in self._active_conns():
            if c.tcp.state in ("ESTABLISHED", "CLOSE_WAIT"):
                c.tcp.close()
            c.state = TcplsConnection.CLOSED

    def _on_address_advert_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        v4, v6 = framing.decode_address_advert(frame.body)
        self.peer_v4_addresses.extend(a for a in v4 if a not in self.peer_v4_addresses)
        self.peer_v6_addresses.extend(a for a in v6 if a not in self.peer_v6_addresses)
        self.events.emit(Event.ADDRESS_ADVERTISED, v4=v4, v6=v6)

    def _on_address_remove_frame(self, conn: TcplsConnection, frame: framing.Frame) -> None:
        v4, v6 = framing.decode_address_advert(frame.body)
        self.peer_v4_addresses = [a for a in self.peer_v4_addresses if a not in v4]
        self.peer_v6_addresses = [a for a in self.peer_v6_addresses if a not in v6]
        self.events.emit(Event.ADDRESS_REMOVED, v4=v4, v6=v6)

    # ------------------------------------------------------------------
    # Delivery to the application
    # ------------------------------------------------------------------

    def _deliver_stream_data(self, stream: TcplsStream, data: bytes) -> None:
        if self.on_stream_data:
            # Callback delivery is consumption: the application took the
            # bytes, so credit flows back to the peer immediately.
            self.on_stream_data(stream.stream_id, data)
            self._maybe_grant_credit(stream)
        else:
            # Pull mode: park delivered bytes in the bounded app-read
            # queue.  No credit is returned until ``recv_data()`` drains
            # it — a reader that stops reading stalls the sender at one
            # receive window instead of growing this buffer forever.
            stream.read_buffer.extend(data)

    # -- flow control ------------------------------------------------------

    def _maybe_grant_credit(self, stream: TcplsStream) -> None:
        """Send a WINDOW_UPDATE once a quarter-window of credit freed.

        Grants are batched (a grant per delivered record would double
        control traffic) and cumulative: the new absolute limit is
        consumed-offset + window, and the receiver of the grant takes
        the max with what it already holds, so replays are harmless.
        """
        if not self.handshake_complete or self.session_closed:
            return
        window = self.context.stream_recv_window
        new_limit = stream.consumed_offset() + window
        if new_limit - stream.granted_limit < max(1, window // 4):
            return
        stream.granted_limit = new_limit
        seq = self.replay.next_seq()
        body = framing.encode_window_update(stream.stream_id, new_limit)
        self.replay.store(seq, TType.WINDOW_UPDATE, stream.stream_id, body)
        self._send_control(TType.WINDOW_UPDATE, body, seq)
        self._obs_flow_updates_sent.inc()

    def _on_window_update_frame(
        self, conn: TcplsConnection, frame: framing.Frame
    ) -> None:
        stream_id, max_offset = framing.decode_window_update(frame.body)
        stream = self.streams.get(stream_id)
        self._obs_flow_updates_received.inc()
        if stream is None:
            return
        if max_offset <= stream.send_limit:
            return  # stale or replayed grant: credit never shrinks
        stream.send_limit = max_offset
        stream.stalled = False
        self._pump()
        self._maybe_writable(stream)

    def _on_stream_fin(self, stream: TcplsStream) -> None:
        if self.on_stream_fin:
            self.on_stream_fin(stream.stream_id)
        self._maybe_session_close()

    def _maybe_session_close(self) -> None:
        """Closing the last stream closes the session (section 2.1)."""
        if not self._closing or self.session_closed:
            return
        if any(s.has_pending_data() for s in self.streams.values()):
            return
        if not all(s.fin_sent for s in self.streams.values()):
            return
        self.session_closed = True
        seq = self.replay.next_seq()
        body = framing.encode_session_close(max(self.streams, default=0))
        self.replay.store(seq, TType.SESSION_CLOSE, CONTROL_STREAM_ID, body)
        self._send_control(TType.SESSION_CLOSE, body, seq)
        self.events.emit(Event.SESSION_CLOSED)
        for conn in self._active_conns():
            conn.tcp.close()
            conn.state = TcplsConnection.CLOSED

    # ------------------------------------------------------------------
    # ACKs
    # ------------------------------------------------------------------

    def _arm_ack_flush(self) -> None:
        if self._ack_flush_event is not None:
            return
        self._ack_flush_event = self.sim.schedule(
            self.context.ack_flush_delay, self._flush_ack
        )

    def _flush_ack(self) -> None:
        if self._ack_flush_event is not None:
            self._ack_flush_event.cancel()
            self._ack_flush_event = None
        if self._unacked_since_flush == 0 or not self.handshake_complete:
            return
        self._unacked_since_flush = 0
        conns = self._active_conns()
        if not conns:
            return
        body = framing.encode_ack(self.tracker.cumulative, conns[0].conn_id)
        self._send_frame(conns[0], TType.ACK, body, seq=0, stream_id=CONTROL_STREAM_ID)
        self.stats["acks_sent"] += 1
        self._obs_acks_sent.inc()

    # ------------------------------------------------------------------
    # TCP option channel / plugins / probes (sender side)
    # ------------------------------------------------------------------

    def send_tcp_option(self, option, apply_to_conn: int = 0) -> None:
        """Ship a TCP option over the secure channel (section 3.1)."""
        body = framing.encode_tcp_option(option.kind, option.body(), apply_to_conn)
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.TCP_OPTION, CONTROL_STREAM_ID, body)
        self._send_control(TType.TCP_OPTION, body, seq)

    def send_plugin(self, target: str, bytecode: bytes) -> None:
        """Ship bytecode to upgrade the peer (section 3 item iii)."""
        body = framing.encode_plugin(target, bytecode)
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.PLUGIN, CONTROL_STREAM_ID, body)
        self._send_control(TType.PLUGIN, body, seq)

    def send_middlebox_probe(self, conn_id: Optional[int] = None) -> None:
        """SYN-echo probe (section 4.5): send our SYN as we sent it."""
        if not self.handshake_complete:
            raise RuntimeError("middlebox probe requires a completed handshake")
        conn = self._resolve_conn(conn_id)
        body = framing.encode_probe(conn.conn_id, conn.tcp.sent_syn_bytes)
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.PROBE, CONTROL_STREAM_ID, body)
        self._send_frame(conn, TType.PROBE, body, seq, stream_id=CONTROL_STREAM_ID)

    def probe_report(self, conn_id: int) -> Optional[List[str]]:
        return self._probe_reports.get(conn_id)

    def advertise_addresses(self, v4=(), v6=()) -> None:
        """Reliable ADD_ADDR over the encrypted channel (section 4.1):
        unlike Multipath TCP's option, delivery is guaranteed (the TLS
        records are part of the bytestream) and middleboxes cannot read
        or forge it."""
        body = framing.encode_address_advert(list(v4), list(v6))
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.ADDRESS_ADVERT, CONTROL_STREAM_ID, body)
        self._send_control(TType.ADDRESS_ADVERT, body, seq)

    def withdraw_addresses(self, v4=(), v6=()) -> None:
        """Reliable RM_ADDR (section 4.1)."""
        body = framing.encode_address_advert(list(v4), list(v6))
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.ADDRESS_REMOVE, CONTROL_STREAM_ID, body)
        self._send_control(TType.ADDRESS_REMOVE, body, seq)

    def update_keys(self) -> None:
        """Roll the primary control channel's sending keys (RFC 8446
        7.2) — per-stream contexts are unaffected (independent keys)."""
        if not self.handshake_complete:
            raise RuntimeError("key update before handshake completion")
        self.tls.send_key_update(request_peer=False)

    def ping(self) -> None:
        """Unsequenced PING: solicits an immediate TCPLS ACK."""
        self._send_control(TType.PING, b"", 0)

    def send_new_cookies(self, count: int = 4) -> None:
        """Server: replenish the client's JOIN cookies."""
        cookies = self.cookie_jar.mint(count)
        body = framing.encode_new_cookies(cookies)
        seq = self.replay.next_seq()
        self.replay.store(seq, TType.NEW_COOKIES, CONTROL_STREAM_ID, body)
        self._send_control(TType.NEW_COOKIES, body, seq)

    # ------------------------------------------------------------------
    # Failure handling: failover & migration support
    # ------------------------------------------------------------------

    def _on_tcp_established(self, conn: TcplsConnection) -> None:
        self.events.emit(Event.CONN_ESTABLISHED, conn_id=conn.conn_id)

    def _on_tcp_peer_close(self, conn: TcplsConnection) -> None:
        if self.session_closed:
            conn.state = TcplsConnection.CLOSED
            if conn.tcp.state == "CLOSE_WAIT":
                conn.tcp.close()
            self.events.emit(Event.CONN_CLOSED, conn_id=conn.conn_id)
            return
        # A FIN outside session close: treat as the peer retiring this
        # connection (e.g. migration's tcpls_stream_close of the old path).
        # Contexts stay installed: data still in flight on this
        # connection must keep decrypting until the stream drains.
        conn.state = TcplsConnection.CLOSED
        if conn.tcp.state == "CLOSE_WAIT":
            conn.tcp.close()
        self.events.emit(Event.CONN_CLOSED, conn_id=conn.conn_id)
        self._repin_streams_away_from(conn)
        target = best_path(self._active_conns())
        if target is not None:
            # Anything the peer has not TCPLS-acked may have died with
            # the connection; replay it (the receiver deduplicates).
            self._replay_unacked(target)
        self._pump()

    def _on_tcp_failed(self, conn: TcplsConnection, reason: str) -> None:
        if conn.state in (TcplsConnection.FAILED, TcplsConnection.CLOSED):
            return
        was_active = conn.state == TcplsConnection.ACTIVE
        conn.state = TcplsConnection.FAILED
        if self.contexts is not None:
            self.contexts.remove_connection(conn.conn_id)
        self.events.emit(Event.CONN_FAILED, conn_id=conn.conn_id, reason=reason)
        if not self.handshake_complete or self.session_closed:
            return
        self._reassess_degraded(reason)
        # A failing *reconnection attempt* feeds the retry loop, not a
        # fresh failover (the attempt connection was never ACTIVE).
        if self._reconnect is not None and self._reconnect.get("conn") is conn:
            self._retry_after_backoff(reason)
            return
        if not was_active or not self.context.auto_failover:
            return
        self._failover_from(conn)

    def _failover_from(self, failed: TcplsConnection) -> None:
        """Re-establish connectivity and replay unacked frames (2.1).

        With survivors, traffic re-pins onto the healthiest remaining
        path immediately.  With none, the client enters the bounded
        exponential-backoff reconnection loop (``_begin_reconnect``);
        the seed code's single-shot reconnect stalled forever if that
        one attempt was itself lost.
        """
        survivors = self._active_conns()
        if survivors:
            self._repin_streams_away_from(failed)
            target = best_path(survivors) or survivors[0]
            self._transfer_primary(failed, target)
            self._replay_unacked(target)
            self.events.emit(
                Event.FAILOVER, from_conn=failed.conn_id, to_conn=target.conn_id
            )
            self._pump()
        if self.is_server:
            return  # the client drives reconnection
        # Even with survivors carrying the traffic, redial the failed
        # path in the background: failover restores *connectivity*, the
        # reconnect loop restores *redundancy* (single_path -> RECOVERED
        # once the JOIN lands).
        self._begin_reconnect(failed)

    def _repin_streams_away_from(self, gone: TcplsConnection) -> None:
        target = best_path(self._active_conns())
        if target is None:
            return
        for stream in self.streams.values():
            if stream.conn_id == gone.conn_id:
                stream.conn_id = target.conn_id
                if stream.attached:
                    self.contexts.install(
                        stream.stream_id, target.conn_id, target.token
                    )

    # -- degradation bookkeeping ------------------------------------------

    _DEGRADATION_RANK = {None: 0, "single_path": 1, "no_path": 2}

    def _degradation_level(self) -> Optional[str]:
        active = len(self._active_conns())
        if active == 0:
            return "no_path"
        if active == 1 and self._peak_active >= 2:
            return "single_path"
        return None

    def _note_path_active(self) -> None:
        """A connection became usable: update redundancy bookkeeping and
        emit SESSION_RECOVERED if a degradation just healed."""
        self._peak_active = max(self._peak_active, len(self._active_conns()))
        self._reassess_degraded("path_active")
        self._start_health_monitor()

    def _reassess_degraded(self, reason: str) -> None:
        """Emit the app-visible DEGRADED/RECOVERED pair on transitions.

        Levels (ranked): healthy < single_path < no_path.  Worsening
        emits SESSION_DEGRADED, improving emits SESSION_RECOVERED (with
        the level recovered *to* — a reconnect out of ``no_path`` onto
        one path is a recovery even if redundancy is not yet back).
        Only failures move the needle; graceful retirement (migration)
        never calls this.
        """
        if not self.handshake_complete or self.session_closed:
            return
        level = self._degradation_level()
        old = self._degraded_level
        if level == old:
            return
        rank, ranks = self._DEGRADATION_RANK[level], self._DEGRADATION_RANK
        if rank > ranks[old]:
            if old is None:
                self._degraded_since = self.sim.now
            self.events.emit(
                Event.SESSION_DEGRADED, level=level, reason=reason, terminal=False
            )
        else:
            self.events.emit(
                Event.SESSION_RECOVERED,
                level=level,
                downtime=self.sim.now - self._degraded_since,
            )
        self._degraded_level = level

    # -- path health monitor ----------------------------------------------

    def _start_health_monitor(self) -> None:
        if self._health_timer is not None or self.context.health_interval <= 0:
            return
        if self.session_closed:
            return
        self._health_timer = self.sim.schedule(
            self.context.health_interval, self._health_tick
        )

    def _health_tick(self) -> None:
        self._health_timer = None
        if self.session_closed:
            return
        active = self._active_conns()
        for conn in active:
            conn.health.refresh(conn)
            idle = self.sim.now - conn.health.last_activity
            if idle >= self.context.health_idle_ping:
                # Heartbeat: an unsequenced PING keeps TCP's RTT/loss
                # signals fresh on idle paths, so the user timeout can
                # notice a silently dead one.
                self._send_frame(
                    conn, TType.PING, b"", seq=0, stream_id=CONTROL_STREAM_ID
                )
                conn.health.pings_sent += 1
                self._obs_pings.inc()
        # Keep ticking while anything could still need watching; a fully
        # failed session with no reconnection in flight stops the timer
        # (``_note_path_active`` restarts it).
        if active or self._reconnect is not None:
            self._health_timer = self.sim.schedule(
                self.context.health_interval, self._health_tick
            )

    # -- reconnection with backoff ----------------------------------------

    def _begin_reconnect(self, failed: TcplsConnection) -> None:
        if self._reconnect is not None:
            return  # a reconnection is already in flight
        self._reconnect = {
            "failed": failed,
            "dest": str(failed.tcp.remote_addr),
            "port": failed.tcp.remote_port,
            "src": str(failed.tcp.local_addr),
            "attempt": 0,
            "started": self.sim.now,
            "conn": None,
            "handler": None,
            "timer": None,
            "span": self.obs.tracer.span(
                self._obs_component, "reconnect", from_conn=failed.conn_id
            ),
        }
        self._reconnect_attempt()

    def _reconnect_attempt(self) -> None:
        state = self._reconnect
        if state is None or self.session_closed:
            return
        state["timer"] = None
        if state["attempt"] >= self.context.reconnect_max_retries:
            self._abandon_reconnect("retries_exhausted")
            return
        if len(self.cookie_purse) == 0:
            # Surface cookie exhaustion instead of silently abandoning
            # the session (the seed code's bare ``return``).  Checked
            # after the budget so "out of budget" is never misreported
            # as "out of cookies".
            self._obs_cookies_exhausted.inc()
            self._abandon_reconnect("cookies_exhausted")
            return
        state["attempt"] += 1
        self._obs_retries.inc()
        self.events.emit(
            Event.CONN_RETRY,
            attempt=state["attempt"],
            dest=state["dest"],
            max_retries=self.context.reconnect_max_retries,
        )
        new_id = self.connect(state["dest"], state["port"], src=state["src"])
        new_conn = self.connections[new_id]
        state["conn"] = new_conn

        def on_join(conn_id: int, _new=new_conn) -> None:
            if conn_id != _new.conn_id:
                return
            self._finish_reconnect(_new)

        state["handler"] = on_join
        self.events.on(Event.JOIN, on_join)
        self._start_join(new_conn)
        if self.context.join_timeout:
            state["timer"] = self.sim.schedule(
                self.context.join_timeout, self._join_attempt_timeout, new_conn
            )

    def _join_attempt_timeout(self, conn: TcplsConnection) -> None:
        state = self._reconnect
        if state is None or state.get("conn") is not conn:
            return
        if conn.state == TcplsConnection.ACTIVE:
            return
        state["timer"] = None
        conn.tcp.abort("reconnect JOIN timed out")
        # ``abort`` may or may not surface through callbacks; fail the
        # connection explicitly (idempotent) so the retry loop advances.
        self._on_tcp_failed(conn, "join_timeout")

    def _retry_after_backoff(self, reason: str) -> None:
        state = self._reconnect
        if state is None:
            return
        self._detach_attempt(state)
        attempt = max(1, state["attempt"])
        delay = min(
            self.context.reconnect_backoff_base * (2 ** (attempt - 1)),
            self.context.reconnect_backoff_max,
        )
        delay += delay * self.context.reconnect_backoff_jitter * self.rng.random()
        self.obs.tracer.point(
            self._obs_component, "reconnect_backoff",
            attempt=attempt, delay=delay, reason=reason,
        )
        state["timer"] = self.sim.schedule(delay, self._reconnect_attempt)

    def _detach_attempt(self, state: dict) -> None:
        """Disarm the current attempt's timer and one-shot JOIN handler.

        Deregistering here (and in ``_finish_reconnect``) is what keeps
        repeated failovers from accumulating stale on-JOIN handlers that
        re-trigger old replays.
        """
        if state["timer"] is not None:
            state["timer"].cancel()
            state["timer"] = None
        if state["handler"] is not None:
            self.events.off(Event.JOIN, state["handler"])
            state["handler"] = None
        state["conn"] = None

    def _finish_reconnect(self, new_conn: TcplsConnection) -> None:
        state = self._reconnect
        if state is None:
            return
        self._reconnect = None
        self._detach_attempt(state)
        state["span"].end(attempts=state["attempt"], ok=True)
        self._obs_recovered.inc()
        failed = state["failed"]
        self._repin_streams_away_from(failed)
        self._transfer_primary(failed, new_conn)
        self._replay_unacked(new_conn)
        self.events.emit(
            Event.FAILOVER,
            from_conn=failed.conn_id,
            to_conn=new_conn.conn_id,
            attempts=state["attempt"],
        )
        self._pump()
        self._redial_next_failed_path()

    def _transfer_primary(self, failed: TcplsConnection,
                          target: TcplsConnection) -> None:
        """Hand the primary role to the failover target so default
        stream pinning and control traffic never aim at a dead
        connection."""
        if not failed.is_primary or failed is target:
            return
        failed.is_primary = False
        target.is_primary = True
        self.primary = target

    def _redial_next_failed_path(self) -> None:
        """If the session is still short on redundancy, redial the next
        failed path (e.g. the survivor died while its sibling was being
        reconnected).  A path counts as restored when some ACTIVE
        connection shares its (local, remote) address pair."""
        if self.is_server or self._degradation_level() is None:
            return
        restored = {
            (str(conn.tcp.local_addr), str(conn.tcp.remote_addr))
            for conn in self._active_conns()
        }
        stale = [
            conn
            for conn in self.connections.values()
            if conn.state == TcplsConnection.FAILED
            and (str(conn.tcp.local_addr), str(conn.tcp.remote_addr))
            not in restored
        ]
        if stale:
            self._begin_reconnect(stale[-1])

    def _abandon_reconnect(self, reason: str) -> None:
        state = self._reconnect
        self._reconnect = None
        if state is not None:
            self._detach_attempt(state)
            state["span"].end(attempts=state["attempt"], ok=False, reason=reason)
        self._obs_abandoned.inc()
        level = self._degradation_level()
        if level == "no_path":
            # Terminal: recovery gave up and nothing is left.  Emitted
            # even though a DEGRADED event already fired for the level
            # transition — ``terminal`` is the signal callers react to
            # (tear down, alert, re-dial by hand).
            self._degraded_level = "no_path"
            self.events.emit(
                Event.SESSION_DEGRADED, level="no_path", reason=reason,
                terminal=True,
            )
        else:
            # Survivors still carry traffic: redundancy was not restored
            # (the path may be gone for good) but the session lives on at
            # its current level.  Restate the degradation so observers
            # learn the redial gave up; non-terminal, not a transition.
            self.events.emit(
                Event.SESSION_DEGRADED, level=level, reason=reason,
                terminal=False,
            )

    def _replay_unacked(self, conn: TcplsConnection) -> None:
        for seq, ttype, stream_id, body in list(self.replay.unacked_frames()):
            self.stats["frames_replayed"] += 1
            self._obs_frames_replayed.inc()
            context_stream = (
                framing.decode_stream_data(body)[0]
                if ttype == TType.STREAM_DATA
                else CONTROL_STREAM_ID
            )
            self._send_frame(conn, ttype, body, seq, stream_id=context_stream)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        return {
            "role": "server" if self.is_server else "client",
            "handshake_complete": self.handshake_complete,
            "connections": [c.describe() for c in self.connections.values()],
            "streams": sorted(self.streams),
            "cookies_left": len(self.cookie_purse),
            "degraded_level": self._degraded_level,
            "reconnecting": self._reconnect is not None,
            "stats": dict(self.stats),
            "forgery_suspects": self.contexts.forgery_suspects if self.contexts else 0,
            "record_sizing": self.sizer.stats(),
        }


class TcplsServer:
    """Accepts TCP connections and routes them to TCPLS sessions."""

    def __init__(
        self,
        context: TcplsContext,
        stack: TcpStack,
        port: int = 443,
        on_session: Optional[Callable[[TcplsSession], None]] = None,
        fast_open: bool = True,
        admission=None,
        on_reject: Optional[Callable] = None,
    ) -> None:
        self.context = context
        self.stack = stack
        self.port = port
        self.on_session = on_session
        # Optional overload protection (repro.overload): an
        # AdmissionController shared across the farm's listeners.  When
        # present it gates every accept (queue cap) and every first
        # record (cost-aware policy + handshake pacer) and tracks
        # admitted sessions against the global memory budget.
        # ``on_reject(decision)`` lets the harness observe refusals and
        # deliver retry coupons.
        self.admission = admission
        self.on_reject = on_reject
        self.sessions: List[TcplsSession] = []
        self._session_seed = context.seed
        self._fast_open = fast_open
        self.crashed = False
        # Connections sniffed but not yet routed to a session — tracked
        # so a crash can vanish them too (their closures die with us).
        # A list, not a set: crash() iterates it, and arrival order is
        # the only deterministic order these objects have.
        self._pending: List[TcpConnection] = []
        # Server-side 0-RTT anti-replay, shared across every session this
        # listener accepts (a per-session register would defeat itself:
        # each replayed flight lands in a *new* session).
        if (
            context.anti_replay is None
            and context.identity is not None
            and context.zero_rtt_anti_replay > 0
        ):
            context.anti_replay = AntiReplayRegister(
                capacity=context.zero_rtt_anti_replay,
                clock=lambda: stack.sim.now,
                window=float(context.ticket_lifetime),
            )
        # Listener-level hardening counters: rejects that happen before
        # any session exists (garbage first flights, JOIN floods).
        self.obs = context.observability or Observability(
            stack.sim, enabled=context.telemetry
        )
        telemetry = self.obs.telemetry
        self._obs_decode_rejected = telemetry.counter(
            obs_keys.COMP_SERVER, obs_keys.DECODE_REJECTED
        )
        self._obs_guard_tripped = telemetry.counter(
            obs_keys.COMP_SERVER, obs_keys.GUARD_TRIPPED
        )
        # Per-peer-address JOIN arrival times (sim clock), for the
        # sliding-window rate limit that throttles cookie guessing.
        self._join_times: Dict[str, List[float]] = {}
        stack.listen(
            port,
            self._on_tcp_connection,
            fast_open=fast_open,
            congestion=context.congestion,
        )

    def _on_tcp_connection(self, tcp: TcpConnection) -> None:
        if self.admission is not None and not self.admission.admit_connection(
            len(self._pending)
        ):
            # Accept queue full: refuse before buffering a single
            # record — the cheapest possible rejection.
            tcp.abort("accept queue full")
            return
        # Buffer until the first record (a ClientHello) is complete, then
        # decide: new session, or JOIN onto an existing one.
        decoder = RecordDecoder()
        sniffed = bytearray()
        done = {"routed": False}
        self._pending.append(tcp)

        def on_first_data(data: bytes) -> None:
            if done["routed"]:
                return
            sniffed.extend(data)
            decoder.feed(data)
            try:
                for outer_type, body in decoder.raw_records():
                    done["routed"] = True
                    if tcp in self._pending:
                        self._pending.remove(tcp)
                    self._route(tcp, outer_type, body, bytes(sniffed))
                    return
            except ProtocolViolation:
                done["routed"] = True
                if tcp in self._pending:
                    self._pending.remove(tcp)
                self._obs_decode_rejected.inc()
                tcp.abort("not a TLS record stream")

        tcp.on_data = on_first_data

    def _route(self, tcp, outer_type: int, body: bytes, all_bytes: bytes) -> None:
        join_info = None
        hello = None
        if outer_type == ContentType.HANDSHAKE:
            try:
                frames = m.parse_handshake_frames(body)
                if frames and frames[0][0] == m.CLIENT_HELLO:
                    hello = m.ClientHello.from_body(frames[0][1])
                    join_info = joinmod.extract_join(hello)
            except DecodeError:
                self._obs_decode_rejected.inc()
                tcp.abort("malformed first record")
                return
        if self.admission is not None:
            decision = self.admission.admit_hello(hello, join_info)
            if not decision.admitted:
                if self.on_reject:
                    self.on_reject(decision)
                tcp.abort(f"overloaded ({decision.reason})")
                return
        if join_info is not None:
            if not self._join_allowed(tcp):
                self._obs_guard_tripped.inc()
                tcp.abort("JOIN rate limit")
                return
            connection_id, cookie = join_info
            session = self._find_session(connection_id)
            if session is None:
                self._obs_decode_rejected.inc()
                tcp.abort("JOIN for unknown session")
                return
            session.adopt_joined_connection(tcp, cookie, b"")
            return
        # New session: hand over all buffered bytes (the ClientHello).
        session_context = self.context
        session = TcplsSession(session_context, self.stack, is_server=True)
        self.sessions.append(session)
        if self.admission is not None:
            self.admission.track(session)
        if self.on_session:
            self.on_session(session)
        session.accept_primary(tcp, all_bytes)

    def _join_allowed(self, tcp) -> bool:
        """Sliding-window JOIN rate limit, keyed by peer address.

        A keyless attacker can always open TCP connections and send
        JOIN-shaped ClientHellos; without a cap each attempt costs us a
        cookie comparison and (on success-shaped garbage) session
        lookups.  Bound the attempts per ``join_rate_window`` seconds so
        cookie guessing is throttled while legitimate multipath joins
        (a handful per session lifetime) are untouched.
        """
        peer = str(getattr(tcp, "remote_addr", None) or "?")
        now = self.stack.sim.now
        window = self.context.join_rate_window
        times = [
            t for t in self._join_times.get(peer, []) if now - t < window
        ]
        if len(times) >= self.context.join_rate_limit:
            self._join_times[peer] = times
            return False
        times.append(now)
        self._join_times[peer] = times
        return True

    def _find_session(self, connection_id: bytes) -> Optional[TcplsSession]:
        for session in self.sessions:
            if session.connection_id == connection_id:
                return session
        return None

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """The server process dies: listener gone, every session gone.

        In-flight sessions vanish silently (no alerts, no FINs — see
        ``TcplsSession.crash``); the TCP stack itself survives, so the
        next segment a client sends to a dead connection draws an RST,
        and new SYNs are refused until ``relisten``.  Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        for session in self.sessions:
            if not session.session_closed:
                session.crash()
        self.sessions.clear()
        self._join_times.clear()
        for tcp in list(self._pending):
            tcp.vanish()
        self._pending.clear()
        self.stack.unlisten(self.port)

    def relisten(self) -> None:
        """Come back after a crash: bind the listener again.

        Session state is *not* restored — that is the point of the
        crash model.  Resumption state survives only as much as the
        ticket key does: restart with the same ``context.ticket_key``
        and clients resume with their cached tickets; rotate it first
        and every presented ticket is declined into a full handshake.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.stack.listen(
            self.port,
            self._on_tcp_connection,
            fast_open=self._fast_open,
            congestion=self.context.congestion,
        )

    def reap_closed(self) -> int:
        """Drop closed sessions from the routing list; returns the count.

        ``sessions`` otherwise grows for the listener's whole lifetime,
        which a server-farm churn run turns into both a leak and an
        ever-slower linear ``_find_session`` JOIN lookup.  Closed
        sessions can never be joined again (their connection id died
        with them), so reaping is invisible to the protocol.
        """
        alive = [s for s in self.sessions if not s.session_closed]
        reaped = len(self.sessions) - len(alive)
        if reaped:
            self.sessions = alive
        return reaped
