"""The TCPLS handshake extensions and the JOIN flow (paper section 2.4).

Initial handshake: the client puts a minimal TCPLS marker in the
(unencrypted) ClientHello — "a reasonable approach [...] is avoiding
trivial censorship opportunities by avoiding unencrypted data in the
ClientHello" — and the server answers with the rich parameters inside
the *encrypted* ServerHello flight: the connection identifier (CONNID),
a batch of one-time cookies, and its other addresses (e.g. a dual-stack
server advertising its IPv6 address when contacted over IPv4).

JOIN (Figure 2): to attach an extra TCP connection, the client opens it
and sends a ClientHello carrying ``JOIN(CONNID, COOKIE)``.  The server
accepts if the cookie is valid and unused, and answers with a JOIN_ACK
frame encrypted under keys derived from the session secrets and the
cookie — proving to the client that it reached the same server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.tls import messages as m
from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import InvalidValue, decode_guard

# Private-use extension codepoints.
EXT_TCPLS = m.EXT_TCPLS
EXT_TCPLS_JOIN = 0xFF5D

TCPLS_VERSION = 1


def build_tcpls_marker() -> bytes:
    """The bare-minimum ClientHello signal: just a version byte."""
    writer = ByteWriter()
    writer.put_u8(TCPLS_VERSION)
    return writer.getvalue()


def parse_tcpls_marker(body: bytes) -> int:
    with decode_guard("tcpls_marker"):
        version = ByteReader(body).get_u8()
        if version != TCPLS_VERSION:
            raise InvalidValue(f"unsupported TCPLS version {version}")
        return version


@dataclass
class TcplsServerParams:
    """The encrypted parameters the server sends in EncryptedExtensions."""

    connection_id: bytes
    cookies: List[bytes] = field(default_factory=list)
    v4_addresses: List[str] = field(default_factory=list)
    v6_addresses: List[str] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_vec8(self.connection_id)
        writer.put_u8(len(self.cookies))
        for cookie in self.cookies:
            writer.put_vec8(cookie)
        writer.put_u8(len(self.v4_addresses))
        for address in self.v4_addresses:
            writer.put_vec8(address.encode("ascii"))
        writer.put_u8(len(self.v6_addresses))
        for address in self.v6_addresses:
            writer.put_vec8(address.encode("ascii"))
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, body: bytes) -> "TcplsServerParams":
        with decode_guard("TcplsServerParams"):
            reader = ByteReader(body)
            connection_id = reader.get_vec8()
            if not connection_id:
                raise InvalidValue("empty CONNID in TCPLS parameters")
            cookies = [reader.get_vec8() for _ in range(reader.get_u8())]
            v4 = [
                reader.get_vec8().decode("ascii") for _ in range(reader.get_u8())
            ]
            v6 = [
                reader.get_vec8().decode("ascii") for _ in range(reader.get_u8())
            ]
        return cls(
            connection_id=connection_id,
            cookies=cookies,
            v4_addresses=v4,
            v6_addresses=v6,
        )


def build_join_body(connection_id: bytes, cookie: bytes) -> bytes:
    writer = ByteWriter()
    writer.put_vec8(connection_id)
    writer.put_vec8(cookie)
    return writer.getvalue()


def parse_join_body(body: bytes) -> Tuple[bytes, bytes]:
    with decode_guard("JOIN"):
        reader = ByteReader(body)
        connection_id = reader.get_vec8()
        cookie = reader.get_vec8()
        if not connection_id or not cookie:
            raise InvalidValue("JOIN with empty CONNID or cookie")
        return connection_id, cookie


def build_join_client_hello(
    connection_id: bytes, cookie: bytes, rng
) -> bytes:
    """A ClientHello whose only meaningful content is the JOIN extension.

    No key shares: the connection derives its keys from the existing
    session (unlike Multipath TCP, no key material travels in clear).
    """
    hello = m.ClientHello(
        random=bytes(rng.randrange(256) for _ in range(32)),
        extensions=[
            (m.EXT_SUPPORTED_VERSIONS, m.build_supported_versions_client()),
            (EXT_TCPLS_JOIN, build_join_body(connection_id, cookie)),
        ],
    )
    return hello.to_bytes()


def extract_join(client_hello: m.ClientHello) -> Optional[Tuple[bytes, bytes]]:
    body = m.get_extension(client_hello.extensions, EXT_TCPLS_JOIN)
    if body is None:
        return None
    return parse_join_body(body)
