"""Per-stream / per-connection cryptographic contexts (paper section 2.3).

Every (stream, TCP connection, direction) triple gets its own AEAD keys,
derived from the TLS exporter secret, so:

- concurrent encryption/decryption between streams stays correct
  (independent nonce sequences — the paper's "nonce-misuse cannot
  happen while the record sequence number starts at 0");
- usage limits on a single AEAD key are divided by N streams;
- the receiver discovers which stream a record belongs to by *trial
  decryption*: check the authentication tag against each candidate
  context until one verifies.  A failed tag check is counted as a
  potential forgery (section 2.3's security note).

Binding the context to the connection as well as the stream keeps every
context's records in-order (TCP delivers each connection in order), so
trial decryption never needs nonce searching.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro import fastpath
from repro.crypto.keyschedule import TrafficKeys
from repro.tls.record import CipherState, RecordDecoder
from repro.utils.errors import CryptoError

CONTROL_STREAM_ID = 0

_EXPORTER_LABEL = "tcpls context"


class ContextManager:
    """Derives and caches cipher states for one TCPLS session endpoint."""

    def __init__(self, exporter, is_client: bool) -> None:
        """``exporter(label, context, length)`` — the TLS exporter."""
        self._exporter = exporter
        self._is_client = is_client
        self._send: Dict[Tuple[int, int], CipherState] = {}
        self._recv: Dict[Tuple[int, int], CipherState] = {}
        self.forgery_suspects = 0
        self.trial_decryptions = 0
        # Per-connection affinity: the stream whose context authenticated
        # the most recent record.  Bulk transfers land on one stream, so
        # trying it first collapses trial decryption to ~1 MAC per record
        # (fastpath feature "tls.affinity").
        self._last_stream: Dict[int, int] = {}

    # -- derivation ---------------------------------------------------------

    def _derive(self, stream_id: int, conn_token: bytes, sender_is_client: bool) -> CipherState:
        direction = b"client" if sender_is_client else b"server"
        context = (
            stream_id.to_bytes(4, "big") + conn_token + b"/" + direction
        )
        secret = self._exporter(_EXPORTER_LABEL, context, 32)
        return CipherState(TrafficKeys.from_secret(secret))

    def install(self, stream_id: int, conn_id: int, conn_token: bytes) -> None:
        """Create both directions' contexts for a stream on a connection."""
        send_key = (stream_id, conn_id)
        if send_key in self._send:
            return
        self._send[send_key] = self._derive(stream_id, conn_token, self._is_client)
        self._recv[send_key] = self._derive(stream_id, conn_token, not self._is_client)

    def install_external(
        self, stream_id: int, conn_id: int, send: CipherState, recv: CipherState
    ) -> None:
        """Adopt externally-owned cipher states (the TLS application keys
        become the primary connection's control context, keeping one
        sequence-number space with post-handshake TLS messages)."""
        self._send[(stream_id, conn_id)] = send
        self._recv[(stream_id, conn_id)] = recv

    def remove_stream(self, stream_id: int) -> None:
        for key in [k for k in self._send if k[0] == stream_id]:
            del self._send[key]
        for key in [k for k in self._recv if k[0] == stream_id]:
            del self._recv[key]
        for conn_id, last in list(self._last_stream.items()):
            if last == stream_id:
                del self._last_stream[conn_id]

    def remove_connection(self, conn_id: int) -> None:
        for key in [k for k in self._send if k[1] == conn_id]:
            del self._send[key]
        for key in [k for k in self._recv if k[1] == conn_id]:
            del self._recv[key]
        self._last_stream.pop(conn_id, None)

    # -- access -----------------------------------------------------------------

    def send_context(self, stream_id: int, conn_id: int) -> Optional[CipherState]:
        return self._send.get((stream_id, conn_id))

    def recv_context(self, stream_id: int, conn_id: int) -> Optional[CipherState]:
        return self._recv.get((stream_id, conn_id))

    def recv_candidates(self, conn_id: int) -> List[Tuple[int, CipherState]]:
        """Receive contexts active on a connection (control first)."""
        candidates = [
            (stream_id, state)
            for (stream_id, context_conn), state in self._recv.items()
            if context_conn == conn_id
        ]
        candidates.sort(key=lambda item: item[0])
        return candidates

    def streams_on(self, conn_id: int) -> List[int]:
        return sorted(
            {stream_id for (stream_id, c) in self._send if c == conn_id}
        )

    # -- trial decryption ------------------------------------------------------------

    def open_record(
        self, conn_id: int, ciphertext: bytes
    ) -> Optional[Tuple[int, int, bytes]]:
        """Find the stream whose context authenticates this record.

        Returns (stream_id, inner_type, plaintext) or None when no
        context verifies — which the session counts as a forgery attempt.

        With the "tls.affinity" fast path, the context that authenticated
        the previous record on this connection is tried first — a pure
        reordering of the candidate scan, so the accepted (stream,
        plaintext) outcome is unchanged (exactly one context can verify a
        given tag) and only the number of wasted MACs drops.
        """
        candidates = self.recv_candidates(conn_id)
        last = self._last_stream.get(conn_id)
        if last is not None and fastpath.enabled("tls.affinity"):
            candidates.sort(key=lambda item: item[0] != last)
        for stream_id, state in candidates:
            self.trial_decryptions += 1
            try:
                inner_type, plaintext = RecordDecoder.decrypt_with(state, ciphertext)
            except CryptoError:
                continue
            self._last_stream[conn_id] = stream_id
            return stream_id, inner_type, plaintext
        self.forgery_suspects += 1
        return None
