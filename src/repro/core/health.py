"""Per-path health scoring for TCPLS sessions.

The paper's failover story (section 2.1) needs an answer to "which
surviving connection should carry the replayed frames and the re-pinned
streams?"  The seed implementation always picked ``survivors[0]``; this
module scores every path from cross-layer TCP signals — smoothed RTT and
loss events (retransmissions, fast retransmits, RTO expiries) — so the
scheduler, ``_repin_streams_away_from`` and the replay target all prefer
the healthiest path.

Scores are *lower-is-better* simulated seconds: an idealised path scores
its smoothed RTT; loss inflates that multiplicatively.  Scoring reads
only locally-available TCP state, so it costs nothing on the wire; the
optional heartbeat (session-level PING on idle connections, driven by
``TcplsSession`` when ``health_interval`` is set) exists to keep those
TCP signals fresh on paths that would otherwise sit idle and look
perfectly healthy while dead.
"""

from __future__ import annotations

from typing import Optional

# A path with no RTT sample yet (e.g. freshly joined) is scored with
# this placeholder so established paths with real measurements win ties.
UNMEASURED_RTT = 1.0

# Weight of the long-run loss ratio relative to RTT: a path losing 10%
# of its segments scores as if its RTT were ~1.8x higher.
LOSS_WEIGHT = 8.0

# Weight of *recent* loss events (since the last refresh window) — these
# dominate so a path that just started timing out is fled quickly even
# if its lifetime ratio still looks good.
RECENT_LOSS_WEIGHT = 0.5


class PathHealth:
    """Health state attached to one ``TcplsConnection``."""

    __slots__ = (
        "last_activity",
        "pings_sent",
        "loss_ewma",
        "_seen_loss_events",
    )

    def __init__(self) -> None:
        self.last_activity = 0.0   # sim time of the last send or receive
        self.pings_sent = 0        # heartbeat PINGs emitted on this path
        self.loss_ewma = 0.0       # EWMA of loss events per refresh tick
        self._seen_loss_events = 0

    # -- periodic refresh (driven by the session's health tick) -----------

    def refresh(self, conn) -> int:
        """Fold loss events since the last refresh into the EWMA.

        Returns the number of new loss events observed this tick.
        """
        total = self._loss_events(conn)
        delta = total - self._seen_loss_events
        self._seen_loss_events = total
        self.loss_ewma = 0.75 * self.loss_ewma + 0.25 * delta
        return delta

    # -- scoring ----------------------------------------------------------

    def score(self, conn) -> float:
        """Lower is better.  Usable at any time, tick or no tick."""
        stats = conn.tcp.stats
        # Explicit unmeasured sentinel: a measured srtt of exactly 0.0
        # (zero-delay simulated link) is a *good* path, not an unknown.
        srtt = conn.tcp.rto.srtt
        if srtt is None:
            srtt = UNMEASURED_RTT
        sent = stats["segments_sent"]
        loss_ratio = self._loss_events(conn) / sent if sent else 0.0
        recent = self._loss_events(conn) - self._seen_loss_events
        return srtt * (
            1.0
            + LOSS_WEIGHT * loss_ratio
            + RECENT_LOSS_WEIGHT * recent
            + self.loss_ewma
        )

    @staticmethod
    def _loss_events(conn) -> int:
        stats = conn.tcp.stats
        return (
            stats["retransmissions"]
            + stats["fast_retransmits"]
            + stats["timeouts"]
        )

    def describe(self, conn) -> dict:
        return {
            "score": self.score(conn),
            "srtt": conn.tcp.rto.srtt,
            "loss_ewma": self.loss_ewma,
            "loss_events": self._loss_events(conn),
            "pings_sent": self.pings_sent,
            "last_activity": self.last_activity,
        }


def best_path(connections, exclude: Optional[object] = None):
    """The healthiest usable connection, or None.

    ``exclude`` removes one candidate (the connection being fled).
    Deterministic tie-break: equal scores fall back to the lowest
    ``conn_id`` (Python's ``min`` is stable over the iteration order,
    which the session keeps id-sorted).
    """
    candidates = [
        conn
        for conn in connections
        if conn is not exclude and conn.usable()
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda conn: (conn.health.score(conn), conn.conn_id))
