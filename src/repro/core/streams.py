"""TCPLS datastreams (paper section 2.3).

A stream is an ordered, reliable byte channel inside the TCPLS session.
The sender side keeps an outgoing buffer with a running offset; the
receiver side reassembles by offset (data for one stream may arrive over
several TCP connections, in multipath mode, hence out of order).  FIN is
an offset-carrying close marker, mirroring the stream-level connection
termination semantics of section 2.1.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

CONTROL_STREAM_ID = 0

# Protocol-default per-stream receive window.  A sender assumes this
# much initial credit before the first WINDOW_UPDATE arrives; receivers
# tolerate overshoot up to this bound even when configured with a
# smaller window, so asymmetric configurations converge instead of
# aborting (peers with symmetric contexts are exact from byte 0).
DEFAULT_STREAM_WINDOW = 4 << 20


class TcplsStream:
    """One datastream's endpoint state.

    ``__slots__``-packed: a server-farm run holds thousands of sessions
    with several streams each, and dict-backed instances cost ~3x the
    memory and dirty more cache lines on the per-frame hot path.
    """

    __slots__ = (
        "stream_id",
        "conn_id",
        "attached",
        "send_buffer",
        "send_offset",
        "fin_pending",
        "fin_sent",
        "bytes_sent",
        "recv_next",
        "_segments",
        "_buffered",
        "fin_offset",
        "remote_closed",
        "bytes_received",
        "on_data",
        "on_fin",
        "send_limit",
        "stalled",
        "writable_blocked",
        "granted_limit",
        "read_buffer",
    )

    def __init__(
        self,
        stream_id: int,
        conn_id: int,
        recv_window: int = DEFAULT_STREAM_WINDOW,
    ) -> None:
        self.stream_id = stream_id
        self.conn_id = conn_id  # the connection the stream is pinned to
        self.attached = False

        # Sender state.
        self.send_buffer = bytearray()
        self.send_offset = 0  # next offset to assign to outgoing data
        self.fin_pending = False
        self.fin_sent = False
        self.bytes_sent = 0
        # Flow-control credit: absolute max offset the peer permits.
        # Starts at the local window on the symmetric-context assumption;
        # WINDOW_UPDATE grants only ever raise it (cumulative max).
        self.send_limit = recv_window
        self.stalled = False  # pending data blocked on zero credit
        self.writable_blocked = False  # send() raised WouldBlock

        # Receiver state.
        self.recv_next = 0  # next in-order offset expected
        self._segments: Dict[int, bytes] = {}
        self._buffered = 0  # bytes held in _segments awaiting reassembly
        self.fin_offset: Optional[int] = None
        self.remote_closed = False
        self.bytes_received = 0
        # Receiver-side flow control: credit granted to the peer so far
        # (absolute offset) and the delivered-but-unread app-read queue
        # used when no delivery callback consumes data immediately.
        self.granted_limit = recv_window
        self.read_buffer = bytearray()

        # Delivery callback: set by the session/application.
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_fin: Optional[Callable[[], None]] = None

    # -- sender ------------------------------------------------------------

    def queue(self, data: bytes) -> None:
        if self.fin_pending or self.fin_sent:
            raise RuntimeError(f"write to closed stream {self.stream_id}")
        self.send_buffer.extend(data)

    def take_chunk(self, max_bytes: int) -> Optional[tuple]:
        """Pop up to ``max_bytes`` for transmission; returns (offset, data, fin).

        Clamped by the peer's flow-control credit: never advances
        ``send_offset`` past ``send_limit``.  A bare FIN carries no bytes
        and needs no credit.
        """
        if not self.send_buffer:
            if self.fin_pending and not self.fin_sent:
                self.fin_sent = True
                return (self.send_offset, b"", True)
            return None
        max_bytes = min(max_bytes, self.send_limit - self.send_offset)
        if max_bytes <= 0:
            return None
        chunk = bytes(self.send_buffer[:max_bytes])
        del self.send_buffer[:max_bytes]
        offset = self.send_offset
        self.send_offset += len(chunk)
        self.bytes_sent += len(chunk)
        fin = self.fin_pending and not self.send_buffer
        if fin:
            self.fin_sent = True
        return (offset, chunk, fin)

    def close(self) -> None:
        self.fin_pending = True

    def has_pending_data(self) -> bool:
        return bool(self.send_buffer) or (self.fin_pending and not self.fin_sent)

    def send_credit(self) -> int:
        """Bytes of flow-control credit remaining on this stream."""
        return max(0, self.send_limit - self.send_offset)

    # -- receiver ------------------------------------------------------------------

    def on_segment(self, offset: int, data: bytes, fin: bool) -> None:
        """Accept possibly out-of-order stream data; deliver what's ready."""
        if fin:
            self.fin_offset = offset + len(data)
        if data:
            if offset < self.recv_next:
                skip = self.recv_next - offset
                if skip >= len(data):
                    data = b""
                else:
                    data = data[skip:]
                    offset = self.recv_next
            if data and offset not in self._segments:
                self._segments[offset] = data
                self._buffered += len(data)
        self._drain()

    def _drain(self) -> None:
        delivered = bytearray()
        while self._segments:
            earliest = min(self._segments)
            if earliest > self.recv_next:
                break
            data = self._segments.pop(earliest)
            self._buffered -= len(data)
            skip = self.recv_next - earliest
            if skip < len(data):
                chunk = data[skip:]
                delivered.extend(chunk)
                self.recv_next += len(chunk)
        if delivered:
            self.bytes_received += len(delivered)
            if self.on_data:
                self.on_data(bytes(delivered))
        if (
            self.fin_offset is not None
            and self.recv_next >= self.fin_offset
            and not self.remote_closed
        ):
            self.remote_closed = True
            if self.on_fin:
                self.on_fin()

    def reassembly_bytes(self) -> int:
        """Out-of-order bytes currently buffered awaiting reassembly."""
        return self._buffered

    def app_buffered(self) -> int:
        """Delivered-but-unread bytes sitting in the app-read queue."""
        return len(self.read_buffer)

    def consumed_offset(self) -> int:
        """Absolute offset the application has consumed up to.

        With a delivery callback, delivery *is* consumption; in pull
        mode, in-order bytes parked in ``read_buffer`` are delivered but
        not yet consumed and earn the peer no new credit.
        """
        return self.recv_next - len(self.read_buffer)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Drain up to ``max_bytes`` from the app-read queue."""
        if max_bytes is None or max_bytes >= len(self.read_buffer):
            data = bytes(self.read_buffer)
            self.read_buffer.clear()
        else:
            data = bytes(self.read_buffer[:max_bytes])
            del self.read_buffer[:max_bytes]
        return data

    def fully_closed(self) -> bool:
        return self.fin_sent and self.remote_closed
