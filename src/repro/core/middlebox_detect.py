"""SYN-echo middlebox detection (paper section 4.5).

"Consider a TCPLS client that copies its SYN header within a TCPLS
message [...].  By comparing the received TCP header with the original
one, the server would immediately and reliably detect the presence of
NAT, transparent proxies or other types of middleboxes."

The client sends the SYN bytes *as transmitted*; the server still holds
the SYN bytes *as received* (the TCP listener records them).  Any
difference is middlebox interference, classified below.
"""

from __future__ import annotations

from typing import List

from repro.tcp.options import find_option, MaximumSegmentSize
from repro.tcp.segment import TcpSegment
from repro.utils.errors import DecodeError


def compare_syns(sent: bytes, received: bytes) -> List[str]:
    """Diff two raw SYN segments; returns human-readable findings."""
    if not sent or not received:
        return ["missing SYN capture"]
    if sent == received:
        return []
    differences: List[str] = []
    try:
        sent_seg = TcpSegment.from_bytes(sent, verify_checksum=False)
        recv_seg = TcpSegment.from_bytes(received, verify_checksum=False)
    except DecodeError:
        return ["SYN bytes unparseable after transit"]

    if sent_seg.src_port != recv_seg.src_port:
        differences.append(
            f"source port rewritten {sent_seg.src_port} -> {recv_seg.src_port} (NAT)"
        )
    if sent_seg.dst_port != recv_seg.dst_port:
        differences.append(
            f"destination port rewritten {sent_seg.dst_port} -> {recv_seg.dst_port}"
        )
    if sent_seg.seq != recv_seg.seq:
        differences.append("initial sequence number rewritten (proxy)")
    if sent_seg.window != recv_seg.window:
        differences.append(
            f"window rewritten {sent_seg.window} -> {recv_seg.window} (proxy)"
        )

    sent_kinds = [option.kind for option in sent_seg.options]
    recv_kinds = [option.kind for option in recv_seg.options]
    for kind in sent_kinds:
        if kind not in recv_kinds:
            differences.append(f"TCP option kind {kind} stripped")
    for kind in recv_kinds:
        if kind not in sent_kinds:
            differences.append(f"TCP option kind {kind} injected")

    sent_mss = find_option(sent_seg.options, MaximumSegmentSize)
    recv_mss = find_option(recv_seg.options, MaximumSegmentSize)
    if sent_mss and recv_mss and sent_mss.mss != recv_mss.mss:
        differences.append(
            f"MSS clamped {sent_mss.mss} -> {recv_mss.mss} (proxy)"
        )
    if not differences:
        differences.append("SYN bytes differ (unclassified rewrite)")
    return differences
