"""Baseline stacks for the paper's comparisons.

- ``apps.TcpFileServer``/``TcpFileClient``: plain TCP (the "TCP" column
  of Table 1) — reliability without security.
- ``apps.TlsFileServer``/``TlsFileClient``: classic layered TLS over TCP
  (the "TLS/TCP" column) — security without a cross-layer view: no
  streams, no migration, no failover, no secure control channel.

The mini-QUIC baseline lives in ``repro.quic``.
"""

from repro.baselines.apps import (
    TcpFileClient,
    TcpFileServer,
    TlsFileClient,
    TlsFileServer,
)

__all__ = ["TcpFileServer", "TcpFileClient", "TlsFileServer", "TlsFileClient"]
