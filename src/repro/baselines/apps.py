"""File-transfer applications over the baseline stacks.

Every server sends ``file_size`` bytes of a deterministic pattern to each
client that connects, then closes.  Clients record time-to-first-byte and
completion time — the metrics the benchmarks report.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.tcp.stack import TcpStack
from repro.utils.errors import ReproError
from repro.tls.certificates import Identity, TrustStore
from repro.tls.session import SessionTicketStore, TlsConfig, TlsSession


def file_pattern(size: int) -> bytes:
    """A deterministic, compressible-but-not-constant payload."""
    unit = bytes(range(256))
    return (unit * (size // 256 + 1))[:size]


class TcpFileServer:
    """Plain-TCP file server."""

    def __init__(self, stack: TcpStack, port: int = 80, file_size: int = 1_000_000):
        self.file_size = file_size
        self.connections_served = 0
        stack.listen(port, self._on_connection)

    def _on_connection(self, conn) -> None:
        self.connections_served += 1

        def on_established():
            conn.send(file_pattern(self.file_size))
            conn.close()

        conn.on_established = on_established


class TcpFileClient:
    """Plain-TCP download client with timing."""

    def __init__(self, stack: TcpStack, server_addr: str, port: int = 80):
        self.sim = stack.sim
        self.received = bytearray()
        self.start_time = self.sim.now
        self.first_byte_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.reset = False
        self.conn = stack.connect(server_addr, port)
        self.conn.on_data = self._on_data
        self.conn.on_close = self._on_close
        self.conn.on_reset = lambda: setattr(self, "reset", True)

    def _on_data(self, data: bytes) -> None:
        if self.first_byte_time is None:
            self.first_byte_time = self.sim.now
        self.received.extend(data)

    def _on_close(self) -> None:
        self.complete_time = self.sim.now
        if self.conn.state == "CLOSE_WAIT":
            self.conn.close()

    def ttfb(self) -> Optional[float]:
        if self.first_byte_time is None:
            return None
        return self.first_byte_time - self.start_time


class TlsFileServer:
    """Layered TLS-over-TCP file server (no cross-layer integration)."""

    def __init__(
        self,
        stack: TcpStack,
        identity: Identity,
        port: int = 443,
        file_size: int = 1_000_000,
        ticket_key: bytes = b"\x01" * 32,
    ):
        self.identity = identity
        self.file_size = file_size
        self.ticket_key = ticket_key
        self.connections_served = 0
        self.sessions = []
        self._seed = 0
        stack.listen(port, self._on_connection)

    def _on_connection(self, conn) -> None:
        self.connections_served += 1
        self._seed += 1
        tls = TlsSession(
            TlsConfig(
                identity=self.identity,
                ticket_key=self.ticket_key,
                rng=random.Random(9000 + self._seed),
            ),
            is_server=True,
            transport_write=conn.send,
        )
        self.sessions.append(tls)

        def on_tcp_data(data: bytes) -> None:
            try:
                tls.receive(data)
            except ReproError:
                # Record authentication failure: a TLS server tears the
                # connection down rather than accept tampered data.
                conn.abort()

        conn.on_data = on_tcp_data

        def on_complete():
            tls.send(file_pattern(self.file_size))
            tls.send_close_notify()
            conn.close()

        tls.on_handshake_complete = on_complete


class TlsFileClient:
    """Layered TLS-over-TCP download client with timing."""

    def __init__(
        self,
        stack: TcpStack,
        server_addr: str,
        trust_store: TrustStore,
        server_name: str = "server.example",
        port: int = 443,
        ticket_store: Optional[SessionTicketStore] = None,
        seed: int = 77,
    ):
        self.sim = stack.sim
        self.received = bytearray()
        self.start_time = self.sim.now
        self.first_byte_time: Optional[float] = None
        self.handshake_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.reset = False
        self.error: Optional[str] = None

        self.conn = stack.connect(server_addr, port)
        self.tls = TlsSession(
            TlsConfig(
                trust_store=trust_store,
                server_name=server_name,
                ticket_store=ticket_store,
                rng=random.Random(seed),
            ),
            is_server=False,
            transport_write=self.conn.send,
        )
        self.tls.on_application_data = self._on_data
        self.tls.on_handshake_complete = self._on_handshake
        self.tls.on_close = self._on_tls_close
        self.conn.on_reset = lambda: setattr(self, "reset", True)

        def on_established():
            self.tls.start_handshake()

        self.conn.on_established = on_established

        def on_tcp_data(data: bytes) -> None:
            try:
                self.tls.receive(data)
            except ReproError as exc:  # record auth failures etc.
                self.error = str(exc)
                self.conn.abort()

        self.conn.on_data = on_tcp_data

    def _on_handshake(self) -> None:
        self.handshake_time = self.sim.now - self.start_time

    def _on_data(self, data: bytes) -> None:
        if self.first_byte_time is None:
            self.first_byte_time = self.sim.now
        self.received.extend(data)

    def _on_tls_close(self) -> None:
        self.complete_time = self.sim.now
        if self.conn.state in ("ESTABLISHED", "CLOSE_WAIT"):
            self.conn.close()

    def ttfb(self) -> Optional[float]:
        if self.first_byte_time is None:
            return None
        return self.first_byte_time - self.start_time
