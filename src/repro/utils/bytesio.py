"""Binary encoding helpers used by every wire format in the project.

All protocol encodings in this repository (TCP segments, TLS records and
handshake messages, TCPLS control frames, QUIC packets) are big-endian,
mirroring their on-the-wire network byte order.  ``ByteWriter`` builds a
message incrementally; ``ByteReader`` consumes one with strict bounds
checking so that a truncated or malicious buffer raises ``NeedMoreData``
instead of silently mis-parsing.
"""

from __future__ import annotations

import struct

from repro.utils.errors import TruncatedInput


class NeedMoreData(TruncatedInput):
    """Raised when a reader runs past the end of its buffer.

    Stream parsers use this to distinguish "wait for more bytes" from a
    structurally invalid encoding.  It subclasses
    :class:`~repro.utils.errors.TruncatedInput` (and therefore
    ``DecodeError`` / ``ProtocolViolation``), so a truncated buffer that
    reaches a fail-closed boundary is rejected, never crashes.
    """


class ByteWriter:
    """Incrementally builds a big-endian binary message."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def put_u8(self, value: int) -> "ByteWriter":
        return self.put_bytes(struct.pack("!B", value))

    def put_u16(self, value: int) -> "ByteWriter":
        return self.put_bytes(struct.pack("!H", value))

    def put_u24(self, value: int) -> "ByteWriter":
        if not 0 <= value < 1 << 24:
            raise ValueError(f"u24 out of range: {value}")
        return self.put_bytes(value.to_bytes(3, "big"))

    def put_u32(self, value: int) -> "ByteWriter":
        return self.put_bytes(struct.pack("!I", value))

    def put_u64(self, value: int) -> "ByteWriter":
        return self.put_bytes(struct.pack("!Q", value))

    def put_bytes(self, data: bytes) -> "ByteWriter":
        self._parts.append(bytes(data))
        self._length += len(data)
        return self

    def put_vec8(self, data: bytes) -> "ByteWriter":
        """Write a TLS-style <0..255> opaque vector (1-byte length prefix)."""
        if len(data) > 0xFF:
            raise ValueError("vec8 payload too long")
        return self.put_u8(len(data)).put_bytes(data)

    def put_vec16(self, data: bytes) -> "ByteWriter":
        """Write a TLS-style <0..2^16-1> opaque vector."""
        if len(data) > 0xFFFF:
            raise ValueError("vec16 payload too long")
        return self.put_u16(len(data)).put_bytes(data)

    def put_vec24(self, data: bytes) -> "ByteWriter":
        """Write a TLS-style <0..2^24-1> opaque vector."""
        if len(data) >= 1 << 24:
            raise ValueError("vec24 payload too long")
        return self.put_u24(len(data)).put_bytes(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class ByteReader:
    """Consumes a big-endian binary message with strict bounds checks."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._offset = 0

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        return len(self._data) - self._offset

    def is_empty(self) -> bool:
        return self.remaining() == 0

    def peek_u8(self) -> int:
        if self.remaining() < 1:
            raise NeedMoreData("peek_u8 past end of buffer")
        return self._data[self._offset]

    def get_bytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError("negative read")
        if self.remaining() < count:
            raise NeedMoreData(
                f"wanted {count} bytes, only {self.remaining()} available"
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def get_u8(self) -> int:
        return self.get_bytes(1)[0]

    def get_u16(self) -> int:
        return struct.unpack("!H", self.get_bytes(2))[0]

    def get_u24(self) -> int:
        return int.from_bytes(self.get_bytes(3), "big")

    def get_u32(self) -> int:
        return struct.unpack("!I", self.get_bytes(4))[0]

    def get_u64(self) -> int:
        return struct.unpack("!Q", self.get_bytes(8))[0]

    def get_vec8(self) -> bytes:
        return self.get_bytes(self.get_u8())

    def get_vec16(self) -> bytes:
        return self.get_bytes(self.get_u16())

    def get_vec24(self) -> bytes:
        return self.get_bytes(self.get_u24())

    def get_rest(self) -> bytes:
        return self.get_bytes(self.remaining())


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes arguments must have equal length")
    return bytes(x ^ y for x, y in zip(a, b))


def hexdump(data: bytes, width: int = 16) -> str:
    """Render bytes as a classic offset/hex/ascii dump (for debugging)."""
    lines = []
    for start in range(0, len(data), width):
        chunk = data[start : start + width]
        hexpart = " ".join(f"{byte:02x}" for byte in chunk)
        asciipart = "".join(
            chr(byte) if 0x20 <= byte < 0x7F else "." for byte in chunk
        )
        lines.append(f"{start:08x}  {hexpart:<{width * 3}} {asciipart}")
    return "\n".join(lines)
