"""Exception hierarchy shared across the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProtocolViolation(ReproError):
    """A peer (or a middlebox) sent something the protocol forbids."""


class CryptoError(ReproError):
    """Authentication failure or malformed cryptographic input."""


class ConfigurationError(ReproError):
    """The caller configured an object inconsistently."""
