"""Exception hierarchy shared across the reproduction.

The decode plane follows a fail-closed contract: every wire parser in
the repository (TCP segments and options, TLS records and handshake
messages, TCPLS control frames, JOIN/cookie bodies, QUIC packets) may
raise only the typed :class:`DecodeError` family on hostile or damaged
input.  ``DecodeError`` subclasses :class:`ProtocolViolation`, so every
pre-existing ``except ProtocolViolation`` recovery site (connection
teardown, segment drop, handshake abort) handles the new hierarchy
unchanged — while fuzzing harnesses can assert the tighter contract.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProtocolViolation(ReproError):
    """A peer (or a middlebox) sent something the protocol forbids."""


class CryptoError(ReproError):
    """Authentication failure or malformed cryptographic input."""


class ConfigurationError(ReproError):
    """The caller configured an object inconsistently."""


class DecodeError(ProtocolViolation):
    """A wire parser rejected its input.

    This is the *only* exception family parsers are allowed to raise on
    malformed bytes — ``struct.error``, ``IndexError`` and friends must
    never escape a decode path (see :func:`decode_guard`).
    """


class TruncatedInput(DecodeError):
    """The buffer ended before the encoding it claims to carry."""


class LengthMismatch(DecodeError):
    """A declared length field disagrees with the actual buffer bounds."""


class InvalidValue(DecodeError):
    """A field holds a value the encoding forbids (bad enum, bad text)."""


class UnknownType(DecodeError):
    """A type/kind discriminator names nothing this stack implements."""


class MessageTooLarge(DecodeError):
    """A declared or actual size exceeds the layer's hard limit."""


class ReentrancyError(ReproError):
    """An event handler re-entered ``Simulator.run`` from inside the loop.

    Re-entry interleaves two drain loops over one heap: the inner call
    advances the clock and pops events the outer loop believes are still
    pending, corrupting the (time, seq) execution order determinism rests
    on.  Handlers must ``schedule()`` continuations, never ``run()``."""


class WouldBlock(ReproError):
    """Backpressure: the stream's local send buffer is full.

    Raised by ``TcplsSession.send()`` when ``stream_send_buffer`` is
    configured and the unsent backlog would exceed it — the peer has not
    granted enough flow-control credit to drain the queue.  The caller
    should wait for the ``Event.STREAM_WRITABLE`` event and retry; the
    data from the failed call was *not* queued."""

    def __init__(self, stream_id: int, queued: int, limit: int):
        super().__init__(
            f"stream {stream_id} send buffer full ({queued}/{limit} bytes)"
        )
        self.stream_id = stream_id
        self.queued = queued
        self.limit = limit


class GuardLimitExceeded(ProtocolViolation):
    """A resource-exhaustion guard tripped (buffer cap, stream cap,
    transcript limit, JOIN rate limit).  Subclasses ``ProtocolViolation``
    so the same fail-closed teardown sites apply; observability layers
    count it separately as ``guard.tripped``."""


# Exceptions a sloppy parser might leak on attacker-shaped bytes.  A
# ``decode_guard`` block converts all of them into typed DecodeErrors.
_STRAY_DECODE_EXCEPTIONS = (
    struct.error,
    IndexError,
    KeyError,
    OverflowError,
    UnicodeDecodeError,
    ValueError,
)


@contextmanager
def decode_guard(what: str):
    """Fail-closed boundary for a parser body.

    Typed decode errors pass through untouched; any stray low-level
    exception from slicing/unpacking/str-decoding is converted into an
    :class:`InvalidValue` naming the parser, so callers can rely on the
    ``DecodeError``-only contract.
    """
    try:
        yield
    except DecodeError:
        raise
    except _STRAY_DECODE_EXCEPTIONS as exc:
        raise InvalidValue(f"{what}: {exc}") from exc
