"""Shared low-level utilities: byte codecs, deterministic RNG, errors."""

from repro.utils.bytesio import ByteReader, ByteWriter, NeedMoreData
from repro.utils.errors import ReproError

__all__ = ["ByteReader", "ByteWriter", "NeedMoreData", "ReproError"]
