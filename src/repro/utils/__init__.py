"""Shared low-level utilities: byte codecs, deterministic RNG, errors."""

from repro.utils.bytesio import ByteReader, ByteWriter, NeedMoreData
from repro.utils.errors import (
    DecodeError,
    GuardLimitExceeded,
    InvalidValue,
    LengthMismatch,
    MessageTooLarge,
    ReproError,
    TruncatedInput,
    UnknownType,
    decode_guard,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "DecodeError",
    "GuardLimitExceeded",
    "InvalidValue",
    "LengthMismatch",
    "MessageTooLarge",
    "NeedMoreData",
    "ReproError",
    "TruncatedInput",
    "UnknownType",
    "decode_guard",
]
