"""Git-diff-aware file selection for ``--changed-only`` runs.

For pre-commit latency the linter only needs to look at what changed —
*unless* the whole-program layer would see different facts.  The
decision is made with the symbol table's import graph:

1. Collect changed ``*.py`` files from ``git diff`` (worktree +
   index) plus untracked files.
2. If no changed file lives under the analysis scope, there is nothing
   to do.
3. If any changed module is imported — transitively — by a module in
   the wire scope (``tcp``/``tls``/``core``/``quic``), a changed helper
   could sit on a tainted interprocedural path, so the run falls back
   to the full repo.  Otherwise only the changed files (and the files
   that import them, so cross-module rules see their direct consumers)
   are linted.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.callgraph import SymbolTable, module_dotted_name
from repro.analysis.engine import Module

_WIRE_SEGMENTS = frozenset(("tcp", "tls", "core", "quic"))


def git_changed_files(root: Path) -> Optional[List[Path]]:
    """Changed + untracked ``*.py`` files, or None when git is unusable."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        untracked = subprocess.run(
            [
                "git", "-C", str(root), "ls-files",
                "--others", "--exclude-standard",
            ],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0 or untracked.returncode != 0:
        return None
    names = proc.stdout.splitlines() + untracked.stdout.splitlines()
    return [
        root / name.strip()
        for name in sorted(set(names))
        if name.strip().endswith(".py")
    ]


def _is_wire_module(dotted: str) -> bool:
    return bool(_WIRE_SEGMENTS.intersection(dotted.split(".")))


def reverse_importers(table: SymbolTable, targets: Set[str]) -> Set[str]:
    """Modules that (transitively) import any of ``targets``."""
    importers: Set[str] = set()
    changed = True
    wanted = set(targets)
    while changed:
        changed = False
        for mod_name in sorted(table.modules):
            if mod_name in importers or mod_name in wanted:
                continue
            if table.imports_of(mod_name) & (wanted | importers):
                importers.add(mod_name)
                changed = True
    return importers


def select_changed(
    modules: Sequence[Module],
    table: SymbolTable,
    changed_files: Sequence[Path],
) -> Optional[List[Module]]:
    """The modules a changed-only run should lint.

    Returns None to request a full-repo run (a changed module is
    reachable from the wire scope through imports); returns a possibly
    empty list otherwise.
    """
    changed_resolved = {path.resolve() for path in changed_files}
    changed_modules = [
        module for module in modules
        if module.path.resolve() in changed_resolved
    ]
    if not changed_modules:
        return []
    changed_names = {
        module_dotted_name(module.relpath) for module in changed_modules
    }
    importers = reverse_importers(table, changed_names)
    if any(_is_wire_module(name) for name in changed_names | importers):
        return None
    keep = changed_names | importers
    return [
        module for module in modules
        if module_dotted_name(module.relpath) in keep
    ]
