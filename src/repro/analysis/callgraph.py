"""Cross-module symbol table and call graph for whole-program rules.

The per-module rules in :mod:`repro.analysis.rules` are blind to flows
that cross a function boundary: a length field decoded safely in
``tls/messages.py`` can still travel through three helpers into a
buffer allocation in ``core/``.  This module builds the shared
infrastructure the interprocedural rules (TAINT001/TAINT002/API001)
stand on:

- a **symbol table** of every module, class, function and method under
  the analysis roots, keyed by dotted qualified name
  (``src.repro.core.session.TcplsSession.recv_data``);
- **import resolution** mapping the names a module binds to the
  project symbols they refer to (suffix-tolerant, so ``repro.core``
  resolves whether the analysis root is the repo or a fixture tree);
- a **call graph**: for every ``ast.Call`` in every function body, the
  set of project functions it may invoke.  Resolution is best-effort
  and deliberately conservative: direct names, module attributes,
  ``self`` methods and constructors resolve exactly; a bare
  ``obj.method(...)`` on an unknown receiver falls back to the unique
  project method of that name whose signature accepts the call (the
  *name+arity* heuristic), and stays unresolved when several match.

Everything here is pure AST bookkeeping — nothing is imported or
executed — so the graph is safe to build over hostile fixture corpora.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Module

#: An unknown-receiver method call resolves only when at most this many
#: project methods of that name are signature-compatible.
_MAX_FALLBACK_CANDIDATES = 4

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_dotted_name(relpath: str) -> str:
    """``src/repro/core/session.py`` -> ``src.repro.core.session``."""
    name = relpath[:-3] if relpath.endswith(".py") else relpath
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


@dataclass
class FunctionInfo:
    """One project function or method."""

    qualname: str
    module: Module
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # enclosing class qualname, or None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def params(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in args.posonlyargs + args.args]

    def positional_params(self) -> List[str]:
        """Parameter names as a caller sees them (``self`` dropped)."""
        params = self.params()
        if self.is_method and params and params[0] in ("self", "cls"):
            return params[1:]
        return params

    def required_positional_count(self) -> int:
        args = self.node.args  # type: ignore[attr-defined]
        return len(self.positional_params()) - len(args.defaults)

    def accepts_call(self, call: ast.Call) -> bool:
        """Loose signature compatibility for the name+arity fallback."""
        args = self.node.args  # type: ignore[attr-defined]
        n_given = len([a for a in call.args if not isinstance(a, ast.Starred)])
        if any(isinstance(a, ast.Starred) for a in call.args):
            return True
        params = self.positional_params()
        if n_given > len(params) and args.vararg is None:
            return False
        keyword_names = {kw.arg for kw in call.keywords if kw.arg is not None}
        if any(kw.arg is None for kw in call.keywords):
            return True  # **kwargs at the call site: assume compatible
        kwonly = {a.arg for a in args.kwonlyargs}
        if args.kwarg is None and not keyword_names <= (set(params) | kwonly):
            return False
        n_defaults = len(args.defaults)
        covered = n_given + len(keyword_names & set(params))
        return covered >= len(params) - n_defaults or args.vararg is not None


@dataclass
class ClassInfo:
    """One project class: its methods and (project-resolvable) bases."""

    qualname: str
    module: Module
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)


@dataclass
class CallSite:
    """One resolved call: caller function, AST node, candidate callees."""

    caller: str
    node: ast.Call
    callees: Tuple[str, ...]
    #: True when resolution used the name+arity fallback (imprecise).
    via_fallback: bool = False


class SymbolTable:
    """Every module/class/function under the analysis roots, indexed."""

    def __init__(self) -> None:
        self.modules: Dict[str, Module] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method name -> every project method with that name.
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: (module dotted name, top-level function name) -> info.
        self._toplevel: Dict[Tuple[str, str], FunctionInfo] = {}
        #: (module dotted name, class name) -> info.
        self._module_classes: Dict[Tuple[str, str], ClassInfo] = {}
        #: dotted suffix -> full module names ending in that suffix.
        self._by_suffix: Dict[str, List[str]] = {}
        #: per-module import maps (alias -> module, name -> (module, orig)).
        self._imports: Dict[str, Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, modules: Sequence[Module]) -> "SymbolTable":
        table = cls()
        for module in modules:
            table._index_module(module)
        return table

    def _index_module(self, module: Module) -> None:
        mod_name = module_dotted_name(module.relpath)
        self.modules[mod_name] = module
        parts = mod_name.split(".")
        for start in range(len(parts)):
            suffix = ".".join(parts[start:])
            self._by_suffix.setdefault(suffix, []).append(mod_name)
        self._imports[mod_name] = _collect_imports(module.tree)
        for node in module.tree.body:  # type: ignore[attr-defined]
            if isinstance(node, _FunctionNode):
                info = FunctionInfo(
                    qualname=f"{mod_name}.{node.name}", module=module, node=node
                )
                self.functions[info.qualname] = info
                self._toplevel[(mod_name, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                class_qual = f"{mod_name}.{node.name}"
                cinfo = ClassInfo(
                    qualname=class_qual,
                    module=module,
                    node=node,
                    base_names=[
                        base_name
                        for base in node.bases
                        if (base_name := _dotted_name(base)) is not None
                    ],
                )
                for sub in node.body:
                    if isinstance(sub, _FunctionNode):
                        info = FunctionInfo(
                            qualname=f"{class_qual}.{sub.name}",
                            module=module,
                            node=sub,
                            class_name=class_qual,
                        )
                        cinfo.methods[sub.name] = info
                        self.functions[info.qualname] = info
                        self.methods_by_name.setdefault(sub.name, []).append(info)
                self.classes[class_qual] = cinfo
                self._module_classes[(mod_name, node.name)] = cinfo

    # -- lookups ------------------------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Map an imported module path to a known module (suffix match)."""
        if dotted in self.modules:
            return dotted
        candidates = self._by_suffix.get(dotted, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def toplevel(self, mod_name: str, func: str) -> Optional[FunctionInfo]:
        return self._toplevel.get((mod_name, func))

    def module_class(self, mod_name: str, name: str) -> Optional[ClassInfo]:
        return self._module_classes.get((mod_name, name))

    def lookup_method(
        self, class_qual: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Find ``name`` on the class or a project-resolvable base."""
        seen = _seen if _seen is not None else set()
        if class_qual in seen:
            return None
        seen.add(class_qual)
        cinfo = self.classes.get(class_qual)
        if cinfo is None:
            return None
        if name in cinfo.methods:
            return cinfo.methods[name]
        mod_name = module_dotted_name(cinfo.module.relpath)
        for base_name in cinfo.base_names:
            base = self._resolve_class_name(mod_name, base_name)
            if base is not None:
                found = self.lookup_method(base.qualname, name, seen)
                if found is not None:
                    return found
        return None

    def _resolve_class_name(
        self, mod_name: str, name: str
    ) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted/imported) class name used in ``mod_name``."""
        head, _, rest = name.partition(".")
        modules_map, names_map = self._imports.get(mod_name, ({}, {}))
        if not rest:
            local = self.module_class(mod_name, head)
            if local is not None:
                return local
            if head in names_map:
                src_mod, orig = names_map[head]
                resolved = self.resolve_module(src_mod)
                if resolved is not None:
                    return self.module_class(resolved, orig)
            return None
        if head in modules_map:
            resolved = self.resolve_module(modules_map[head])
            if resolved is not None:
                return self.module_class(resolved, rest)
        return None

    def imports_of(self, mod_name: str) -> Set[str]:
        """Project modules this module imports (for --changed-only)."""
        modules_map, names_map = self._imports.get(mod_name, ({}, {}))
        found: Set[str] = set()
        for target in modules_map.values():
            resolved = self.resolve_module(target)
            if resolved is not None:
                found.add(resolved)
        for src_mod, _orig in names_map.values():
            resolved = self.resolve_module(src_mod)
            if resolved is not None:
                found.add(resolved)
            else:
                # ``from pkg import name`` where pkg.name is a module.
                resolved = self.resolve_module(f"{src_mod}.{_orig}")
                if resolved is not None:
                    found.add(resolved)
        return found


def _collect_imports(
    tree: ast.AST,
) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
    """(module alias -> module path, bound name -> (module, original)).

    Same shape as ``rules._import_aliases`` but local to avoid an import
    cycle; relative imports are skipped (the suffix matcher would only
    guess at them).
    """
    modules: Dict[str, str] = {}
    names: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                names[alias.asname or alias.name] = (node.module, alias.name)
    return modules, names


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallResolver:
    """Resolves ``ast.Call`` nodes inside one function to project symbols."""

    def __init__(self, table: SymbolTable, info: FunctionInfo) -> None:
        self.table = table
        self.info = info
        self.mod_name = module_dotted_name(info.module.relpath)
        self.modules_map, self.names_map = table._imports.get(
            self.mod_name, ({}, {})
        )

    def resolve(self, call: ast.Call) -> Tuple[List[FunctionInfo], bool]:
        """(candidate callees, used_fallback)."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_bare_name(func.id, call)
            return (resolved, False)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, call)
        return ([], False)

    def _resolve_bare_name(self, name: str, call: ast.Call) -> List[FunctionInfo]:
        local = self.table.toplevel(self.mod_name, name)
        if local is not None:
            return [local]
        local_class = self.table.module_class(self.mod_name, name)
        if local_class is not None:
            return self._constructor(local_class)
        if name in self.names_map:
            src_mod, orig = self.names_map[name]
            resolved_mod = self.table.resolve_module(src_mod)
            if resolved_mod is not None:
                fn = self.table.toplevel(resolved_mod, orig)
                if fn is not None:
                    return [fn]
                cinfo = self.table.module_class(resolved_mod, orig)
                if cinfo is not None:
                    return self._constructor(cinfo)
        return []

    def _constructor(self, cinfo: ClassInfo) -> List[FunctionInfo]:
        init = self.table.lookup_method(cinfo.qualname, "__init__")
        return [init] if init is not None else []

    def _resolve_attribute(
        self, func: ast.Attribute, call: ast.Call
    ) -> Tuple[List[FunctionInfo], bool]:
        attr = func.attr
        base = func.value
        # self.method(...) / cls.method(...)
        if (
            isinstance(base, ast.Name)
            and base.id in ("self", "cls")
            and self.info.class_name is not None
        ):
            found = self.table.lookup_method(self.info.class_name, attr)
            if found is not None:
                return ([found], False)
            return self._fallback(attr, call)
        # module_alias.func(...) or pkg.sub.func(...)
        dotted = _dotted_name(base)
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            target_mod: Optional[str] = None
            if head in self.modules_map:
                rest = dotted.split(".", 1)[1] if "." in dotted else ""
                target = self.modules_map[head] + (f".{rest}" if rest else "")
                target_mod = self.table.resolve_module(target)
            if target_mod is None:
                target_mod = self.table.resolve_module(dotted)
            if target_mod is not None:
                fn = self.table.toplevel(target_mod, attr)
                if fn is not None:
                    return ([fn], False)
                cinfo = self.table.module_class(target_mod, attr)
                if cinfo is not None:
                    return (self._constructor(cinfo), False)
            # ClassName.method(...) via import or local class
            cinfo = self.table._resolve_class_name(self.mod_name, dotted)
            if cinfo is not None:
                found = self.table.lookup_method(cinfo.qualname, attr)
                if found is not None:
                    return ([found], False)
        return self._fallback(attr, call)

    def _fallback(
        self, method_name: str, call: ast.Call
    ) -> Tuple[List[FunctionInfo], bool]:
        candidates = [
            fn
            for fn in self.table.methods_by_name.get(method_name, [])
            if fn.accepts_call(call)
        ]
        if 0 < len(candidates) <= _MAX_FALLBACK_CANDIDATES:
            return (candidates, True)
        return ([], False)


class CallGraph:
    """Call sites per function plus forward/reverse adjacency."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.sites: Dict[str, List[CallSite]] = {}
        self.callers_of: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for qualname, info in table.functions.items():
            resolver = CallResolver(table, info)
            sites: List[CallSite] = []
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callees, via_fallback = resolver.resolve(node)
                if not callees:
                    continue
                site = CallSite(
                    caller=qualname,
                    node=node,
                    callees=tuple(fn.qualname for fn in callees),
                    via_fallback=via_fallback,
                )
                sites.append(site)
                for fn in callees:
                    graph.callers_of.setdefault(fn.qualname, set()).add(qualname)
            graph.sites[qualname] = sites
        return graph

    def callees(self, qualname: str) -> Iterator[str]:
        for site in self.sites.get(qualname, []):
            yield from site.callees

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Transitive closure of callees starting from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in sorted(roots) if r in self.sites]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.callees(current):
                if callee not in seen:
                    stack.append(callee)
        return seen
