"""The AST lint engine behind ``python -m repro.analysis``.

Generic linters cannot check this repository's load-bearing invariants
(bit-for-bit DES determinism, the fail-closed ``decode_guard`` parser
contract, fastpath/scalar parity, the central telemetry key registry),
so this engine runs a small registry of repo-aware rules over parsed
modules and reports typed findings.

Suppression: append ``# repro: noqa-RULE`` (comma-separate several
rules, or bare ``# repro: noqa`` for all) to the offending line.  Every
suppression should carry a justification comment nearby — the rules are
about invariants, not style.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Module:
    """A parsed source file handed to every rule."""

    path: Path
    #: Path relative to the analysis root, using forward slashes.
    relpath: str
    source: str
    tree: ast.AST
    #: line number -> set of suppressed rule ids ({"*"} = all rules).
    noqa: Dict[int, frozenset]

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules


class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    #: Short id, e.g. ``DET001``; referenced by ``# repro: noqa-DET001``.
    id: str = ""
    #: One-line summary shown in listings.
    title: str = ""
    #: Long-form rationale for ``--explain``.
    rationale: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module."""
        return iter(())

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        """Yield cross-module findings after every module was checked."""
        return iter(())


def _collect_noqa(source: str) -> Dict[int, frozenset]:
    """Map line number -> suppressed rule ids, from real comment tokens.

    Tokenizing (rather than regexing raw lines) keeps a ``# repro: noqa``
    inside a string literal from suppressing anything.
    """
    noqa: Dict[int, frozenset] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules:
                ids = frozenset(part.strip() for part in rules.split(","))
            else:
                ids = frozenset(("*",))
            line = token.start[0]
            noqa[line] = noqa.get(line, frozenset()) | ids
    except tokenize.TokenError:
        pass
    return noqa


def load_module(path: Path, root: Path) -> Optional[Module]:
    """Parse one file; returns None for unreadable/unparseable input.

    Syntax errors are not this linter's job (ruff/py_compile own them),
    so a file that does not parse is skipped rather than crashing the
    whole run.
    """
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return Module(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        noqa=_collect_noqa(source),
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


@dataclass
class Report:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "rules": self.rules_run,
                "counts": self.counts(),
                "findings": [finding.as_dict() for finding in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            if self.findings
            else f"clean: {self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s)"
        )
        lines.append(summary)
        return "\n".join(lines)


def run(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> Report:
    """Run ``rules`` over every ``*.py`` under ``paths``."""
    root = root or Path.cwd()
    report = Report(rules_run=[rule.id for rule in rules])
    modules: List[Module] = []
    for file_path in iter_python_files(paths):
        module = load_module(file_path, root)
        if module is None:
            continue
        modules.append(module)
        report.files_checked += 1
        for rule in rules:
            for finding in rule.check(module):
                if not module.suppressed(finding.rule, finding.line):
                    report.findings.append(finding)
    for rule in rules:
        for finding in rule.finalize(modules, root):
            module = next(
                (m for m in modules if m.relpath == finding.path), None
            )
            if module is not None and module.suppressed(finding.rule, finding.line):
                continue
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
