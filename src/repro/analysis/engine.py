"""The AST lint engine behind ``python -m repro.analysis``.

Generic linters cannot check this repository's load-bearing invariants
(bit-for-bit DES determinism, the fail-closed ``decode_guard`` parser
contract, fastpath/scalar parity, the central telemetry key registry),
so this engine runs a small registry of repo-aware rules over parsed
modules and reports typed findings.

Suppression: append ``# repro: noqa-RULE`` (comma-separate several
rules, or bare ``# repro: noqa`` for all) to the offending line.  Every
suppression should carry a justification comment nearby — the rules are
about invariants, not style.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Module:
    """A parsed source file handed to every rule."""

    path: Path
    #: Path relative to the analysis root, using forward slashes.
    relpath: str
    source: str
    tree: ast.AST
    #: line number -> set of suppressed rule ids ({"*"} = all rules).
    noqa: Dict[int, frozenset]
    #: rule id (or "*") -> number of waiver comments naming it.
    waiver_tally: Dict[str, int] = field(default_factory=dict)

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules


class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    #: Short id, e.g. ``DET001``; referenced by ``# repro: noqa-DET001``.
    id: str = ""
    #: One-line summary shown in listings.
    title: str = ""
    #: Long-form rationale for ``--explain``.
    rationale: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module."""
        return iter(())

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        """Yield cross-module findings after every module was checked."""
        return iter(())


def _collect_noqa(source: str) -> Dict[int, frozenset]:
    """Map line number -> suppressed rule ids, from real comment tokens.

    Tokenizing (rather than regexing raw lines) keeps a ``# repro: noqa``
    inside a string literal from suppressing anything.
    """
    noqa: Dict[int, frozenset] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules:
                ids = frozenset(part.strip() for part in rules.split(","))
            else:
                ids = frozenset(("*",))
            line = token.start[0]
            noqa[line] = noqa.get(line, frozenset()) | ids
    except tokenize.TokenError:
        pass
    return noqa


#: Statement types whose waivers spread across their whole line extent.
#: Compound statements (``if``/``for``/``def``...) are excluded — a
#: waiver on their header must not blanket their entire body.
_SIMPLE_STMTS = (
    ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Return,
    ast.Raise, ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
    ast.Global, ast.Nonlocal, ast.Pass, ast.Break, ast.Continue,
)


def _spread_noqa(tree: ast.AST, noqa: Dict[int, frozenset]) -> Dict[int, frozenset]:
    """Extend waivers across multi-line simple statements.

    A ``# repro: noqa-RULE`` on any physical line of a wrapped call or
    assignment suppresses findings anchored to any other line of that
    same statement — rules anchor findings to whichever AST node they
    walked, which is rarely the line the trailing comment landed on.
    """
    if not noqa:
        return noqa
    spread = dict(noqa)
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STMTS):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or end <= node.lineno:
            continue
        lines = range(node.lineno, end + 1)
        combined = frozenset().union(
            *(noqa.get(line, frozenset()) for line in lines)
        )
        if not combined:
            continue
        for line in lines:
            spread[line] = spread.get(line, frozenset()) | combined
    return spread


def load_module(path: Path, root: Path) -> Optional[Module]:
    """Parse one file; returns None for unreadable/unparseable input.

    Syntax errors are not this linter's job (ruff/py_compile own them),
    so a file that does not parse is skipped rather than crashing the
    whole run (the skip is still counted and reported).
    """
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    noqa = _collect_noqa(source)
    tally: Dict[str, int] = {}
    for ids in noqa.values():
        for rule_id in sorted(ids):
            tally[rule_id] = tally.get(rule_id, 0) + 1
    return Module(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        noqa=_spread_noqa(tree, noqa),
        waiver_tally=tally,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


@dataclass
class Report:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    #: Files that failed to read/parse (reported, not silently dropped).
    files_skipped: List[str] = field(default_factory=list)
    #: rule id -> "<rule> in check(<relpath>): <error>" for crashed rules.
    rule_errors: Dict[str, str] = field(default_factory=dict)
    #: rule id (or "*") -> count of ``# repro: noqa`` waivers in scope.
    waivers: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.rule_errors

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "files_skipped": sorted(self.files_skipped),
                "rules": self.rules_run,
                "rule_errors": self.rule_errors,
                "counts": self.counts(),
                "waivers": self.waivers,
                "findings": [finding.as_dict() for finding in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        for rule_id in sorted(self.rule_errors):
            lines.append(f"error: {self.rule_errors[rule_id]}")
        if self.files_skipped:
            lines.append(
                f"skipped {len(self.files_skipped)} unparseable file(s): "
                + ", ".join(sorted(self.files_skipped))
            )
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            if self.findings
            else f"clean: {self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s)"
        )
        if self.waivers:
            summary += f", {sum(self.waivers.values())} waiver(s)"
        lines.append(summary)
        return "\n".join(lines)


def run(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> Report:
    """Run ``rules`` over every ``*.py`` under ``paths``."""
    root = root or Path.cwd()
    report = Report(rules_run=[rule.id for rule in rules])
    modules: List[Module] = []
    for file_path in iter_python_files(paths):
        module = load_module(file_path, root)
        if module is None:
            try:
                skipped = file_path.resolve().relative_to(
                    root.resolve()
                ).as_posix()
            except ValueError:
                skipped = file_path.as_posix()
            report.files_skipped.append(skipped)
            continue
        modules.append(module)
        report.files_checked += 1
        for rule_id, count in module.waiver_tally.items():
            report.waivers[rule_id] = report.waivers.get(rule_id, 0) + count
        for rule in rules:
            if rule.id in report.rule_errors:
                continue
            try:
                findings = list(rule.check(module))
            # Crash isolation: one broken rule must not take down the
            # others' findings.
            except Exception as exc:  # repro: noqa-SEC003 - isolation
                report.rule_errors[rule.id] = (
                    f"{rule.id} crashed in check({module.relpath}): {exc!r}"
                )
                continue
            for finding in findings:
                if not module.suppressed(finding.rule, finding.line):
                    report.findings.append(finding)
    for rule in rules:
        if rule.id in report.rule_errors:
            continue
        try:
            finalized = list(rule.finalize(modules, root))
        # Crash isolation, as above.
        except Exception as exc:  # repro: noqa-SEC003 - isolation
            report.rule_errors[rule.id] = (
                f"{rule.id} crashed in finalize(): {exc!r}"
            )
            continue
        for finding in finalized:
            module = next(
                (m for m in modules if m.relpath == finding.path), None
            )
            if module is not None and module.suppressed(finding.rule, finding.line):
                continue
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
