"""A mypy ratchet: typed prefixes stay clean, legacy debt only shrinks.

``python -m repro.analysis.ratchet`` runs mypy over ``src/`` (config in
``pyproject.toml``) and compares the per-prefix error counts against the
committed budget file (``mypy_budget.json``):

- a prefix with budget ``0`` (the strict surface: ``repro/analysis/``,
  ``repro/obs/``, ``repro/netsim/engine.py``...) must stay at zero
  errors;
- a prefix with an integer budget may not exceed it (tighten with
  ``--update-baseline`` after paying debt down);
- a prefix with budget ``null`` is legacy bootstrap: errors are
  reported but not gated.

mypy is an optional tool: the container image does not ship it, so by
default a missing mypy skips the ratchet with exit 0 (and says so).  CI
installs mypy and passes ``--require`` so the gate is real there.  The
parsing/budget logic itself is pure and unit-tested against canned mypy
output, so local test runs still cover the ratchet without the tool.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_BUDGET_FILE = Path(__file__).with_name("mypy_budget.json")

#: mypy's normal-output error line: ``path:line: error: message [code]``.
_ERROR_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+)(?::\d+)?: error: (?P<message>.*)$"
)


def parse_mypy_output(text: str) -> List[Tuple[str, int, str]]:
    """``(path, line, message)`` for every error line, others ignored."""
    errors = []
    for line in text.splitlines():
        match = _ERROR_RE.match(line.strip())
        if match:
            errors.append(
                (
                    match.group("path").replace("\\", "/"),
                    int(match.group("line")),
                    match.group("message"),
                )
            )
    return errors


def count_by_prefix(
    errors: List[Tuple[str, int, str]], prefixes: List[str]
) -> Dict[str, int]:
    """Count errors per budget prefix (longest prefix wins)."""
    counts = {prefix: 0 for prefix in prefixes}
    ordered = sorted(prefixes, key=len, reverse=True)
    for path, _line, _message in errors:
        for prefix in ordered:
            if path.startswith(prefix):
                counts[prefix] += 1
                break
    return counts


def evaluate(
    errors: List[Tuple[str, int, str]], budget: Dict[str, Optional[int]]
) -> Tuple[bool, List[str]]:
    """(ok, human lines) for an error list against a budget."""
    counts = count_by_prefix(errors, list(budget))
    ordered = sorted(budget, key=len, reverse=True)
    unbudgeted = [
        error
        for error in errors
        if not any(error[0].startswith(prefix) for prefix in ordered)
    ]
    lines: List[str] = []
    ok = True
    for prefix in sorted(budget):
        allowed = budget[prefix]
        actual = counts[prefix]
        if allowed is None:
            lines.append(f"  {prefix}: {actual} error(s) [legacy, not gated]")
        elif actual > allowed:
            ok = False
            lines.append(
                f"  {prefix}: {actual} error(s) exceeds budget {allowed} FAIL"
            )
        else:
            lines.append(f"  {prefix}: {actual}/{allowed} ok")
    if unbudgeted:
        ok = False
        lines.append(f"  (no budget prefix): {len(unbudgeted)} error(s) FAIL")
        lines.extend(
            f"    {path}:{line}: {message}"
            for path, line, message in unbudgeted[:20]
        )
    return ok, lines


def load_budget(path: Path = _BUDGET_FILE) -> Dict[str, Optional[int]]:
    return json.loads(path.read_text(encoding="utf-8"))


def run_mypy(root: Path) -> Optional[str]:
    """mypy's stdout, or None when the tool is unavailable."""
    if shutil.which("mypy") is None:
        return None
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src"],
        cwd=root,
        capture_output=True,
        text=True,
    )
    return proc.stdout


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.ratchet",
        description="mypy ratchet: per-prefix error budgets that only tighten",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(), help="repository root"
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 3) when mypy is not installed instead of skipping",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite integer budgets down to the current counts",
    )
    args = parser.parse_args(argv)

    output = run_mypy(args.root)
    if output is None:
        if args.require:
            print("mypy ratchet: mypy is not installed (--require)", file=sys.stderr)
            return 3
        print("mypy ratchet: mypy unavailable; ratchet skipped")
        return 0

    budget = load_budget()
    errors = parse_mypy_output(output)

    if args.update_baseline:
        counts = count_by_prefix(errors, list(budget))
        for prefix, allowed in budget.items():
            if allowed is not None:
                budget[prefix] = counts[prefix]
        _BUDGET_FILE.write_text(
            json.dumps(budget, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"mypy ratchet: baseline updated ({_BUDGET_FILE})")
        return 0

    ok, lines = evaluate(errors, budget)
    print(f"mypy ratchet: {len(errors)} error(s) total")
    for line in lines:
        print(line)
    print("mypy ratchet: OK" if ok else "mypy ratchet: FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
