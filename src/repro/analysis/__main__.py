"""CLI entry point: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 findings (or sanitizer mismatch), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import iter_python_files, load_module, run
from repro.analysis.rules import default_rules, rule_by_id
from repro.analysis.sanitizers import builtin_smoke_scenario, check_determinism


def _explain(rule_id: str) -> int:
    rule = rule_by_id(rule_id)
    if rule is None:
        known = ", ".join(r.id for r in default_rules())
        print(f"unknown rule {rule_id!r}; known rules: {known}", file=sys.stderr)
        return 2
    print(f"{rule.id}: {rule.title}")
    print()
    print(textwrap.dedent(rule.rationale).strip())
    print()
    print(f"Suppress a single line with: # repro: noqa-{rule.id}")
    return 0


def _list_rules() -> int:
    for rule in default_rules():
        print(f"{rule.id}  {rule.title}")
    return 0


def _sanitize(mode: str, shake: Optional[int], runs: int) -> int:
    if mode != "smoke":
        print(f"unknown sanitizer scenario {mode!r} (only: smoke)", file=sys.stderr)
        return 2
    report = check_determinism(
        builtin_smoke_scenario, runs=runs, shake_seed=shake
    )
    print(report.format())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-aware static lints + determinism sanitizers",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: src)",
    )
    parser.add_argument("--json", action="store_true", help="JSON report")
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="SARIF 2.1.0 report (for code-scanning upload)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only git-changed files (falls back to the full repo "
        "when a changed module is imported from the wire scope)",
    )
    parser.add_argument(
        "--explain", metavar="RULE", help="print a rule's rationale and exit"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--sanitize",
        metavar="SCENARIO",
        help="run the determinism sanitizer (scenario: smoke) instead of linting",
    )
    parser.add_argument(
        "--shake",
        type=int,
        metavar="SEED",
        help="enable schedule-shake mode with this seed (with --sanitize)",
    )
    parser.add_argument(
        "--runs", type=int, default=2, help="sanitizer runs to compare (default 2)"
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root for relative paths and registry checks",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()
    if args.sanitize:
        return _sanitize(args.sanitize, args.shake, args.runs)

    paths = args.paths or [args.root / "src"]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"no such path: {path}", file=sys.stderr)
        return 2
    if args.changed_only:
        narrowed = _narrow_to_changed(paths, args.root)
        if narrowed is not None:
            paths = narrowed
    report = run(paths, default_rules(), root=args.root)
    if args.sarif:
        from repro.analysis.sarif import to_sarif

        print(to_sarif(report, default_rules()))
    else:
        print(report.to_json() if args.json else report.format_human())
    return 0 if report.ok else 1


def _narrow_to_changed(
    paths: List[Path], root: Path
) -> Optional[List[Path]]:
    """Resolve --changed-only to a file list, or None for a full run."""
    from repro.analysis.callgraph import SymbolTable
    from repro.analysis.changed import git_changed_files, select_changed

    changed = git_changed_files(root)
    if changed is None:
        print(
            "warning: --changed-only needs a usable git checkout; "
            "running the full scope",
            file=sys.stderr,
        )
        return None
    modules = []
    for file_path in iter_python_files(paths):
        module = load_module(file_path, root)
        if module is not None:
            modules.append(module)
    table = SymbolTable.build(modules)
    selected = select_changed(modules, table, changed)
    if selected is None:
        print(
            "changed module is reachable from the wire scope; "
            "running the full scope",
            file=sys.stderr,
        )
        return None
    return [module.path for module in selected]


if __name__ == "__main__":
    raise SystemExit(main())
