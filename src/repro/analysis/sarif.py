"""SARIF 2.1.0 serialization for analysis reports.

SARIF (Static Analysis Results Interchange Format) is what GitHub
code scanning ingests: uploading the output of ``--sarif`` from CI
turns findings into per-line PR annotations instead of a log to dig
through.  Only the small stable core of the format is emitted — tool
metadata with one ``reportingDescriptor`` per rule, and one ``result``
per finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Report, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(report: Report, rules: Sequence[Rule]) -> str:
    """Render a report as a SARIF 2.1.0 JSON document."""
    descriptors: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule in rules:
        rule_index[rule.id] = len(descriptors)
        descriptors.append(
            {
                "id": rule.id,
                "name": rule.id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale.strip()},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    invocation: Dict[str, object] = {
        "executionSuccessful": not report.rule_errors,
    }
    if report.rule_errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": text}}
            for _rule_id, text in sorted(report.rule_errors.items())
        ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": descriptors,
                    }
                },
                "invocations": [invocation],
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
