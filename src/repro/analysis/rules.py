"""The repo-aware rule catalogue.

Twelve rules, each protecting an invariant the reproduction's claims
rest on (see DESIGN.md section 4f for the full rationale catalogue):

========  ==============================================================
DET001    No wall-clock reads or unseeded global randomness in
          simulation code.
DET002    No iteration over ``set``-typed values without explicit
          ordering (feeds scheduling / wire output nondeterminism).
SEC001    Every public ``decode``/``parse`` entry point in the wire
          layers is wrapped in ``decode_guard``.
SEC002    No ``assert`` for untrusted-input validation in parser code
          (stripped under ``python -O``).
SEC003    No bare/broad ``except`` that can swallow
          ``ProtocolViolation``.
FP001     Every fastpath flag is declared in ``repro.fastpath.FEATURES``
          and has a registered cross-check test.
FP002     Every object crossing the fleet's shard boundary is declared
          in ``PICKLE_BOUNDARY`` and has a registered pickle
          round-trip test (``repro.fleet.CROSSCHECKS``).
OBS001    Telemetry key strings come from ``repro.obs.keys``.
REL001    Every overload shed/reject path increments a registered
          ``overload.*`` telemetry key.
TAINT001  No wire-derived integer reaches an allocation size, range
          bound, repetition factor, timer delay, or resource attribute
          without a dominating bounds check (interprocedural).
TAINT002  No wire-derived bytes reach pickle/exec/eval/RNG-seed/
          telemetry-key sinks (interprocedural).
API001    Flag-gated fastpath/scalar call pairs have matching
          signatures and a cross-check that exercises the fast callee.
========  ==============================================================

The TAINT/API rules run on the whole-program layer: a symbol table and
call graph (``repro.analysis.callgraph``) plus a forward taint fixpoint
(``repro.analysis.taint``), shared and memoized per run.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, Module, Rule

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

#: Wire-layer scope for the SEC rules: the subpackages whose modules
#: parse untrusted bytes.
_WIRE_SCOPE_RE = re.compile(r"(^|/)(tcp|tls|core|quic)(/|$)")

#: Parser entry-point naming convention.
_PARSER_NAME_RE = re.compile(r"^(decode|parse)($|_)")
_PARSER_EXACT = frozenset(("from_bytes", "from_body"))


def _in_wire_scope(module: Module) -> bool:
    parent = module.relpath.rsplit("/", 1)[0] if "/" in module.relpath else ""
    return bool(_WIRE_SCOPE_RE.search(parent + "/"))


def _is_parser_name(name: str) -> bool:
    return bool(_PARSER_NAME_RE.match(name)) or name in _PARSER_EXACT


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.AST) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
    """(module alias -> module name, bound name -> (module, original name))."""
    modules: Dict[str, str] = {}
    names: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                names[alias.asname or alias.name] = (node.module, alias.name)
    return modules, names


def _contains_decode_guard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.With):
            for item in sub.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    name = _dotted(expr.func)
                    if name and name.split(".")[-1] == "decode_guard":
                        return True
    return False


# ---------------------------------------------------------------------------
# DET001 — wall clock / unseeded randomness
# ---------------------------------------------------------------------------

class Det001WallClock(Rule):
    id = "DET001"
    title = "no wall-clock reads or unseeded global randomness in simulation code"
    rationale = """\
The discrete-event simulator is the determinism root of the whole
reproduction: PR 1's pcap/telemetry identity checks, PR 3's
fastpath-vs-scalar cross-checks and PR 4's SHA-256 fuzz replay all
assume a scenario replays bit-for-bit from its seeds.  A single
`time.time()` (or `datetime.now()`, `os.urandom()`, `secrets.*`,
`uuid.uuid1/4`, or a module-level `random.*` call drawing from the
OS-seeded global RNG) silently couples a run to the host, and the
breakage only shows up later as an unreproducible trace.

All entropy must flow from `random.Random(seed)` instances constructed
from configuration, and all time from `Simulator.now`.  Wall-clock
*profiling* via `time.perf_counter()` is allowed — it only feeds
observability gauges, never simulated behaviour.

Suppress with `# repro: noqa-DET001` only for code that demonstrably
never feeds the simulation (e.g. log file naming)."""

    #: module -> callables that read the wall clock / OS entropy.
    _BANNED = {
        "time": {"time", "time_ns"},
        "os": {"urandom", "getrandom"},
        "uuid": {"uuid1", "uuid4"},
    }
    _DATETIME_CTORS = {"now", "utcnow", "today"}
    _RANDOM_OK = {"Random", "SystemRandom"}

    def check(self, module: Module) -> Iterator[Finding]:
        modules, names = _import_aliases(module.tree)

        def flag(node: ast.AST, what: str) -> Finding:
            return Finding(
                rule=self.id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=f"{what} breaks deterministic replay; use a seeded "
                "Random / the simulated clock instead",
            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = _dotted(func.value)
                attr = func.attr
                if base is None:
                    continue
                root = modules.get(base, base if "." in base else None)
                # `import datetime` then datetime.datetime.now(...)
                if root and root.split(".")[0] == "datetime" and (
                    attr in self._DATETIME_CTORS
                ):
                    yield flag(node, f"datetime wall-clock read ({attr}())")
                    continue
                mod = modules.get(base)
                if mod is None and base in names:
                    # `from datetime import datetime` -> datetime.now()
                    src_mod, orig = names[base]
                    if src_mod == "datetime" and attr in self._DATETIME_CTORS:
                        yield flag(node, f"datetime wall-clock read ({attr}())")
                    continue
                if mod is None:
                    continue
                if mod == "random" and attr not in self._RANDOM_OK:
                    yield flag(node, f"module-level random.{attr}() (unseeded)")
                elif mod == "secrets":
                    yield flag(node, f"secrets.{attr}() (OS entropy)")
                elif attr in self._BANNED.get(mod, ()):
                    yield flag(node, f"{mod}.{attr}() wall-clock/OS-entropy read")
            elif isinstance(func, ast.Name) and func.id in names:
                src_mod, orig = names[func.id]
                if src_mod == "random" and orig not in self._RANDOM_OK:
                    yield flag(node, f"module-level random.{orig}() (unseeded)")
                elif src_mod == "secrets":
                    yield flag(node, f"secrets.{orig}() (OS entropy)")
                elif src_mod == "datetime" and orig in (
                    "datetime",
                    "date",
                ):
                    continue
                elif orig in self._BANNED.get(src_mod, ()):
                    yield flag(node, f"{src_mod}.{orig}() wall-clock/OS-entropy read")


# ---------------------------------------------------------------------------
# DET002 — unordered set iteration
# ---------------------------------------------------------------------------

_SET_NAMES = frozenset(("set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                        "MutableSet"))
_DICT_NAMES = frozenset(("dict", "Dict", "defaultdict", "DefaultDict",
                         "Mapping", "MutableMapping", "OrderedDict"))
#: Order-insensitive consumers: iterating a set *inside* these is fine.
_ORDER_FREE_CALLS = frozenset(
    ("sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset")
)
#: Converting a set through these preserves its arbitrary order.
_ORDER_KEEPING_CALLS = frozenset(("list", "tuple", "iter", "enumerate"))


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_NAMES
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
        return head in _SET_NAMES
    return False


def _annotation_is_dict_of_sets(node: Optional[ast.AST]) -> bool:
    if not isinstance(node, ast.Subscript):
        return False
    base = node.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in _DICT_NAMES:
        return False
    inner = node.slice
    if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
        return _annotation_is_set(inner.elts[1])
    return False


def _expr_makes_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class Det002UnorderedIteration(Rule):
    id = "DET002"
    title = "no iteration over set values without explicit ordering"
    rationale = """\
Python sets iterate in hash order: stable within one process for ints,
but dependent on PYTHONHASHSEED for strings and on allocation addresses
for objects.  A `for x in some_set:` that feeds scheduling decisions,
route selection, or wire output makes two runs of the *same seed*
diverge across processes — exactly the nondeterminism the DES is built
to exclude.  (Dict iteration is insertion-ordered since 3.7 and the DES
makes insertion order deterministic, so dicts are accepted.)

Wrap the iteration in `sorted(...)` (or iterate a list/dict instead).
Order-insensitive folds (`min`/`max`/`any`/`all`/`len`/`sum`) are
accepted.  The rule infers set-ness from literals, `set()` calls,
annotations (including `Dict[k, Set[v]]` values unpacked via
`.items()`), and `self.x = set()` assignments in the enclosing class.

Suppress with `# repro: noqa-DET002` only where order provably cannot
escape (e.g. building another set)."""

    def check(self, module: Module) -> Iterator[Finding]:
        # Class-level: attributes assigned a set anywhere in the class.
        set_attrs: Dict[ast.ClassDef, Set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                attrs: Set[str] = set()
                for sub in ast.walk(node):
                    target = None
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target, value = sub.targets[0], sub.value
                    elif isinstance(sub, ast.AnnAssign):
                        target, value = sub.target, None
                        if _annotation_is_set(sub.annotation):
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.add(target.attr)
                            continue
                    if (
                        target is not None
                        and value is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _expr_makes_set(value)
                    ):
                        attrs.add(target.attr)
                set_attrs[node] = attrs

        findings: List[Finding] = []
        self._walk_scope(module, module.tree, set(), set(), set_attrs, None, findings)
        return iter(findings)

    # -- scope walker -------------------------------------------------------

    def _walk_scope(
        self,
        module: Module,
        scope: ast.AST,
        inherited_sets: Set[str],
        inherited_dicts: Set[str],
        set_attrs: Dict[ast.ClassDef, Set[str]],
        enclosing_class: Optional[ast.ClassDef],
        findings: List[Finding],
    ) -> None:
        set_names = set(inherited_sets)
        dict_names = set(inherited_dicts)

        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if _annotation_is_set(arg.annotation):
                    set_names.add(arg.arg)
                elif _annotation_is_dict_of_sets(arg.annotation):
                    dict_names.add(arg.arg)

        body = scope.body if hasattr(scope, "body") else []
        # Flow-insensitive local inference pass.
        for node in body:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)) and sub is not node:
                    continue
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    if isinstance(target, ast.Name):
                        if _expr_makes_set(sub.value):
                            set_names.add(target.id)
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    if _annotation_is_set(sub.annotation):
                        set_names.add(sub.target.id)
                    elif _annotation_is_dict_of_sets(sub.annotation):
                        dict_names.add(sub.target.id)
                elif isinstance(sub, ast.Call):
                    # d.setdefault(k, set()) marks d as a dict of sets.
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "setdefault"
                        and isinstance(func.value, ast.Name)
                        and len(sub.args) == 2
                        and _expr_makes_set(sub.args[1])
                    ):
                        dict_names.add(func.value.id)
                elif isinstance(sub, ast.For):
                    # for k, v in dict_of_sets.items(): v is a set.
                    self._bind_items_target(sub.target, sub.iter, dict_names,
                                            set_names)

        def is_set_expr(expr: ast.AST) -> bool:
            if _expr_makes_set(expr):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in set_names
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and enclosing_class is not None
            ):
                return expr.attr in set_attrs.get(enclosing_class, set())
            return False

        def visit(node: ast.AST, order_free: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_scope(module, node, set_names, dict_names,
                                 set_attrs, enclosing_class, findings)
                return
            if isinstance(node, ast.ClassDef):
                self._walk_scope(module, node, set(), set(), set_attrs, node,
                                 findings)
                return
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                findings.append(self._finding(module, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if is_set_expr(gen.iter) and not order_free:
                        findings.append(self._finding(module, gen.iter))
            elif isinstance(node, ast.Call):
                name = node.func.id if isinstance(node.func, ast.Name) else None
                if name in _ORDER_KEEPING_CALLS and node.args and is_set_expr(
                    node.args[0]
                ) and not order_free:
                    findings.append(self._finding(module, node.args[0]))
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and is_set_expr(node.args[0])
                ):
                    findings.append(self._finding(module, node.args[0]))
                inner_free = order_free or name in _ORDER_FREE_CALLS
                for child in ast.iter_child_nodes(node):
                    visit(child, inner_free)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, order_free)

        for node in body:
            visit(node, False)

    @staticmethod
    def _bind_items_target(
        target: ast.AST,
        iterable: ast.AST,
        dict_names: Set[str],
        set_names: Set[str],
    ) -> None:
        if not (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and isinstance(iterable.func.value, ast.Name)
            and iterable.func.value.id in dict_names
        ):
            return
        method = iterable.func.attr
        if method == "items" and isinstance(target, ast.Tuple) and len(
            target.elts
        ) == 2 and isinstance(target.elts[1], ast.Name):
            set_names.add(target.elts[1].id)
        elif method == "values" and isinstance(target, ast.Name):
            set_names.add(target.id)

    def _finding(self, module: Module, node: ast.AST) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset,
            message="iteration over a set has no deterministic order; "
            "wrap in sorted(...) or restructure",
        )


# ---------------------------------------------------------------------------
# SEC001 — decode_guard on parser entry points
# ---------------------------------------------------------------------------

class Sec001DecodeGuard(Rule):
    id = "SEC001"
    title = "public decode/parse entry points must be wrapped in decode_guard"
    rationale = """\
The fail-closed wire contract (PR 4) says a parser may raise only the
typed `DecodeError` family on hostile bytes — `struct.error`,
`IndexError` and friends must never escape a decode path, because every
teardown site upstream catches `ProtocolViolation` and anything else
crashes the process an attacker talks to.  `decode_guard()` is the
enforcement boundary; a *new* parser that forgets it compiles, passes
happy-path tests, and ships a remote crash.

The rule requires every public function named `decode*`/`parse*`/
`from_bytes`/`from_body` in the wire layers (tcp/tls/core/quic) to
contain a `with decode_guard(...)` block, carry a module-local decorator
that wraps one (e.g. `@_armored`), or consist solely of delegation to a
guarded sibling."""

    def check(self, module: Module) -> Iterator[Finding]:
        if not _in_wire_scope(module):
            return
        # Module-local guard providers: functions whose body contains a
        # decode_guard with-block (used directly or as decorators).
        guarded_funcs: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and _contains_decode_guard(node):
                guarded_funcs.add(node.name)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            name = node.name
            if name.startswith("_") or not _is_parser_name(name):
                continue
            if _contains_decode_guard(node):
                continue
            if self._has_guarding_decorator(node, guarded_funcs):
                continue
            if self._delegates_to_guarded(node, guarded_funcs):
                continue
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=f"public parser entry point {name}() is not wrapped "
                "in decode_guard (fail-closed wire contract)",
            )

    @staticmethod
    def _has_guarding_decorator(node: ast.FunctionDef, guarded: Set[str]) -> bool:
        for decorator in node.decorator_list:
            name = _dotted(decorator)
            if name and name.split(".")[-1] in guarded:
                return True
        return False

    @staticmethod
    def _delegates_to_guarded(node: ast.FunctionDef, guarded: Set[str]) -> bool:
        body = [
            stmt
            for stmt in node.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        if not body:
            return False
        for stmt in body:
            if not (
                isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id in guarded
            ):
                return False
        return True


# ---------------------------------------------------------------------------
# SEC002 — assert as input validation
# ---------------------------------------------------------------------------

class Sec002AssertValidation(Rule):
    id = "SEC002"
    title = "no assert for untrusted-input validation in parser code"
    rationale = """\
`assert` statements vanish under `python -O`, so a parser that uses
`assert length <= limit` validates nothing in an optimized deployment —
the classic fail-open bug.  Inside the wire layers every validation of
attacker-controlled bytes must raise a typed `DecodeError` instead.

The rule flags `assert` inside any decode/parse-named function in the
wire layers (tcp/tls/core/quic).  Internal-invariant asserts elsewhere
(schedulers, tests, verifiers on trusted state) are untouched."""

    def check(self, module: Module) -> Iterator[Finding]:
        if not _in_wire_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_parser_name(node.name.lstrip("_")):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assert):
                    yield Finding(
                        rule=self.id,
                        path=module.relpath,
                        line=sub.lineno,
                        col=sub.col_offset,
                        message=f"assert in parser {node.name}() is stripped "
                        "under -O; raise a typed DecodeError instead",
                    )


# ---------------------------------------------------------------------------
# SEC003 — broad excepts
# ---------------------------------------------------------------------------

class Sec003BroadExcept(Rule):
    id = "SEC003"
    title = "no bare/broad except that can swallow ProtocolViolation"
    rationale = """\
`except Exception` (or a bare `except:`) around a wire-handling call
swallows `ProtocolViolation` — the fail-closed signal — together with
genuine programming errors, turning both an attack and a bug into
silence.  PR 4's armored parsers guarantee decode paths raise only the
typed `DecodeError` family, so handlers can (and must) catch exactly
that: `except DecodeError:` for parser fallbacks, `except ReproError:`
where any library-signalled failure should be contained.

Handlers that re-raise (a bare `raise` in the body) are accepted.
Intentional catch-alls — a fuzzing harness hunting for contract
violations, a best-effort alert send during teardown — carry
`# repro: noqa-SEC003` with a justification."""

    _BROAD = frozenset(("Exception", "BaseException"))

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or self._names_broad(node.type)
            if not broad:
                continue
            if self._reraises(node):
                continue
            label = "bare except:" if node.type is None else (
                f"except {_dotted(node.type) or 'Exception'}"
            )
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=f"{label} can swallow ProtocolViolation; catch "
                "DecodeError/ReproError or re-raise",
            )

    def _names_broad(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Tuple):
            return any(self._names_broad(elt) for elt in node.elts)
        name = _dotted(node)
        return bool(name) and name.split(".")[-1] in self._BROAD

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise) and sub.exc is None:
                return True
        return False


# ---------------------------------------------------------------------------
# FP001 — fastpath flag audit
# ---------------------------------------------------------------------------

class Fp001FastpathRegistry(Rule):
    id = "FP001"
    title = "fastpath flags must be declared and cross-checked"
    rationale = """\
Every datapath fast path must be bit-identical to the scalar reference
it replaces, and the only thing enforcing that is the cross-check test
registered for its flag.  A flag name used at a gate site but absent
from `repro.fastpath.FEATURES` raises `KeyError` at runtime on an
untested path; a feature without a `CROSSCHECKS` entry (or whose
registered test file no longer mentions the flag) is a fast path whose
equivalence claim nobody verifies.

The rule audits (a) every literal flag used with `fastpath.flags[...]`,
`enabled()`, `set_enabled()`, or `overridden()` is declared in
`FEATURES`; (b) gate subscripts use literal strings (dynamic flag names
defeat auditing); (c) every feature has a registered cross-check test
file that exists and references the flag."""

    _GATE_CALLS = frozenset(("enabled", "set_enabled", "overridden"))

    def __init__(self) -> None:
        self._uses: List[Tuple[str, int, int, Optional[str]]] = []

    def check(self, module: Module) -> Iterator[Finding]:
        if module.relpath.endswith("repro/fastpath.py"):
            return
        modules, names = _import_aliases(module.tree)
        fastpath_aliases = {
            alias for alias, mod in modules.items()
            if mod in ("repro.fastpath", "fastpath")
        }
        fastpath_aliases |= {
            bound for bound, (mod, orig) in names.items()
            if orig == "fastpath" or mod == "repro.fastpath"
        }
        flags_names = {
            bound for bound, (mod, orig) in names.items()
            if mod == "repro.fastpath" and orig == "flags"
        }
        if not fastpath_aliases and not flags_names:
            return
        for node in ast.walk(module.tree):
            literal: Optional[ast.AST] = None
            if isinstance(node, ast.Subscript):
                value = node.value
                is_flags = (
                    isinstance(value, ast.Attribute)
                    and value.attr == "flags"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in fastpath_aliases
                ) or (
                    isinstance(value, ast.Name) and value.id in flags_names
                )
                if not is_flags:
                    continue
                literal = node.slice
            elif isinstance(node, ast.Call):
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._GATE_CALLS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in fastpath_aliases
                    and node.args
                ):
                    continue
                literal = node.args[0]
            else:
                continue
            if isinstance(literal, ast.Constant) and isinstance(
                literal.value, str
            ):
                self._uses.append(
                    (module.relpath, literal.lineno, literal.col_offset,
                     literal.value)
                )
            else:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message="fastpath flag is not a string literal; dynamic "
                    "flag names cannot be audited",
                )

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        from repro import fastpath

        features = set(fastpath.FEATURES)
        for path, line, col, flag in self._uses:
            if flag is not None and flag not in features:
                yield Finding(
                    rule=self.id,
                    path=path,
                    line=line,
                    col=col,
                    message=f"fastpath flag {flag!r} is not declared in "
                    "repro.fastpath.FEATURES",
                )
        self._uses = []
        # Registry completeness is only checkable from the repo root.
        fastpath_src = root / "src" / "repro" / "fastpath.py"
        if not fastpath_src.exists():
            return
        crosschecks = getattr(fastpath, "CROSSCHECKS", {})
        for feature in fastpath.FEATURES:
            test_path = crosschecks.get(feature)
            if test_path is None:
                yield Finding(
                    rule=self.id,
                    path="src/repro/fastpath.py",
                    line=1,
                    col=0,
                    message=f"feature {feature!r} has no registered "
                    "cross-check test (fastpath.CROSSCHECKS)",
                )
                continue
            full = root / test_path
            if not full.exists():
                yield Finding(
                    rule=self.id,
                    path="src/repro/fastpath.py",
                    line=1,
                    col=0,
                    message=f"cross-check test {test_path!r} for feature "
                    f"{feature!r} does not exist",
                )
            elif feature not in full.read_text(encoding="utf-8"):
                yield Finding(
                    rule=self.id,
                    path="src/repro/fastpath.py",
                    line=1,
                    col=0,
                    message=f"cross-check test {test_path!r} never references "
                    f"feature {feature!r}",
                )


# ---------------------------------------------------------------------------
# FP002 — shard-boundary objects declared and pickle-tested
# ---------------------------------------------------------------------------

class Fp002ShardBoundary(Rule):
    id = "FP002"
    title = "shard-boundary objects must be declared and pickle-tested"
    rationale = """\
The fleet runner ships shard specs to workers and shard results back
through `multiprocessing`, so every object on that boundary must
survive a pickle round trip — an unpicklable field fails at fan-out
time with an opaque pool traceback, and a field that pickles but loses
state silently corrupts the merge.  The declared boundary is
`PICKLE_BOUNDARY` in the boundary module; the enforcement is the
pickle round-trip test registered per class in
`repro.fleet.CROSSCHECKS` (the same contract FP001 applies to fastpath
flags — no boundary object outlives the test proving it safe).  The
registry must also keep a cross-check entry for the vectorized queue
path (`netsim.vectorq`), the fleet's in-world fast path.

The rule audits (a) every top-level class in a module declaring
`PICKLE_BOUNDARY` is listed in it (a class added to the boundary
module but not the declaration escapes testing); (b) the declaration
is a literal tuple/list of strings (dynamic boundaries defeat
auditing); (c) every declared name has a registered test file that
exists and references the name; (d) the `netsim.vectorq` entry is
present."""

    def check(self, module: Module) -> Iterator[Finding]:
        declaration: Optional[ast.stmt] = None
        value: Optional[ast.expr] = None
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "PICKLE_BOUNDARY"
                for target in node.targets
            ):
                declaration, value = node, node.value
                break
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ) and node.target.id == "PICKLE_BOUNDARY":
                declaration, value = node, node.value
                break
        if declaration is None:
            return
        declared: Set[str] = set()
        if isinstance(value, (ast.Tuple, ast.List)) and all(
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
            for element in value.elts
        ):
            declared = {
                element.value
                for element in value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            }
        else:
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=declaration.lineno,
                col=declaration.col_offset,
                message="PICKLE_BOUNDARY is not a literal tuple/list of "
                "strings; a dynamic boundary cannot be audited",
            )
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name not in declared:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=f"class {node.name!r} in a shard-boundary module "
                    "is not declared in PICKLE_BOUNDARY",
                )

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        # Registry completeness is only checkable from the repo root.
        spec_src = root / "src" / "repro" / "fleet" / "spec.py"
        if not spec_src.exists():
            return
        from repro import fleet

        crosschecks = getattr(fleet, "CROSSCHECKS", {})
        required = tuple(fleet.PICKLE_BOUNDARY) + ("netsim.vectorq",)
        for name in required:
            test_path = crosschecks.get(name)
            if test_path is None:
                yield Finding(
                    rule=self.id,
                    path="src/repro/fleet/__init__.py",
                    line=1,
                    col=0,
                    message=f"shard-boundary entry {name!r} has no registered "
                    "cross-check test (fleet.CROSSCHECKS)",
                )
                continue
            full = root / test_path
            if not full.exists():
                yield Finding(
                    rule=self.id,
                    path="src/repro/fleet/__init__.py",
                    line=1,
                    col=0,
                    message=f"cross-check test {test_path!r} for "
                    f"{name!r} does not exist",
                )
            elif name not in full.read_text(encoding="utf-8"):
                yield Finding(
                    rule=self.id,
                    path="src/repro/fleet/__init__.py",
                    line=1,
                    col=0,
                    message=f"cross-check test {test_path!r} never references "
                    f"{name!r}",
                )


# ---------------------------------------------------------------------------
# OBS001 — telemetry keys from the registry
# ---------------------------------------------------------------------------

class Obs001TelemetryKeys(Rule):
    id = "OBS001"
    title = "telemetry key strings must come from repro.obs.keys"
    rationale = """\
Telemetry keys are an API: the BENCH_*.json exporters, the CI job
summaries and the fault-matrix invariant checks all read counters by
name.  A literal key at the call site can silently fork the vocabulary
("decode.rejected" here, "decode_rejected" there) and the consumer
reads zero forever.  `repro.obs.keys` is the single registry; call
sites pass its constants (or helpers like `session_event()`), so the
rule simply rejects any string literal or f-string passed directly to
`Telemetry.counter`/`gauge`/`histogram` outside the obs package
itself."""

    _METHODS = frozenset(("counter", "gauge", "histogram"))
    _EXEMPT_SUFFIXES = ("obs/telemetry.py", "obs/keys.py")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.relpath.endswith(self._EXEMPT_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in self._METHODS
            ):
                continue
            for arg in node.args[:2]:
                if isinstance(arg, ast.JoinedStr) or (
                    isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                ):
                    yield Finding(
                        rule=self.id,
                        path=module.relpath,
                        line=arg.lineno,
                        col=arg.col_offset,
                        message="telemetry key is a string literal; use a "
                        "constant/helper from repro.obs.keys",
                    )


# ---------------------------------------------------------------------------
# REL001 — overload shed/reject paths are counted
# ---------------------------------------------------------------------------

class Rel001OverloadTelemetry(Rule):
    id = "REL001"
    title = "every overload shed/reject path increments a registered overload.* key"
    rationale = """\
The O1 benchmark's pass criterion is not just "goodput stays flat" but
"the excess was *actively refused*, with nonzero, deterministic
shed/reject counts" — silent drops and counted rejections are
indistinguishable from the outside, and only the counted kind can be
asserted on, trended in CI, and reconciled against the client-side
view.  A rejection branch someone adds without a counter quietly
breaks that reconciliation: the admission totals stop adding up to the
offered load and every overload invariant downstream goes soft.

The rule requires every shed/reject function in ``repro.overload``
(names starting ``reject*``/``shed*``; plain getters like
``shed_count`` are exempt) to increment a telemetry counter — a
``.inc(`` call in its body, or delegation to a module-local function
that has one.  ``finalize`` audits the other half of the contract:
every ``OVERLOAD_*`` constant in ``repro.obs.keys`` must be registered
in ``ALL_KEYS``, so the incremented keys actually exist in the
exported vocabulary."""

    _NAME_RE = re.compile(r"^_?(reject|shed)")
    _EXEMPT_RE = re.compile(r"count$")

    def check(self, module: Module) -> Iterator[Finding]:
        if "repro/overload/" not in module.relpath:
            return
        inc_providers: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and self._contains_inc(node):
                inc_providers.add(node.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            name = node.name
            if not self._NAME_RE.match(name) or self._EXEMPT_RE.search(name):
                continue
            if name in inc_providers:
                continue
            if self._calls_any(node, inc_providers):
                continue
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=f"shed/reject path {name}() never increments an "
                "overload.* telemetry counter; uncounted refusals cannot "
                "be reconciled against offered load",
            )

    @staticmethod
    def _contains_inc(node: ast.FunctionDef) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "inc"
            ):
                return True
        return False

    @staticmethod
    def _calls_any(node: ast.FunctionDef, providers: Set[str]) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            callee = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if callee in providers:
                return True
        return False

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        # Registry completeness is only checkable from the repo root.
        keys_src = root / "src" / "repro" / "obs" / "keys.py"
        if not keys_src.exists():
            return
        from repro.obs import keys as obs_keys

        registered = set(obs_keys.ALL_KEYS)
        for name in sorted(vars(obs_keys)):
            if not name.startswith("OVERLOAD_"):
                continue
            value = getattr(obs_keys, name)
            if value not in registered:
                yield Finding(
                    rule=self.id,
                    path="src/repro/obs/keys.py",
                    line=1,
                    col=0,
                    message=f"overload key {name} ({value!r}) is not "
                    "registered in ALL_KEYS",
                )


# ---------------------------------------------------------------------------
# TAINT001 / TAINT002 — interprocedural wire-taint flows
# ---------------------------------------------------------------------------

class _TaintRuleBase(Rule):
    """Shared finalize: run the whole-program pass, emit my family."""

    #: Which sink kinds belong to this rule (see ``taint.INT_SINKS``).
    _sink_kinds: frozenset = frozenset()

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        from repro.analysis.taint import analyze_program

        _table, _graph, result = analyze_program(modules)
        for hit in result.sinks:
            if hit.sink not in self._sink_kinds:
                continue
            yield Finding(
                rule=self.id,
                path=hit.module.relpath,
                line=hit.line,
                col=hit.col,
                message=f"{hit.detail}; tainted by {hit.origin}",
            )


class Taint001UnboundedWireInteger(_TaintRuleBase):
    id = "TAINT001"
    title = "wire-derived integers must be bounds-checked before use"
    rationale = """\
A length/offset/timeout field decoded under `decode_guard` parses
safely — but the *value* is still attacker-chosen, and PR 5's per-module
checks cannot see it flow through helper calls into another module.
This rule seeds taint at every decoder (`decode_guard` bodies, guard-
decorated parsers, `from_bytes` constructors, fuzz mutators), propagates
it forward through assignments, calls/returns, attribute stores on
protocol objects, and container packing, and reports any path where the
value reaches an allocation size (`bytes(n)`), a `range()` bound, a
sequence repetition factor, a timer delay (a parameter named
`delay`/`timeout`/`seconds`/... resolved via the call graph), or a
resource-governing attribute store (`*cwnd`, `*limit`, `*window`,
`*timeout`, ...) without a dominating bounds check.

A flow is considered guarded by: a `min(...)` wrap, a width-reducing
`x % cap` / `x & mask`, or any earlier `if`/`while`/`assert` test
naming the value in the same function.  `max(...)` is a floor, not a
cap, and does not count — that is exactly how the plugin-cwnd bug
slipped through."""

    def __init__(self) -> None:
        from repro.analysis.taint import INT_SINKS

        self._sink_kinds = INT_SINKS


class Taint002WireDataSink(_TaintRuleBase):
    id = "TAINT002"
    title = "wire-derived data must not reach interpreter/state sinks"
    rationale = """\
Some sinks are unsafe for attacker bytes at *any* value: `pickle.loads`
and `marshal.loads` execute reduction callables, `exec`/`eval`/`compile`
are code injection, seeding a `random.Random` from wire data lets a
peer steer "random" simulation decisions, and interpolating wire bytes
into a telemetry key explodes key cardinality and corrupts dashboards.
FP002 already polices the fleet's declared pickle boundary per-module;
this rule follows the bytes interprocedurally, so a decode in `tls/`
that funnels into a `pickle.loads` three calls away in `fleet/` is
still caught."""

    def __init__(self) -> None:
        from repro.analysis.taint import DATA_SINKS

        self._sink_kinds = DATA_SINKS


# ---------------------------------------------------------------------------
# API001 — fastpath/scalar pair contracts via the call graph
# ---------------------------------------------------------------------------

class Api001FastpathPairContract(Rule):
    id = "API001"
    title = "fastpath/scalar pairs must match signatures and be cross-checked"
    rationale = """\
FP001 checks flag hygiene by name convention: the flag exists and its
registered test file mentions the flag.  This rule checks the *pair*
semantics via the call graph: at every gate of the form

    if fastpath.enabled("x"): return fast(...)
    return scalar(...)

(or the ternary / branch-assignment equivalents), the fast and scalar
callees must (a) be two distinct functions — both branches calling the
same function is a dead fast path, (b) have matching positional
signatures — a drifted parameter list means the cross-check test cannot
be exercising both paths with the same inputs, and (c) the flag's
registered cross-check test must reference the fast callee by name, so
renaming the fast function without updating the equivalence test is
caught."""

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Finding]:
        from repro import fastpath
        from repro.analysis.callgraph import CallResolver, SymbolTable
        from repro.analysis.taint import analyze_program

        table, _graph, _result = analyze_program(modules)
        crosschecks = getattr(fastpath, "CROSSCHECKS", {})
        check_registry = (root / "src" / "repro" / "fastpath.py").exists()
        for qualname in sorted(table.functions):
            info = table.functions[qualname]
            resolver = CallResolver(table, info)
            for gate in _find_fastpath_gates(info.node):
                flag, fast_call, slow_call = gate
                fast = _sole_callee(resolver, fast_call)
                slow = _sole_callee(resolver, slow_call)
                if fast is None or slow is None:
                    continue
                line = fast_call.lineno
                col = fast_call.col_offset
                if fast.qualname == slow.qualname:
                    yield Finding(
                        rule=self.id,
                        path=info.module.relpath,
                        line=line,
                        col=col,
                        message=f"both branches of the {flag!r} gate call "
                        f"{fast.name}(); the fast path is dead",
                    )
                    continue
                fast_params = tuple(fast.positional_params())
                slow_params = tuple(slow.positional_params())
                if fast_params != slow_params:
                    yield Finding(
                        rule=self.id,
                        path=info.module.relpath,
                        line=line,
                        col=col,
                        message=f"{flag!r} gate pair has drifted signatures: "
                        f"{fast.name}({', '.join(fast_params)}) vs "
                        f"{slow.name}({', '.join(slow_params)})",
                    )
                test_path = crosschecks.get(flag)
                if not check_registry or test_path is None:
                    continue  # flag registry itself is FP001's business
                full = root / test_path
                if full.exists() and fast.name not in full.read_text(
                    encoding="utf-8"
                ):
                    yield Finding(
                        rule=self.id,
                        path=info.module.relpath,
                        line=line,
                        col=col,
                        message=f"cross-check test {test_path!r} for "
                        f"{flag!r} never references the fast callee "
                        f"{fast.name}()",
                    )


def _gate_flag(test: ast.AST) -> Optional[str]:
    """Extract the flag literal from a fastpath gate test expression."""
    for node in ast.walk(test):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "enabled"
                and isinstance(func.value, ast.Name)
                and func.value.id == "fastpath"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                return node.args[0].value
        if isinstance(node, ast.Subscript):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "flags"
                and isinstance(value.value, ast.Name)
                and value.value.id == "fastpath"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                return node.slice.value
    return None


def _only_call(node: ast.AST) -> Optional[ast.Call]:
    """The expression's sole top-level call, unwrapping trivial casts."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in (
            "int", "float", "bytes", "list", "tuple"
        ) and len(node.args) == 1:
            return _only_call(node.args[0])
        return node
    return None


def _find_fastpath_gates(
    fn: ast.AST,
) -> Iterator[Tuple[str, ast.Call, ast.Call]]:
    """Yield (flag, fast call, scalar call) for recognized gate shapes."""
    for node in ast.walk(fn):
        # Shape 1: `if <gate>: return fast(...)` ... `return scalar(...)`
        # where the next return after the If (same block) is the scalar.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bodies = [node.body]
        elif isinstance(node, (ast.If, ast.For, ast.While, ast.With)):
            bodies = [getattr(node, "body", []), getattr(node, "orelse", [])]
        else:
            bodies = []
        for body in bodies:
            for index, stmt in enumerate(body):
                if not isinstance(stmt, ast.If):
                    continue
                flag = _gate_flag(stmt.test)
                if flag is None:
                    continue
                fast_ret = (
                    stmt.body[0]
                    if len(stmt.body) == 1
                    and isinstance(stmt.body[0], ast.Return)
                    else None
                )
                if fast_ret is None or fast_ret.value is None:
                    continue
                fast_call = _only_call(fast_ret.value)
                if fast_call is None:
                    continue
                slow_call = None
                if stmt.orelse and isinstance(stmt.orelse[0], ast.Return):
                    slow_stmt = stmt.orelse[0]
                    if slow_stmt.value is not None:
                        slow_call = _only_call(slow_stmt.value)
                elif index + 1 < len(body) and isinstance(
                    body[index + 1], ast.Return
                ):
                    nxt = body[index + 1]
                    if nxt.value is not None:
                        slow_call = _only_call(nxt.value)
                if slow_call is not None:
                    yield flag, fast_call, slow_call
        # Shape 2: ternary `fast(...) if <gate> else scalar(...)`.
        if isinstance(node, ast.IfExp):
            flag = _gate_flag(node.test)
            if flag is None:
                continue
            fast_call = _only_call(node.body)
            slow_call = _only_call(node.orelse)
            if fast_call is not None and slow_call is not None:
                yield flag, fast_call, slow_call


def _sole_callee(resolver, call: ast.Call):
    """Resolve a gate branch call to exactly one known function."""
    callees, via_fallback = resolver.resolve(call)
    if via_fallback or len(callees) != 1:
        return None
    return callees[0]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def default_rules() -> List[Rule]:
    """Fresh rule instances (FP001 keeps per-run state)."""
    return [
        Det001WallClock(),
        Det002UnorderedIteration(),
        Sec001DecodeGuard(),
        Sec002AssertValidation(),
        Sec003BroadExcept(),
        Fp001FastpathRegistry(),
        Fp002ShardBoundary(),
        Obs001TelemetryKeys(),
        Rel001OverloadTelemetry(),
        Taint001UnboundedWireInteger(),
        Taint002WireDataSink(),
        Api001FastpathPairContract(),
    ]


def rule_by_id(rule_id: str) -> Optional[Rule]:
    for rule in default_rules():
        if rule.id == rule_id.upper():
            return rule
    return None
