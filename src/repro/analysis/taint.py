"""Forward wire-taint propagation over the project call graph.

TCPLS's security argument rests on every byte that crosses the wire
being validated before it can influence memory, control flow or
protocol state.  ``decode_guard`` (PR 4) makes the *parse* fail closed
and SEC001 checks decoders sit under it — but both are per-module: a
length field decoded safely in ``tls/messages.py`` can still flow
unguarded through three helper calls into a buffer allocation in
``core/``.  This engine follows those flows.

**Sources.**  The return value (and the byte parameters) of every
``decode_guard``-wrapped parser, every module-local guard-decorated
parser (the ``@_armored`` form), parser-named entry points in the wire
scope, and everything produced by the fuzz corpus/mutator modules.
Reads off a tainted :class:`ByteReader` stay tainted — except the
one-byte reads (``get_u8``/``peek_u8``), which are *bounded* (≤255)
and therefore exempt from the integer sinks.

**Propagation.**  Forward, flow-insensitive within a function (with
source-order check tracking), interprocedural via a worklist fixpoint:
assignments, tuple unpacking, container packing, arithmetic, calls and
returns, attribute stores on ``self`` (protocol-object state), and
tainted arguments flowing into resolved callee parameters.

**Sanitizers.**  A value stops being dangerous at a *dominating bounds
check*: any earlier ``if``/``while``/``assert`` test mentioning the
name in the same function, a ``min(...)`` wrap, or a width-reducing
``x % cap`` / ``x & mask``.  ``max(...)`` is **not** a sanitizer — a
floor does not bound an attacker-supplied value.

**Sinks** (reported through the TAINT001/TAINT002 rules):

========  ==================================================================
alloc     ``bytes(n)`` / ``bytearray(n)`` with a tainted size
mult      sequence repetition ``literal * n`` with a tainted factor
range     ``range(n)`` bound by a tainted value
slice     tainted slice bound into an *untainted* buffer
timer     tainted delay into a scheduling call (resolved parameter named
          ``delay``/``timeout``/``seconds``/... or a ``schedule*`` callee)
store     tainted value stored into a resource-governing attribute
          (``*cwnd``/``*ssthresh``/``*window``/``*limit``/``*budget``/
          ``*credit``/``*offset``/``*timeout``)
exec      tainted data into ``exec``/``eval``/``compile``
pickle    tainted bytes into ``pickle``/``marshal`` loads
seed      tainted value seeding a ``Random``
telemetry tainted value formatted into a telemetry key
========  ==================================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    SymbolTable,
    module_dotted_name,
)
from repro.analysis.engine import Module

# -- taint kinds ------------------------------------------------------------

INT = "int"    # an unbounded wire integer (u16/u24/u32/u64, unpacked field)
DATA = "data"  # wire bytes / decoded containers
OBJ = "obj"    # a decoded object of unknown shape (parser return values)

#: Sinks that fire for unbounded integers (TAINT001).
INT_SINKS = frozenset(("alloc", "mult", "range", "slice", "timer", "store"))
#: Sinks that fire for wire data reaching interpreters/state (TAINT002).
DATA_SINKS = frozenset(("exec", "pickle", "seed", "telemetry"))

_INT_LIKE = frozenset((INT, OBJ))

#: ByteReader-style methods whose result is bounded by construction.
_BOUNDED_METHODS = frozenset(
    ("get_u8", "peek_u8", "remaining", "is_empty", "offset", "tell")
)

#: Builtins that keep their argument's taint (width-preserving).
_PASSTHROUGH_BUILTINS = frozenset(
    ("int", "float", "abs", "round", "max", "sorted", "list", "tuple",
     "reversed", "sum", "bytes", "bytearray", "memoryview")
)

#: Builtins whose result is bounded/clean regardless of arguments.
_CLEAN_BUILTINS = frozenset(("len", "bool", "isinstance", "id", "ord", "hash"))

_TIMER_PARAM_RE = re.compile(
    r"^(delay|timeout|seconds|interval|duration|deadline|when|at)$"
)
_TIMER_CALLEE_RE = re.compile(
    r"^(schedule|schedule_at|call_later|call_at|set_user_timeout)$"
)
_RESOURCE_ATTR_RE = re.compile(
    r"(^|_)(cwnd|ssthresh|window|limit|budget|credit|quota|offset|timeout)$"
)
_PARSER_NAME_RE = re.compile(r"^(decode|parse)($|_)")
_INTISH_NAME_RE = re.compile(
    r"(^|_)(len|length|size|count|num|total|limit|offset|n)$"
)


def _int_flavored(node: ast.AST) -> bool:
    """Does this expression read as an integer quantity?"""
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.LShift)
    ):
        return True
    name = (
        node.id if isinstance(node, ast.Name)
        else node.attr if isinstance(node, ast.Attribute) else None
    )
    return name is not None and bool(_INTISH_NAME_RE.search(name))
_PARSER_EXACT = frozenset(("from_bytes", "from_body"))
_WIRE_SCOPE_RE = re.compile(r"(^|/)(tcp|tls|core|quic)(/|$)")

#: Module dotted-name patterns whose functions produce attacker-shaped
#: data by construction (fuzz corpus seeds + mutators).
_SOURCE_MODULE_RES = (re.compile(r"\.fuzz\.(corpus|mutate)$"),)


@dataclass(frozen=True)
class Taint:
    """One tainted value: its width kind and human-readable origin."""

    kind: str
    origin: str

    def widened(self, kind: str) -> "Taint":
        return Taint(kind=kind, origin=self.origin)


@dataclass(frozen=True)
class Source:
    """A taint source: where it is and whether its parameters count.

    Decode-guard parsers receive raw wire bytes, so their parameters
    are tainted.  Fuzz corpus/mutator functions *produce* attacker
    bytes (their returns) but their own parameters (``rng`` handles,
    seed material) are trusted.
    """

    origin: str
    taint_params: bool = True


@dataclass
class SinkHit:
    """A tainted value reaching a sink without a dominating check."""

    sink: str
    module: Module
    line: int
    col: int
    detail: str
    origin: str

    @property
    def rule_family(self) -> str:
        return "TAINT001" if self.sink in INT_SINKS else "TAINT002"


@dataclass
class FnResult:
    """Per-function facts from one intraprocedural pass."""

    returns: Optional[Taint] = None
    #: (callee qualname, param name, taint) for tainted arguments.
    param_flows: List[Tuple[str, str, Taint]] = field(default_factory=list)
    #: (class qualname, attr, taint) for tainted self-attribute stores.
    attr_stores: List[Tuple[str, str, Taint]] = field(default_factory=list)
    sinks: List[SinkHit] = field(default_factory=list)


class TaintEnv:
    """The interprocedural fixpoint state."""

    def __init__(self) -> None:
        self.param_taint: Dict[str, Dict[str, Taint]] = {}
        self.attr_taint: Dict[Tuple[str, str], Taint] = {}
        self.return_taint: Dict[str, Taint] = {}

    def merge_result(self, qualname: str, result: FnResult) -> Set[str]:
        """Fold one function's facts in; returns affected qualnames."""
        affected: Set[str] = set()
        if result.returns is not None and qualname not in self.return_taint:
            self.return_taint[qualname] = result.returns
            affected.add(qualname)
        for callee, param, taint in result.param_flows:
            per_fn = self.param_taint.setdefault(callee, {})
            if param not in per_fn:
                per_fn[param] = taint
                affected.add(callee)
        for class_qual, attr, taint in result.attr_stores:
            key = (class_qual, attr)
            if key not in self.attr_taint:
                self.attr_taint[key] = taint
                affected.add(class_qual)
        return affected


@dataclass
class TaintResult:
    """The completed whole-program analysis."""

    table: SymbolTable
    graph: CallGraph
    env: TaintEnv
    sources: Dict[str, Source]
    sinks: List[SinkHit]
    iterations: int

    def tainted_modules(self) -> Set[str]:
        """Dotted names of modules participating in any taint flow."""
        involved: Set[str] = set(
            qualname.rsplit(".", 1)[0].rsplit(".", 1)[0]
            if self.table.functions.get(qualname)
            and self.table.functions[qualname].is_method
            else qualname.rsplit(".", 1)[0]
            for qualname in list(self.sources) + list(self.env.param_taint)
        )
        return {name for name in sorted(involved) if name in self.table.modules}


def _contains_decode_guard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.With):
            for item in sub.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    func = expr.func
                    name = (
                        func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else None
                    )
                    if name == "decode_guard":
                        return True
    return False


def find_sources(table: SymbolTable) -> Dict[str, Source]:
    """qualname -> :class:`Source` for every taint source in the program."""
    sources: Dict[str, Source] = {}
    guard_providers_by_module: Dict[str, Set[str]] = {}
    for qualname, info in table.functions.items():
        if _contains_decode_guard(info.node):
            guard_providers_by_module.setdefault(
                module_dotted_name(info.module.relpath), set()
            ).add(info.name)
    for qualname, info in table.functions.items():
        mod_name = module_dotted_name(info.module.relpath)
        where = f"{info.module.relpath}:{info.node.lineno}"  # type: ignore[attr-defined]
        origin = f"{info.name}() [{where}]"
        if _contains_decode_guard(info.node):
            sources[qualname] = Source(origin)
            continue
        decorators = getattr(info.node, "decorator_list", [])
        providers = guard_providers_by_module.get(mod_name, set())
        for decorator in decorators:
            name = (
                decorator.id if isinstance(decorator, ast.Name)
                else decorator.attr if isinstance(decorator, ast.Attribute)
                else None
            )
            if name in providers:
                sources[qualname] = Source(origin)
                break
        if qualname in sources:
            continue
        parent = (
            info.module.relpath.rsplit("/", 1)[0]
            if "/" in info.module.relpath else ""
        )
        if _WIRE_SCOPE_RE.search(parent + "/") and (
            _PARSER_NAME_RE.match(info.name.lstrip("_"))
            or info.name in _PARSER_EXACT
        ):
            sources[qualname] = Source(origin)
            continue
        if any(r.search(mod_name) for r in _SOURCE_MODULE_RES):
            sources[qualname] = Source(origin, taint_params=False)
    return sources


class FunctionTaint:
    """One intraprocedural pass over a single function."""

    def __init__(
        self,
        info: FunctionInfo,
        sites: Sequence[CallSite],
        table: SymbolTable,
        env: TaintEnv,
        sources: Dict[str, Source],
        collect_sinks: bool,
    ) -> None:
        self.info = info
        self.table = table
        self.env = env
        self.sources = sources
        self.collect_sinks = collect_sinks
        self.result = FnResult()
        self.locals: Dict[str, Taint] = {}
        #: name -> lines where the name appears inside a test expression.
        self.check_lines: Dict[str, List[int]] = {}
        self._site_by_call: Dict[int, CallSite] = {
            id(site.node): site for site in sites
        }
        self._is_source = info.qualname in sources
        self._seed_params()
        self._collect_checks()

    # -- environment seeding ------------------------------------------------

    def _seed_params(self) -> None:
        per_fn = self.env.param_taint.get(self.info.qualname, {})
        for param, taint in per_fn.items():
            self.locals[param] = taint
        if self._is_source and self.sources[self.info.qualname].taint_params:
            origin = self.sources[self.info.qualname].origin
            for param in self.info.positional_params():
                self.locals.setdefault(param, Taint(DATA, origin))

    def _collect_checks(self) -> None:
        for node in ast.walk(self.info.node):
            test = None
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                test = node.test
            elif isinstance(node, ast.Assert):
                test = node.test
            if test is None:
                continue
            for sub in ast.walk(test):
                name = self._trackable_name(sub)
                if name is not None:
                    self.check_lines.setdefault(name, []).append(sub.lineno)

    @staticmethod
    def _trackable_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def _checked_before(self, name: Optional[str], line: int) -> bool:
        if name is None:
            return False
        return any(check <= line for check in self.check_lines.get(name, []))

    # -- main entry ---------------------------------------------------------

    def run(self) -> FnResult:
        body = getattr(self.info.node, "body", [])
        # Two local passes: the second catches taint that flows backward
        # through a loop body (defined late, used early).
        for _ in range(2):
            for stmt in body:
                self._visit(stmt)
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Call):
                self._flow_args(node)
        if self.collect_sinks:
            self._check_sinks()
        return self.result

    # -- statement walk (taint state) ---------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes are separate functions / opaque
        if isinstance(node, ast.Assign):
            taint = self.taint_of(node.value)
            for target in node.targets:
                self._assign(target, node.value, taint)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._assign(node.target, node.value, self.taint_of(node.value))
        elif isinstance(node, ast.AugAssign):
            taint = self.taint_of(node.value)
            name = self._trackable_name(node.target)
            if taint is not None and isinstance(node.target, ast.Name):
                self.locals[node.target.id] = taint
            elif taint is not None and name is not None:
                self._store_attr(node.target, taint)
        elif isinstance(node, ast.NamedExpr):
            taint = self.taint_of(node.value)
            if isinstance(node.target, ast.Name):
                if taint is not None:
                    self.locals[node.target.id] = taint
                else:
                    self.locals.pop(node.target.id, None)
        elif isinstance(node, ast.For):
            taint = self.taint_of(node.iter)
            if taint is not None:
                self._bind_target(node.target, taint)
        elif isinstance(node, ast.Return) and node.value is not None:
            taint = self.taint_of(node.value)
            if taint is not None and self.result.returns is None:
                self.result.returns = taint
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                taint = self.taint_of(gen.iter)
                if taint is not None:
                    self._bind_target(gen.target, taint)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _assign(
        self, target: ast.AST, value: ast.AST, taint: Optional[Taint]
    ) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                self.locals[target.id] = taint
            else:
                self.locals.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t_elt, v_elt in zip(target.elts, value.elts):
                    self._assign(t_elt, v_elt, self.taint_of(v_elt))
            else:
                for t_elt in target.elts:
                    self._bind_target(t_elt, taint) if taint is not None else (
                        self._clear_target(t_elt)
                    )
        elif isinstance(target, ast.Attribute) and taint is not None:
            self._store_attr(target, taint)

    def _bind_target(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.locals[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint)
        elif isinstance(target, ast.Attribute):
            self._store_attr(target, taint)

    def _clear_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.locals.pop(target.id, None)

    def _store_attr(self, target: ast.Attribute, taint: Taint) -> None:
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.info.class_name is not None
        ):
            self.result.attr_stores.append(
                (self.info.class_name, target.attr, taint)
            )

    # -- expression taint ---------------------------------------------------

    def taint_of(self, node: ast.AST) -> Optional[Taint]:
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.info.class_name is not None
            ):
                return self.env.attr_taint.get(
                    (self.info.class_name, node.attr)
                )
            base = self.taint_of(node.value)
            if base is not None and base.kind == OBJ:
                # Fields of a decoded/attacker-built object are
                # attacker-controlled too (e.g. ``option.timeout``,
                # ``vm.memory``).  Reads off plain DATA stay clean.
                return base.widened(OBJ)
            return None
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.BinOp):
            left, right = self.taint_of(node.left), self.taint_of(node.right)
            if isinstance(node.op, (ast.Mod, ast.BitAnd)) and right is None:
                return None  # width-reducing: x % cap, x & mask
            return left or right
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, (ast.BoolOp, ast.Compare)):
            return None
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                taint = self.taint_of(elt)
                if taint is not None:
                    return taint.widened(DATA)
            return None
        if isinstance(node, ast.Dict):
            for value in list(node.keys) + list(node.values):
                if value is not None:
                    taint = self.taint_of(value)
                    if taint is not None:
                        return taint.widened(DATA)
            return None
        if isinstance(node, ast.Subscript):
            base = self.taint_of(node.value)
            if base is None:
                return None
            if isinstance(node.slice, ast.Slice):
                return base  # a slice of bytes is bytes, of an obj an obj
            if base.kind == DATA:
                return None  # one byte out of a bytes value is bounded
            return base.widened(OBJ)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taint = self.taint_of(value.value)
                    if taint is not None:
                        return taint.widened(DATA)
            return None
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        return None

    def _call_taint(self, node: ast.Call) -> Optional[Taint]:
        func = node.func
        # Builtins first: sanitizers, passthroughs, clean folds.
        if isinstance(func, ast.Name):
            if func.id == "min":
                return None  # a min() wrap is the canonical guard-cap
            if func.id in _CLEAN_BUILTINS:
                return None
            if func.id in _PASSTHROUGH_BUILTINS:
                for arg in node.args:
                    taint = self.taint_of(arg)
                    if taint is not None:
                        return taint
                return None
        # struct.unpack / int.from_bytes on tainted data yield wide ints.
        if isinstance(func, ast.Attribute) and func.attr in (
            "unpack", "unpack_from", "from_bytes"
        ):
            for arg in node.args:
                taint = self.taint_of(arg)
                if taint is not None:
                    return taint.widened(INT)
        site = self._site_by_call.get(id(node))
        if site is not None:
            for callee in site.callees:
                if callee in self.sources:
                    return Taint(OBJ, self.sources[callee].origin)
                returned = self.env.return_taint.get(callee)
                if returned is not None:
                    return returned
                if callee.endswith(".__init__"):
                    # Constructing an object from tainted material
                    # taints the object (``Vm(program)``).
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        taint = self.taint_of(arg)
                        if taint is not None:
                            return taint.widened(OBJ)
        # Method calls on tainted receivers: reads off a tainted reader
        # or decoded object stay tainted (except the bounded one-byte
        # reads and size probes).
        if isinstance(func, ast.Attribute):
            receiver = self.taint_of(func.value)
            if receiver is not None:
                if func.attr in _BOUNDED_METHODS:
                    return None
                if func.attr.startswith("get_u"):
                    return receiver.widened(INT)
                return receiver.widened(OBJ)
        return None

    # -- interprocedural facts + sinks --------------------------------------

    def _check_sinks(self) -> None:
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Call):
                self._sink_call(node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                self._sink_mult(node)
            elif isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Slice
            ):
                self._sink_slice(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._sink_store(node)

    def _flow_args(self, node: ast.Call) -> None:
        site = self._site_by_call.get(id(node))
        if site is None:
            return
        for callee_qual in site.callees:
            callee = self.table.functions.get(callee_qual)
            if callee is None:
                continue
            params = callee.positional_params()
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred) or index >= len(params):
                    break
                taint = self.taint_of(arg)
                if taint is None:
                    continue
                name = self._trackable_name(arg)
                if self._checked_before(name, arg.lineno):
                    continue
                flowed = Taint(
                    taint.kind,
                    f"{taint.origin} via "
                    f"{self.info.module.relpath}:{arg.lineno}",
                )
                self.result.param_flows.append(
                    (callee_qual, params[index], flowed)
                )
            for keyword in node.keywords:
                if keyword.arg is None or keyword.arg not in params:
                    continue
                taint = self.taint_of(keyword.value)
                if taint is None:
                    continue
                name = self._trackable_name(keyword.value)
                if self._checked_before(name, keyword.value.lineno):
                    continue
                flowed = Taint(
                    taint.kind,
                    f"{taint.origin} via "
                    f"{self.info.module.relpath}:{keyword.value.lineno}",
                )
                self.result.param_flows.append(
                    (callee_qual, keyword.arg, flowed)
                )

    def _hit(
        self, sink: str, node: ast.AST, detail: str, taint: Taint
    ) -> None:
        self.result.sinks.append(
            SinkHit(
                sink=sink,
                module=self.info.module,
                line=node.lineno,
                col=node.col_offset,
                detail=detail,
                origin=taint.origin,
            )
        )

    def _unchecked_taint(
        self, node: ast.AST, kinds: frozenset
    ) -> Optional[Taint]:
        taint = self.taint_of(node)
        if taint is None or taint.kind not in kinds:
            return None
        if self._checked_before(self._trackable_name(node), node.lineno):
            return None
        return taint

    def _sink_call(self, node: ast.Call) -> None:
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name is None:
            return
        fn_name = f"{self.info.name}()"
        # alloc: bytes(n)/bytearray(n) with a tainted size argument.
        # bytes(obj) also *copies* data, so an OBJ-kind argument only
        # counts when it reads as an integer (arithmetic or a
        # size-flavored name) — a copy is not an attacker-sized zero
        # allocation.
        if name in ("bytes", "bytearray") and isinstance(func, ast.Name):
            if len(node.args) == 1:
                arg = node.args[0]
                taint = self._unchecked_taint(arg, _INT_LIKE)
                if taint is not None and (
                    taint.kind == INT or _int_flavored(arg)
                ):
                    self._hit(
                        "alloc", node,
                        f"wire-derived size into {name}() in {fn_name}",
                        taint,
                    )
        # range: tainted bound.
        if name == "range" and isinstance(func, ast.Name):
            for arg in node.args:
                taint = self._unchecked_taint(arg, frozenset((INT,)))
                if taint is not None:
                    self._hit(
                        "range", node,
                        f"wire-derived range() bound in {fn_name}", taint,
                    )
                    break
        # exec family.
        if name in ("exec", "eval", "compile") and node.args:
            taint = self._unchecked_taint(
                node.args[0], frozenset((DATA, OBJ, INT))
            )
            if taint is not None:
                self._hit(
                    "exec", node,
                    f"wire-derived input into {name}() in {fn_name}", taint,
                )
        # pickle/marshal loads.
        if name in ("loads", "load") and isinstance(func, ast.Attribute):
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name in ("pickle", "marshal") and node.args:
                taint = self._unchecked_taint(
                    node.args[0], frozenset((DATA, OBJ))
                )
                if taint is not None:
                    self._hit(
                        "pickle", node,
                        f"wire-derived bytes into {base_name}.{name}() "
                        f"in {fn_name}",
                        taint,
                    )
        # RNG seeding.
        if name in ("seed", "Random") and node.args:
            taint = self._unchecked_taint(
                node.args[0], frozenset((DATA, OBJ, INT))
            )
            if taint is not None:
                self._hit(
                    "seed", node,
                    f"wire-derived value seeding {name}() in {fn_name}",
                    taint,
                )
        # Telemetry keys.
        if name in ("counter", "gauge", "histogram") and isinstance(
            func, ast.Attribute
        ) and node.args:
            taint = self.taint_of(node.args[0])
            if taint is not None:
                self._hit(
                    "telemetry", node,
                    f"wire-derived value in a telemetry key in {fn_name}",
                    taint,
                )
        # Timer delays: by callee name, or by resolved parameter name.
        if _TIMER_CALLEE_RE.match(name):
            for arg in node.args:
                taint = self._unchecked_taint(arg, _INT_LIKE)
                if taint is not None:
                    self._hit(
                        "timer", node,
                        f"wire-derived delay into {name}() in {fn_name}",
                        taint,
                    )
                    break
        else:
            site = self._site_by_call.get(id(node))
            if site is not None:
                self._sink_timer_params(node, site, fn_name)

    def _sink_timer_params(
        self, node: ast.Call, site: CallSite, fn_name: str
    ) -> None:
        for callee_qual in site.callees:
            callee = self.table.functions.get(callee_qual)
            if callee is None:
                continue
            params = callee.positional_params()
            for index, arg in enumerate(node.args):
                if index >= len(params):
                    break
                if not _TIMER_PARAM_RE.match(params[index]):
                    continue
                taint = self._unchecked_taint(arg, _INT_LIKE)
                if taint is not None:
                    self._hit(
                        "timer", node,
                        f"wire-derived value into parameter "
                        f"{params[index]!r} of {callee.name}() in {fn_name}",
                        taint,
                    )
                    return
            for keyword in node.keywords:
                if keyword.arg is None or not _TIMER_PARAM_RE.match(
                    keyword.arg
                ):
                    continue
                taint = self._unchecked_taint(keyword.value, _INT_LIKE)
                if taint is not None:
                    self._hit(
                        "timer", node,
                        f"wire-derived value into parameter "
                        f"{keyword.arg!r} of {callee.name}() in {fn_name}",
                        taint,
                    )
                    return

    def _sink_mult(self, node: ast.BinOp) -> None:
        pairs = ((node.left, node.right), (node.right, node.left))
        for seq, factor in pairs:
            if not self._is_sequence_literal(seq):
                continue
            taint = self._unchecked_taint(factor, _INT_LIKE)
            if taint is not None:
                self._hit(
                    "mult", node,
                    f"wire-derived repetition factor in {self.info.name}()",
                    taint,
                )
                return

    @staticmethod
    def _is_sequence_literal(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (bytes, str))
        ) or isinstance(node, (ast.List, ast.Tuple))

    def _sink_slice(self, node: ast.Subscript) -> None:
        if self.taint_of(node.value) is not None:
            return  # slicing tainted data by tainted bounds is the
            # normal (clamped, memory-safe) parser pattern
        assert isinstance(node.slice, ast.Slice)
        for bound in (node.slice.lower, node.slice.upper, node.slice.step):
            if bound is None:
                continue
            taint = self._unchecked_taint(bound, frozenset((INT,)))
            if taint is not None:
                self._hit(
                    "slice", node,
                    f"wire-derived slice bound into an unrelated buffer "
                    f"in {self.info.name}()",
                    taint,
                )
                return

    def _sink_store(self, node: ast.AST) -> None:
        targets: Iterable[ast.AST]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = (node.target,), node.value
        else:
            return
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if not _RESOURCE_ATTR_RE.search(target.attr):
                continue
            taint = self._unchecked_taint(value, _INT_LIKE)
            if taint is None:
                continue
            self._hit(
                "store", node,
                f"wire-derived value stored into resource attribute "
                f"{target.attr!r} in {self.info.name}() without a cap",
                taint,
            )
            return


# ---------------------------------------------------------------------------
# Whole-program driver
# ---------------------------------------------------------------------------

_MAX_ITERATIONS = 24


def analyze(
    table: SymbolTable, graph: CallGraph
) -> TaintResult:
    """Run the interprocedural fixpoint and collect sink hits."""
    env = TaintEnv()
    sources = find_sources(table)

    def run_pass(qualname: str, collect: bool) -> FnResult:
        info = table.functions[qualname]
        return FunctionTaint(
            info, graph.sites.get(qualname, ()), table, env, sources, collect
        ).run()

    #: class qualname -> its methods (for attr-taint dirtying).
    methods_of: Dict[str, List[str]] = {}
    for qualname, info in table.functions.items():
        if info.class_name is not None:
            methods_of.setdefault(info.class_name, []).append(qualname)

    dirty: Set[str] = set(table.functions)
    iterations = 0
    while dirty and iterations < _MAX_ITERATIONS:
        iterations += 1
        current, dirty = dirty, set()
        affected_total: Set[str] = set()
        for qualname in sorted(current):
            result = run_pass(qualname, collect=False)
            affected_total |= env.merge_result(qualname, result)
        for affected in sorted(affected_total):
            if affected in table.functions:
                # New return taint: re-run every caller.
                dirty |= graph.callers_of.get(affected, set())
                # New param taint: re-run the function itself.
                dirty.add(affected)
            elif affected in methods_of:
                dirty.update(methods_of[affected])
    sinks: List[SinkHit] = []
    for qualname in sorted(table.functions):
        sinks.extend(run_pass(qualname, collect=True).sinks)
    sinks.sort(key=lambda hit: (hit.module.relpath, hit.line, hit.col))
    return TaintResult(
        table=table,
        graph=graph,
        env=env,
        sources=sources,
        sinks=sinks,
        iterations=iterations,
    )


# -- memoized program-level entry (shared by the TAINT/API rules) -----------

_cache_key: Optional[Tuple[Tuple[str, int, int], ...]] = None
_cache_value: Optional[Tuple[SymbolTable, CallGraph, TaintResult]] = None


def analyze_program(
    modules: Sequence[Module],
) -> Tuple[SymbolTable, CallGraph, TaintResult]:
    """Build (symbol table, call graph, taint result), memoized per run.

    Several rules share the whole-program pass; the memo keys on every
    module's path/size/content hash so fixture runs and the real tree
    never cross-contaminate.
    """
    global _cache_key, _cache_value
    key = tuple(
        (m.relpath, len(m.source), hash(m.source)) for m in modules
    )
    if key == _cache_key and _cache_value is not None:
        return _cache_value
    table = SymbolTable.build(modules)
    graph = CallGraph.build(table)
    result = analyze(table, graph)
    _cache_key, _cache_value = key, (table, graph, result)
    return _cache_value
