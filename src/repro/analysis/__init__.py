"""``repro.analysis`` — repo-aware static lints and runtime sanitizers.

Usage::

    python -m repro.analysis                 # lint src/ (exit 1 on findings)
    python -m repro.analysis --json          # machine-readable report
    python -m repro.analysis --explain DET001
    python -m repro.analysis --sanitize smoke  # determinism double-run
    python -m repro.analysis.ratchet         # mypy error-budget ratchet

See DESIGN.md section 4f for the rule catalogue and rationale.
"""

from repro.analysis.engine import Finding, Module, Report, Rule, run
from repro.analysis.rules import default_rules, rule_by_id
from repro.analysis.sanitizers import (
    DeterminismProbe,
    DeterminismReport,
    EventOrderRecorder,
    PcapDigest,
    RunDigest,
    builtin_smoke_scenario,
    check_determinism,
    reset_process_globals,
)

__all__ = [
    "DeterminismProbe",
    "DeterminismReport",
    "EventOrderRecorder",
    "Finding",
    "Module",
    "PcapDigest",
    "Report",
    "Rule",
    "RunDigest",
    "builtin_smoke_scenario",
    "check_determinism",
    "default_rules",
    "reset_process_globals",
    "rule_by_id",
    "run",
]
