"""Runtime determinism and reentrancy sanitizers.

Static rules (see :mod:`repro.analysis.rules`) catch nondeterminism you
can see in the source; this module catches the kind you can only see by
*running*.  The determinism sanitizer executes a scenario twice under
reset process state and compares:

- the **event-order hash** — a SHA-256 over the exact ``(time, seq)``
  execution order the :class:`~repro.netsim.engine.Simulator` produced
  (via ``attach_event_hook``), and
- the **pcap digest** — a SHA-256 over the full on-the-wire bytes of
  every datagram crossing tapped links (via an in-memory transformer
  around :func:`repro.netsim.pcap.serialize_ip`), plus
- the final simulated clock and the processed-event count.

Any wall-clock read, unseeded RNG draw, or ``id()``-ordered set
iteration that leaks into scheduling or wire output flips one of those
digests between the two runs.  The optional **schedule shake** mode
additionally replaces heap tie-break sequence numbers with a seeded
bijection — both runs still share the same shaken order, so hidden
cross-run nondeterminism keeps failing the comparison while legitimate
tie-order dependence does not; comparing digests across *different*
shake seeds flushes out code whose externally visible behaviour depends
on the arbitrary tie order itself.

The reentrancy sanitizer is always on: ``Simulator.run`` raises
:class:`~repro.utils.errors.ReentrancyError` when an event handler
re-enters the loop (see PR 1's event-loss bug class).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.netsim.pcap import serialize_ip


class EventOrderRecorder:
    """Hashes the (time, seq) execution order of every event."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events = 0

    def __call__(self, time: float, seq: int) -> None:
        self._hash.update(struct.pack("<dQ", time, seq & 0xFFFFFFFFFFFFFFFF))
        self.events += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class PcapDigest:
    """A link transformer hashing wire bytes instead of writing a file.

    Pass-through like :class:`repro.netsim.pcap.PcapWriter`, but the
    pcap "file" is reduced to a running SHA-256 over (timestamp, full
    IP-layer bytes) pairs, so two runs can be compared without touching
    the filesystem.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.packets = 0
        self._hash = hashlib.sha256()

    def __call__(self, datagram):
        wire = serialize_ip(datagram)
        self._hash.update(struct.pack("<dI", self.sim.now, len(wire)))
        self._hash.update(wire)
        self.packets += 1
        return datagram

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


@dataclass(frozen=True)
class RunDigest:
    """Everything one scenario run is reduced to for comparison."""

    event_hash: str
    pcap_hash: str
    clock: float
    events: int
    packets: int

    def summary(self) -> str:
        return (
            f"events={self.events} clock={self.clock:.9f} "
            f"order={self.event_hash[:16]} pcap={self.pcap_hash[:16]}"
        )


class DeterminismProbe:
    """The handle a scenario uses to expose its run to the sanitizer.

    A scenario callable receives a probe and must:

    1. call :meth:`watch` on its simulator right after creating it
       (before anything is scheduled, so schedule shake can engage);
    2. optionally call :meth:`tap` on the links whose wire bytes should
       be part of the digest.
    """

    def __init__(self, shake_seed: Optional[int] = None) -> None:
        self.shake_seed = shake_seed
        self._recorder = EventOrderRecorder()
        self._taps: List[PcapDigest] = []
        self._sim = None

    def watch(self, sim) -> None:
        if self._sim is not None:
            raise ValueError("probe already watches a simulator")
        self._sim = sim
        sim.attach_event_hook(self._recorder)
        if self.shake_seed is not None:
            sim.enable_schedule_shake(self.shake_seed)

    def tap(self, link, from_interface) -> PcapDigest:
        tap = PcapDigest(link.sim)
        link.add_transformer(from_interface, tap)
        self._taps.append(tap)
        return tap

    def digest(self) -> RunDigest:
        if self._sim is None:
            raise ValueError("scenario never called probe.watch(sim)")
        pcap = hashlib.sha256()
        packets = 0
        for tap in self._taps:
            pcap.update(tap.hexdigest().encode("ascii"))
            packets += tap.packets
        return RunDigest(
            event_hash=self._recorder.hexdigest(),
            pcap_hash=pcap.hexdigest(),
            clock=self._sim.now,
            events=self._recorder.events,
            packets=packets,
        )


@dataclass
class DeterminismReport:
    """Outcome of a multi-run comparison."""

    runs: List[RunDigest] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    shake_seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        lines = []
        for index, run in enumerate(self.runs):
            lines.append(f"run {index}: {run.summary()}")
        if self.ok:
            lines.append(
                f"deterministic: {len(self.runs)} run(s) identical"
                + (f" (shake seed {self.shake_seed})"
                   if self.shake_seed is not None else "")
            )
        else:
            lines.extend(self.mismatches)
        return "\n".join(lines)


def reset_process_globals() -> None:
    """Rewind process-wide counters so consecutive runs are comparable.

    The packet-id and session counters are process-global monotonic
    counters (harmless for determinism across processes, but a second
    in-process run would see different ids and legitimately produce
    different wire bytes).  The fuzz/attack-pcap identity tests rewind
    the same two counters.
    """
    from repro.core import session as session_module
    from repro.netsim import packet as packet_module

    packet_module._next_packet_id = 0
    session_module._session_counter[0] = 0


def check_determinism(
    scenario: Callable[[DeterminismProbe], None],
    runs: int = 2,
    shake_seed: Optional[int] = None,
) -> DeterminismReport:
    """Run ``scenario`` ``runs`` times and diff the digests.

    ``scenario`` is a callable taking a :class:`DeterminismProbe`; it
    must build its whole world from explicit seeds (that is the claim
    under test).  With ``shake_seed`` set, every run uses the same
    shaken tie-break order — a mismatch then proves nondeterminism that
    survives even reordered equal-time ties.
    """
    if runs < 2:
        raise ValueError("need at least two runs to compare")
    report = DeterminismReport(shake_seed=shake_seed)
    for _ in range(runs):
        reset_process_globals()
        probe = DeterminismProbe(shake_seed=shake_seed)
        scenario(probe)
        report.runs.append(probe.digest())
    reference = report.runs[0]
    for index, run in enumerate(report.runs[1:], start=1):
        for attr in ("event_hash", "pcap_hash", "clock", "events", "packets"):
            a, b = getattr(reference, attr), getattr(run, attr)
            if a != b:
                report.mismatches.append(
                    f"run 0 vs run {index}: {attr} diverged ({a} != {b})"
                )
    return report


def builtin_smoke_scenario(probe: DeterminismProbe) -> None:
    """A self-contained TCPLS transfer used by the CI smoke run.

    One client, one server, one duplex IPv4 link; full handshake, a
    two-stream data exchange, clean close.  Everything is seeded, so a
    double run must produce identical event-order and pcap digests —
    that is exactly the invariant PR 1's identity tests and PR 4's fuzz
    replay rely on.
    """
    from repro.core.session import TcplsContext, TcplsServer, TcplsSession
    from repro.netsim.scenarios import simple_duplex_network
    from repro.tcp.stack import TcpStack
    from repro.tls.certificates import CertificateAuthority, TrustStore
    from repro.tls.session import SessionTicketStore

    net, client_host, server_host, link = simple_duplex_network(delay=0.005)
    probe.watch(net.sim)
    probe.tap(link, link.endpoint(0))
    probe.tap(link, link.endpoint(1))

    ca = CertificateAuthority("Repro Root", seed=b"root")
    identity = ca.issue_identity("server.example", seed=b"srv")
    trust = TrustStore()
    trust.add_authority(ca)
    client_ctx = TcplsContext(
        trust_store=trust,
        server_name="server.example",
        ticket_store=SessionTicketStore(),
        seed=7,
    )
    server_ctx = TcplsContext(identity=identity, seed=507)
    client_stack = TcpStack(client_host, seed=7)
    server_stack = TcpStack(server_host, seed=1007)
    sessions: list = []
    TcplsServer(server_ctx, server_stack, port=443, on_session=sessions.append)
    client = TcplsSession(client_ctx, client_stack)

    client.connect("10.0.0.2")
    client.handshake()
    net.sim.run(until=1.0)
    if not client.handshake_complete:
        raise RuntimeError("smoke scenario failed to complete the handshake")

    received: dict = {}
    server_session = sessions[0]
    server_session.on_stream_data = (
        lambda sid, data: received.setdefault(sid, bytearray()).extend(data)
    )
    first = client.stream_new()
    second = client.stream_new()
    client.streams_attach()
    client.send(first, b"determinism smoke " * 300)
    client.send(second, bytes(range(256)) * 40)
    net.sim.run(until=3.0)
    if bytes(received.get(first, b"")) != b"determinism smoke " * 300:
        raise RuntimeError("smoke scenario lost stream data")
    client.close()
    net.sim.run(until=4.0)
