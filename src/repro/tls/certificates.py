"""Minimal Ed25519 certificates: a subject bound to a key by a CA signature.

Not X.509 — a compact binary structure carrying exactly what the
handshake needs: subject name, Ed25519 public key, issuer name, validity
flag, and the issuer's signature over the to-be-signed portion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.ed25519 import Ed25519PrivateKey, ed25519_verify
from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import InvalidValue, decode_guard


@dataclass(frozen=True)
class Certificate:
    """A signed binding of ``subject`` to ``public_key``."""

    subject: str
    public_key: bytes  # Ed25519, 32 bytes
    issuer: str
    signature: bytes  # Ed25519 over the TBS bytes, 64 bytes

    def to_be_signed(self) -> bytes:
        writer = ByteWriter()
        writer.put_vec8(self.subject.encode("utf-8"))
        writer.put_vec8(self.public_key)
        writer.put_vec8(self.issuer.encode("utf-8"))
        return writer.getvalue()

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_vec16(self.to_be_signed())
        writer.put_vec8(self.signature)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        with decode_guard("Certificate"):
            outer = ByteReader(data)
            tbs = ByteReader(outer.get_vec16())
            subject = tbs.get_vec8().decode("utf-8")
            public_key = tbs.get_vec8()
            issuer = tbs.get_vec8().decode("utf-8")
            signature = outer.get_vec8()
            if len(public_key) != 32 or len(signature) != 64:
                raise InvalidValue("malformed certificate key or signature")
        return cls(
            subject=subject, public_key=public_key, issuer=issuer, signature=signature
        )


class CertificateAuthority:
    """Issues certificates with a deterministic (seeded) Ed25519 key."""

    def __init__(self, name: str, seed: bytes = b"") -> None:
        self.name = name
        seed_bytes = (seed or name.encode("utf-8")).ljust(32, b"\x00")[:32]
        self._key = Ed25519PrivateKey(seed_bytes)

    @property
    def public_key(self) -> bytes:
        return self._key.public_bytes

    def issue(self, subject: str, subject_public_key: bytes) -> Certificate:
        unsigned = Certificate(
            subject=subject,
            public_key=subject_public_key,
            issuer=self.name,
            signature=b"\x00" * 64,
        )
        signature = self._key.sign(unsigned.to_be_signed())
        return Certificate(
            subject=subject,
            public_key=subject_public_key,
            issuer=self.name,
            signature=signature,
        )

    def issue_identity(self, subject: str, seed: bytes = b"") -> "Identity":
        """Mint a key pair plus certificate for a server."""
        seed_bytes = (seed or subject.encode("utf-8")).ljust(32, b"\x00")[:32]
        key = Ed25519PrivateKey(seed_bytes)
        return Identity(key=key, certificate=self.issue(subject, key.public_bytes))


@dataclass
class Identity:
    """A private key and its certificate (what a server presents)."""

    key: Ed25519PrivateKey
    certificate: Certificate


class TrustStore:
    """The client's set of trusted CA keys."""

    def __init__(self) -> None:
        self._cas: dict[str, bytes] = {}

    def add(self, ca_name: str, ca_public_key: bytes) -> None:
        self._cas[ca_name] = ca_public_key

    def add_authority(self, ca: CertificateAuthority) -> None:
        self.add(ca.name, ca.public_key)

    def verify(self, certificate: Certificate, expected_subject: Optional[str] = None) -> bool:
        """Check the CA signature and (optionally) the subject name."""
        ca_key = self._cas.get(certificate.issuer)
        if ca_key is None:
            return False
        if expected_subject is not None and certificate.subject != expected_subject:
            return False
        return ed25519_verify(
            ca_key, certificate.to_be_signed(), certificate.signature
        )
