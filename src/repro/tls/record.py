"""The TLS 1.3 record layer (RFC 8446 section 5).

Encrypted records hide their true content type: the outer header always
says ``application_data`` (23) and the real type rides as the last
plaintext byte (``TLSInnerPlaintext.type``).  The paper's Figure 1 is
precisely this mechanism — TCPLS extends the inner-type space with its
own control types (``repro.core.framing``), so a middlebox sees only
opaque APPDATA records.

``RecordDecoder.decrypt_with`` exposes the per-record AEAD open so TCPLS
can do trial decryption across per-stream cryptographic contexts
(paper section 2.3).

Fast path (``fastpath`` feature ``crypto.batch``): the nonce schedule is
deterministic (``iv XOR sequence``), so a ``CipherState`` can precompute
the ChaCha20 keystream for the next several record sequence numbers in
one vectorized call and hand slices of it to the AEAD layer.  The cache
is pure lookahead — sealing/opening through it is bit-identical to the
per-record scalar construction, the sequence numbers advance exactly as
before, and any key change drops the cache.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator, List, Optional, Tuple

from repro import fastpath
from repro.crypto import aead as _aead
from repro.crypto.aead import ChaCha20Poly1305, TAG_LENGTH
from repro.crypto.keyschedule import TrafficKeys
from repro.utils.bytesio import ByteWriter
from repro.utils.errors import CryptoError, InvalidValue, ProtocolViolation

if _aead.HAVE_NUMPY:
    from repro.crypto.chacha20_fast import chacha20_keystream_multi


class ContentType:
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23

MAX_PLAINTEXT = 1 << 14  # RFC 8446: 2^14 bytes of plaintext per record
RECORD_HEADER_LEN = 5
LEGACY_RECORD_VERSION = 0x0303

# Per-record overhead once encrypted: header + inner type byte + AEAD tag.
ENCRYPTED_OVERHEAD = RECORD_HEADER_LEN + 1 + TAG_LENGTH

#: Record sequence numbers covered per lookahead keystream generation.
#: numpy dispatch overhead is per-op, not per-element, so a wider window
#: amortizes the ~1000 vector ops of a ChaCha20 pass over more records;
#: 32 full-size records is ~0.5 MiB of cached keystream.
LOOKAHEAD_RECORDS = 32
#: Inner plaintexts below this size skip the lookahead (the one-call
#: batch inside ``ChaCha20Poly1305`` already covers them adequately).
_LOOKAHEAD_MIN_INNER = 1024


def record_header(content_type: int, length: int) -> bytes:
    writer = ByteWriter()
    writer.put_u8(content_type).put_u16(LEGACY_RECORD_VERSION).put_u16(length)
    return writer.getvalue()


class CipherState:
    """One direction's AEAD key material plus its record sequence number.

    Holds the keystream lookahead cache: because the per-record nonce is
    ``iv XOR sequence``, the keystream for sequences ``[base, base + R)``
    can be generated in one vectorized pass and sliced per record.  The
    cache is sized by the first record that misses it, so a bulk stream
    of max-size records pays one generation per ``LOOKAHEAD_RECORDS``.
    """

    def __init__(self, keys: TrafficKeys) -> None:
        self.keys = keys
        self.aead = ChaCha20Poly1305(keys.key)
        self.sequence = 0
        self._ks_cache: Optional[memoryview] = None
        self._ks_base = 0
        self._ks_record_bytes = 0

    def next_nonce(self) -> bytes:
        return self.keys.nonce_for(self.sequence)

    def advance(self) -> None:
        self.sequence += 1

    def rekey(self) -> None:
        """RFC 8446 7.2 key update."""
        self.keys = self.keys.next_generation()
        self.aead = ChaCha20Poly1305(self.keys.key)
        self.sequence = 0
        self._ks_cache = None

    def _lookahead(self, payload_length: int) -> Optional[memoryview]:
        """Keystream slice (OTK block + payload blocks) for the current
        sequence, or ``None`` when the lookahead should not engage."""
        if (
            payload_length < _LOOKAHEAD_MIN_INNER
            or not _aead.HAVE_NUMPY
            or not fastpath.flags["crypto.batch"]
        ):
            return None
        needed = 64 * (1 + (payload_length + 63) // 64)
        seq = self.sequence
        if (
            self._ks_cache is None
            or needed > self._ks_record_bytes
            or not self._ks_base <= seq < self._ks_base + LOOKAHEAD_RECORDS
        ):
            nonces = [
                self.keys.nonce_for(s) for s in range(seq, seq + LOOKAHEAD_RECORDS)
            ]
            self._ks_cache = memoryview(
                chacha20_keystream_multi(self.keys.key, nonces, 0, needed // 64)
            )
            self._ks_base = seq
            self._ks_record_bytes = needed
        start = (seq - self._ks_base) * self._ks_record_bytes
        return self._ks_cache[start : start + needed]

    def seal(self, inner: bytes, aad: bytes) -> bytes:
        """Encrypt one record at the current sequence (does not advance)."""
        keystream = self._lookahead(len(inner))
        if keystream is not None:
            return _aead.seal_with_keystream(keystream, inner, aad)
        return self.aead.encrypt(self.next_nonce(), inner, aad)

    def open(self, ciphertext: bytes, aad: bytes) -> bytes:
        """Verify + decrypt one record at the current sequence.

        The tag is checked before any plaintext is produced either way,
        so failed trial decryptions stay cheap on both paths.
        """
        keystream = self._lookahead(len(ciphertext) - TAG_LENGTH)
        if keystream is not None:
            return _aead.open_with_keystream(keystream, ciphertext, aad)
        return self.aead.decrypt(self.next_nonce(), ciphertext, aad)


class RecordEncoder:
    """Serializes plaintext or encrypted records for one direction."""

    def __init__(self) -> None:
        self._cipher: Optional[CipherState] = None
        self.records_encrypted = 0
        # Optional observability hook: called with the on-wire record
        # length after each encrypted record is produced.  Recording
        # only — never alters the bytes.
        self.on_record_encrypted: Optional[Callable[[int], None]] = None

    @property
    def is_encrypting(self) -> bool:
        return self._cipher is not None

    @property
    def cipher(self) -> Optional[CipherState]:
        return self._cipher

    def set_key(self, keys: TrafficKeys) -> None:
        self._cipher = CipherState(keys)

    def clear_key(self) -> None:
        self._cipher = None

    def encode(self, content_type: int, payload: bytes) -> bytes:
        """Produce one or more records carrying ``payload``."""
        if not payload and content_type != ContentType.APPLICATION_DATA:
            payload = b""
        out = []
        offset = 0
        while True:
            chunk = payload[offset : offset + MAX_PLAINTEXT - 1]
            out.append(self._encode_one(content_type, chunk))
            offset += len(chunk)
            if offset >= len(payload):
                break
        return b"".join(out)

    def _encode_one(self, content_type: int, chunk: bytes) -> bytes:
        if self._cipher is None:
            return record_header(content_type, len(chunk)) + chunk
        inner = chunk + bytes([content_type])
        sealed_length = len(inner) + TAG_LENGTH
        header = record_header(ContentType.APPLICATION_DATA, sealed_length)
        sealed = self._cipher.seal(inner, header)
        self._cipher.advance()
        self.records_encrypted += 1
        if self.on_record_encrypted is not None:
            self.on_record_encrypted(len(header) + len(sealed))
        return header + sealed


def strip_padding(inner: bytes) -> Tuple[int, bytes]:
    """Split TLSInnerPlaintext into (content_type, content)."""
    end = len(inner)
    while end > 0 and inner[end - 1] == 0:
        end -= 1
    if end == 0:
        raise InvalidValue("record with all-zero inner plaintext")
    return inner[end - 1], inner[: end - 1]


class RecordDecoder:
    """Reassembles a byte stream into records and decrypts them."""

    def __init__(self) -> None:
        self._cipher: Optional[CipherState] = None
        self._buffer = bytearray()
        self.records_decrypted = 0
        self.decrypt_failures = 0
        # Optional observability hook: ciphertext length of each record
        # successfully decrypted by this decoder.
        self.on_record_decrypted: Optional[Callable[[int], None]] = None

    @property
    def is_decrypting(self) -> bool:
        return self._cipher is not None

    @property
    def cipher(self) -> Optional[CipherState]:
        return self._cipher

    def set_key(self, keys: TrafficKeys) -> None:
        self._cipher = CipherState(keys)

    def clear_key(self) -> None:
        self._cipher = None

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def pending_bytes(self) -> int:
        return len(self._buffer)

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield complete (content_type, plaintext) records."""
        while True:
            record = self._next_raw_record()
            if record is None:
                return
            outer_type, ciphertext = record
            if self._cipher is None or outer_type != ContentType.APPLICATION_DATA:
                yield outer_type, ciphertext
                continue
            yield self._decrypt(ciphertext)

    def raw_records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield records without decrypting (TCPLS trial decryption path)."""
        while True:
            record = self._next_raw_record()
            if record is None:
                return
            yield record

    def _next_raw_record(self) -> Optional[Tuple[int, bytes]]:
        if len(self._buffer) < RECORD_HEADER_LEN:
            return None
        # Header fields straight out of the reassembly buffer — one
        # struct call instead of a ByteReader over a copied slice.
        outer_type, _legacy_version, length = struct.unpack_from(
            "!BHH", self._buffer, 0
        )
        if length > MAX_PLAINTEXT + 256 + TAG_LENGTH:
            raise InvalidValue(f"record length {length} exceeds the limit")
        if len(self._buffer) < RECORD_HEADER_LEN + length:
            return None
        body = bytes(self._buffer[RECORD_HEADER_LEN : RECORD_HEADER_LEN + length])
        del self._buffer[: RECORD_HEADER_LEN + length]
        return outer_type, body

    def _decrypt(self, ciphertext: bytes) -> Tuple[int, bytes]:
        assert self._cipher is not None
        header = record_header(ContentType.APPLICATION_DATA, len(ciphertext))
        try:
            inner = self._cipher.open(ciphertext, header)
        except CryptoError:
            self.decrypt_failures += 1
            raise
        self._cipher.advance()
        self.records_decrypted += 1
        if self.on_record_decrypted is not None:
            self.on_record_decrypted(len(ciphertext))
        return strip_padding(inner)

    @staticmethod
    def decrypt_with(cipher: CipherState, ciphertext: bytes) -> Tuple[int, bytes]:
        """Open one record under an explicit cipher state.

        Raises ``CryptoError`` without touching the sequence number if the
        tag does not verify — the lightweight "check the authentication
        tag until we find the stream" probe from paper section 2.3.
        """
        header = record_header(ContentType.APPLICATION_DATA, len(ciphertext))
        inner = cipher.open(ciphertext, header)
        cipher.advance()
        return strip_padding(inner)
