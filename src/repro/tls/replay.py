"""Server-side 0-RTT anti-replay: a bounded single-use strike register.

RFC 8446 section 8 leaves 0-RTT replay protection to the server.  Our
tickets are stateless (self-encrypted), so nothing stops an attacker
from replaying a captured ClientHello + early-data flight verbatim: the
ticket unseals, the binder verifies, and without a register the early
data would be accepted twice.  The register remembers the PSK binder of
every ClientHello whose early data was accepted — a replayed flight
carries the *same* binder (it is an HMAC over the same bytes), so a
second sighting is a replay by construction.

The register is deliberately bounded and **fails closed**: when the
window is full, new binders are *rejected* (the handshake continues but
early data falls back to 1-RTT) rather than evicting old strikes — an
attacker must never be able to flush the register by flooding it.
Entries expire after ``window`` seconds (a binder older than the ticket
lifetime cannot validate anyway), which is what keeps a long-running
server from rejecting forever once it has seen ``capacity`` flights.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class AntiReplayRegister:
    """Single-use strike register for 0-RTT binders.

    ``observe(binder)`` returns True exactly once per binder value while
    the register has room; False means "reject early data" — either the
    binder was already seen (replay) or the register is full (fail
    closed).  A ``clock`` enables time-based expiry of old strikes.
    """

    def __init__(
        self,
        capacity: int = 4096,
        window: float = 7200.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("anti-replay capacity must be positive")
        self.capacity = capacity
        self.window = window
        self.clock = clock
        # Insertion-ordered (dict semantics): oldest strikes first, so
        # expiry pruning pops from the front.
        self._seen: Dict[bytes, float] = {}
        self.accepted = 0
        self.replays = 0
        self.overflow_rejections = 0

    def __len__(self) -> int:
        return len(self._seen)

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _prune(self, now: float) -> None:
        if self.clock is None:
            return
        horizon = now - self.window
        stale = [b for b, t in self._seen.items() if t <= horizon]
        for binder in stale:
            del self._seen[binder]

    def observe(self, binder: bytes) -> bool:
        """Register a binder; True = first sighting, accept early data."""
        binder = bytes(binder)
        now = self._now()
        self._prune(now)
        if binder in self._seen:
            self.replays += 1
            return False
        if len(self._seen) >= self.capacity:
            # Fail closed: refusing 0-RTT costs the client one round
            # trip; evicting a strike could cost it a replayed request.
            self.overflow_rejections += 1
            return False
        self._seen[binder] = now
        self.accepted += 1
        return True

    def clear(self) -> None:
        self._seen.clear()

    def describe(self) -> dict:
        return {
            "size": len(self._seen),
            "capacity": self.capacity,
            "accepted": self.accepted,
            "replays": self.replays,
            "overflow_rejections": self.overflow_rejections,
        }
