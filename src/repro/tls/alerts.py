"""TLS alerts (RFC 8446 section 6)."""

from __future__ import annotations

from repro.utils.errors import LengthMismatch, ProtocolViolation, decode_guard

LEVEL_WARNING = 1
LEVEL_FATAL = 2

CLOSE_NOTIFY = 0
UNEXPECTED_MESSAGE = 10
BAD_RECORD_MAC = 20
HANDSHAKE_FAILURE = 40
BAD_CERTIFICATE = 42
ILLEGAL_PARAMETER = 47
DECODE_ERROR = 50
DECRYPT_ERROR = 51
PROTOCOL_VERSION = 70
MISSING_EXTENSION = 109
UNSUPPORTED_EXTENSION = 110

_NAMES = {
    CLOSE_NOTIFY: "close_notify",
    UNEXPECTED_MESSAGE: "unexpected_message",
    BAD_RECORD_MAC: "bad_record_mac",
    HANDSHAKE_FAILURE: "handshake_failure",
    BAD_CERTIFICATE: "bad_certificate",
    ILLEGAL_PARAMETER: "illegal_parameter",
    DECODE_ERROR: "decode_error",
    DECRYPT_ERROR: "decrypt_error",
    PROTOCOL_VERSION: "protocol_version",
    MISSING_EXTENSION: "missing_extension",
    UNSUPPORTED_EXTENSION: "unsupported_extension",
}


def alert_name(description: int) -> str:
    return _NAMES.get(description, f"alert_{description}")


def encode_alert(level: int, description: int) -> bytes:
    return bytes([level, description])


def decode_alert(payload: bytes):
    with decode_guard("TLS alert"):
        if len(payload) != 2:
            raise LengthMismatch(f"alert record must be 2 bytes, got {len(payload)}")
        return payload[0], payload[1]


class TlsAlertError(ProtocolViolation):
    """Raised when the handshake fails; carries the alert description."""

    def __init__(self, description: int, message: str = "") -> None:
        super().__init__(message or alert_name(description))
        self.description = description
