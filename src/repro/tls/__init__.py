"""A TLS 1.3 implementation (the picotls substitute).

Scope: the TLS_CHACHA20_POLY1305_SHA256 suite with X25519 key exchange
and Ed25519 certificates — one fully-working path through RFC 8446
rather than a broad matrix.  Implemented:

- full 1-RTT handshake with certificate verification and Finished MACs;
- the record layer with encrypted content types (the inner-type byte the
  paper's Figure 1 extends into the TCPLS ``TType``);
- EncryptedExtensions — the carrier for TCPLS's secure control data;
- session tickets, PSK resumption, and 0-RTT early data;
- exporter secrets (RFC 8446 7.5), from which TCPLS derives per-stream
  and per-connection keys.

The handshake driver is sans-io: bytes in via ``receive``, bytes out via
a callback, so it runs over simulated TCP connections.
"""

from repro.tls.certificates import Certificate, CertificateAuthority, TrustStore
from repro.tls.record import ContentType, RecordDecoder, RecordEncoder
from repro.tls.session import SessionTicketStore, TlsConfig, TlsSession

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "TrustStore",
    "ContentType",
    "RecordEncoder",
    "RecordDecoder",
    "TlsConfig",
    "TlsSession",
    "SessionTicketStore",
]
