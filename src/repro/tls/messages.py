"""TLS 1.3 handshake messages and extensions (RFC 8446 section 4).

Each message serializes to the standard ``type(u8) || length(u24) ||
body`` handshake framing.  Extensions are kept as ``(type, bytes)`` pairs
with typed helpers for the ones the stack interprets; unknown extensions
round-trip untouched — which is exactly how TCPLS smuggles its transport
parameters, cookies, and address advertisements through the handshake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import ProtocolViolation

# Handshake message types.
CLIENT_HELLO = 1
SERVER_HELLO = 2
NEW_SESSION_TICKET = 4
END_OF_EARLY_DATA = 5
ENCRYPTED_EXTENSIONS = 8
CERTIFICATE = 11
CERTIFICATE_VERIFY = 15
FINISHED = 20
KEY_UPDATE = 24

# Extension types.
EXT_SERVER_NAME = 0
EXT_SUPPORTED_GROUPS = 10
EXT_SIGNATURE_ALGORITHMS = 13
EXT_ALPN = 16
EXT_PRE_SHARED_KEY = 41
EXT_EARLY_DATA = 42
EXT_SUPPORTED_VERSIONS = 43
EXT_PSK_KEY_EXCHANGE_MODES = 45
EXT_KEY_SHARE = 51
# Private-use extension number for TCPLS transport parameters (the paper:
# "the client indicates its willingness to use TCPLS with a transport
# parameter in the ClientHello").
EXT_TCPLS = 0xFF5C

TLS13 = 0x0304
LEGACY_VERSION = 0x0303
CIPHER_CHACHA20_POLY1305_SHA256 = 0x1303
GROUP_X25519 = 0x001D
SIG_ED25519 = 0x0807

Extensions = List[Tuple[int, bytes]]


def _encode_extensions(extensions: Extensions) -> bytes:
    inner = ByteWriter()
    for ext_type, body in extensions:
        inner.put_u16(ext_type).put_vec16(body)
    writer = ByteWriter()
    writer.put_vec16(inner.getvalue())
    return writer.getvalue()


def _decode_extensions(reader: ByteReader) -> Extensions:
    extensions: Extensions = []
    block = ByteReader(reader.get_vec16())
    while not block.is_empty():
        ext_type = block.get_u16()
        extensions.append((ext_type, block.get_vec16()))
    return extensions


def get_extension(extensions: Extensions, ext_type: int) -> Optional[bytes]:
    for found_type, body in extensions:
        if found_type == ext_type:
            return body
    return None


def frame_handshake(msg_type: int, body: bytes) -> bytes:
    writer = ByteWriter()
    writer.put_u8(msg_type).put_vec24(body)
    return writer.getvalue()


def parse_handshake_frames(data: bytes) -> List[Tuple[int, bytes, bytes]]:
    """Split concatenated handshake messages; returns (type, body, raw)."""
    reader = ByteReader(data)
    frames = []
    while not reader.is_empty():
        start = reader.offset
        msg_type = reader.get_u8()
        body = reader.get_vec24()
        raw = data[start : reader.offset]
        frames.append((msg_type, body, raw))
    return frames


# ---------------------------------------------------------------------------
# ClientHello / ServerHello
# ---------------------------------------------------------------------------


@dataclass
class ClientHello:
    random: bytes
    session_id: bytes = b""
    cipher_suites: List[int] = field(
        default_factory=lambda: [CIPHER_CHACHA20_POLY1305_SHA256]
    )
    extensions: Extensions = field(default_factory=list)

    msg_type = CLIENT_HELLO

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u16(LEGACY_VERSION)
        writer.put_bytes(self.random.ljust(32, b"\x00")[:32])
        writer.put_vec8(self.session_id)
        suites = ByteWriter()
        for suite in self.cipher_suites:
            suites.put_u16(suite)
        writer.put_vec16(suites.getvalue())
        writer.put_vec8(b"\x00")  # legacy compression: null only
        writer.put_bytes(_encode_extensions(self.extensions))
        return frame_handshake(CLIENT_HELLO, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "ClientHello":
        reader = ByteReader(body)
        if reader.get_u16() != LEGACY_VERSION:
            raise ProtocolViolation("bad legacy_version in ClientHello")
        random = reader.get_bytes(32)
        session_id = reader.get_vec8()
        suites_raw = ByteReader(reader.get_vec16())
        suites = []
        while not suites_raw.is_empty():
            suites.append(suites_raw.get_u16())
        reader.get_vec8()  # compression methods
        extensions = _decode_extensions(reader)
        return cls(
            random=random,
            session_id=session_id,
            cipher_suites=suites,
            extensions=extensions,
        )


@dataclass
class ServerHello:
    random: bytes
    session_id: bytes = b""
    cipher_suite: int = CIPHER_CHACHA20_POLY1305_SHA256
    extensions: Extensions = field(default_factory=list)

    msg_type = SERVER_HELLO

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u16(LEGACY_VERSION)
        writer.put_bytes(self.random.ljust(32, b"\x00")[:32])
        writer.put_vec8(self.session_id)
        writer.put_u16(self.cipher_suite)
        writer.put_u8(0)  # legacy compression
        writer.put_bytes(_encode_extensions(self.extensions))
        return frame_handshake(SERVER_HELLO, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "ServerHello":
        reader = ByteReader(body)
        reader.get_u16()
        random = reader.get_bytes(32)
        session_id = reader.get_vec8()
        cipher_suite = reader.get_u16()
        reader.get_u8()
        extensions = _decode_extensions(reader)
        return cls(
            random=random,
            session_id=session_id,
            cipher_suite=cipher_suite,
            extensions=extensions,
        )


# ---------------------------------------------------------------------------
# Encrypted handshake flight
# ---------------------------------------------------------------------------


@dataclass
class EncryptedExtensionsMsg:
    extensions: Extensions = field(default_factory=list)

    msg_type = ENCRYPTED_EXTENSIONS

    def to_bytes(self) -> bytes:
        return frame_handshake(ENCRYPTED_EXTENSIONS, _encode_extensions(self.extensions))

    @classmethod
    def from_body(cls, body: bytes) -> "EncryptedExtensionsMsg":
        return cls(extensions=_decode_extensions(ByteReader(body)))


@dataclass
class CertificateMsg:
    certificate_bytes: bytes  # one repro certificate (no chains of depth > 1)

    msg_type = CERTIFICATE

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_vec8(b"")  # certificate_request_context
        entry = ByteWriter()
        entry.put_vec24(self.certificate_bytes)
        entry.put_vec16(b"")  # per-entry extensions
        writer.put_vec24(entry.getvalue())
        return frame_handshake(CERTIFICATE, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "CertificateMsg":
        reader = ByteReader(body)
        reader.get_vec8()
        entries = ByteReader(reader.get_vec24())
        certificate_bytes = entries.get_vec24()
        entries.get_vec16()
        return cls(certificate_bytes=certificate_bytes)


@dataclass
class CertificateVerifyMsg:
    algorithm: int
    signature: bytes

    msg_type = CERTIFICATE_VERIFY

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u16(self.algorithm)
        writer.put_vec16(self.signature)
        return frame_handshake(CERTIFICATE_VERIFY, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "CertificateVerifyMsg":
        reader = ByteReader(body)
        return cls(algorithm=reader.get_u16(), signature=reader.get_vec16())


@dataclass
class FinishedMsg:
    verify_data: bytes

    msg_type = FINISHED

    def to_bytes(self) -> bytes:
        return frame_handshake(FINISHED, self.verify_data)

    @classmethod
    def from_body(cls, body: bytes) -> "FinishedMsg":
        return cls(verify_data=body)


@dataclass
class EndOfEarlyDataMsg:
    msg_type = END_OF_EARLY_DATA

    def to_bytes(self) -> bytes:
        return frame_handshake(END_OF_EARLY_DATA, b"")


@dataclass
class KeyUpdateMsg:
    """Post-handshake key update (RFC 8446 section 4.6.3)."""

    request_update: bool = False

    msg_type = KEY_UPDATE

    def to_bytes(self) -> bytes:
        return frame_handshake(KEY_UPDATE, bytes([1 if self.request_update else 0]))

    @classmethod
    def from_body(cls, body: bytes) -> "KeyUpdateMsg":
        if len(body) != 1 or body[0] > 1:
            raise ProtocolViolation("malformed KeyUpdate")
        return cls(request_update=bool(body[0]))


@dataclass
class NewSessionTicketMsg:
    lifetime: int
    age_add: int
    nonce: bytes
    ticket: bytes
    max_early_data: int = 0

    msg_type = NEW_SESSION_TICKET

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u32(self.lifetime)
        writer.put_u32(self.age_add)
        writer.put_vec8(self.nonce)
        writer.put_vec16(self.ticket)
        extensions: Extensions = []
        if self.max_early_data:
            body = ByteWriter()
            body.put_u32(self.max_early_data)
            extensions.append((EXT_EARLY_DATA, body.getvalue()))
        writer.put_bytes(_encode_extensions(extensions))
        return frame_handshake(NEW_SESSION_TICKET, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "NewSessionTicketMsg":
        reader = ByteReader(body)
        lifetime = reader.get_u32()
        age_add = reader.get_u32()
        nonce = reader.get_vec8()
        ticket = reader.get_vec16()
        extensions = _decode_extensions(reader)
        max_early = 0
        early = get_extension(extensions, EXT_EARLY_DATA)
        if early is not None:
            max_early = ByteReader(early).get_u32()
        return cls(
            lifetime=lifetime,
            age_add=age_add,
            nonce=nonce,
            ticket=ticket,
            max_early_data=max_early,
        )


# ---------------------------------------------------------------------------
# Extension body builders/parsers
# ---------------------------------------------------------------------------


def build_key_share_client(public_key: bytes) -> bytes:
    shares = ByteWriter()
    shares.put_u16(GROUP_X25519).put_vec16(public_key)
    writer = ByteWriter()
    writer.put_vec16(shares.getvalue())
    return writer.getvalue()


def parse_key_share_client(body: bytes) -> Optional[bytes]:
    shares = ByteReader(ByteReader(body).get_vec16())
    while not shares.is_empty():
        group = shares.get_u16()
        key = shares.get_vec16()
        if group == GROUP_X25519:
            return key
    return None


def build_key_share_server(public_key: bytes) -> bytes:
    writer = ByteWriter()
    writer.put_u16(GROUP_X25519).put_vec16(public_key)
    return writer.getvalue()


def parse_key_share_server(body: bytes) -> bytes:
    reader = ByteReader(body)
    group = reader.get_u16()
    if group != GROUP_X25519:
        raise ProtocolViolation(f"unsupported key share group {group:#06x}")
    return reader.get_vec16()


def build_supported_versions_client() -> bytes:
    writer = ByteWriter()
    versions = ByteWriter()
    versions.put_u16(TLS13)
    writer.put_vec8(versions.getvalue())
    return writer.getvalue()


def build_supported_versions_server() -> bytes:
    writer = ByteWriter()
    writer.put_u16(TLS13)
    return writer.getvalue()


def build_server_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    entry = ByteWriter()
    entry.put_u8(0).put_vec16(encoded)
    writer = ByteWriter()
    writer.put_vec16(entry.getvalue())
    return writer.getvalue()


def parse_server_name(body: bytes) -> str:
    entries = ByteReader(ByteReader(body).get_vec16())
    entries.get_u8()
    return entries.get_vec16().decode("utf-8")


def build_psk_offer(identity: bytes, obfuscated_age: int, binder_length: int) -> bytes:
    """Build pre_shared_key with a zero binder placeholder (filled later)."""
    identities = ByteWriter()
    identities.put_vec16(identity).put_u32(obfuscated_age)
    binders = ByteWriter()
    binders.put_vec8(b"\x00" * binder_length)
    writer = ByteWriter()
    writer.put_vec16(identities.getvalue())
    writer.put_vec16(binders.getvalue())
    return writer.getvalue()


def parse_psk_offer(body: bytes) -> Tuple[bytes, int, bytes]:
    reader = ByteReader(body)
    identities = ByteReader(reader.get_vec16())
    identity = identities.get_vec16()
    age = identities.get_u32()
    binders = ByteReader(reader.get_vec16())
    binder = binders.get_vec8()
    return identity, age, binder


def psk_binders_length(binder_length: int) -> int:
    """On-wire length of the binders list: u16 len + (u8 + binder)."""
    return 2 + 1 + binder_length


def build_psk_selected(index: int = 0) -> bytes:
    writer = ByteWriter()
    writer.put_u16(index)
    return writer.getvalue()
