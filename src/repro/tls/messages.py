"""TLS 1.3 handshake messages and extensions (RFC 8446 section 4).

Each message serializes to the standard ``type(u8) || length(u24) ||
body`` handshake framing.  Extensions are kept as ``(type, bytes)`` pairs
with typed helpers for the ones the stack interprets; unknown extensions
round-trip untouched — which is exactly how TCPLS smuggles its transport
parameters, cookies, and address advertisements through the handshake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import (
    InvalidValue,
    LengthMismatch,
    ProtocolViolation,
    decode_guard,
)

# A handshake message's u24 length field can claim up to 16 MiB; nothing
# this stack legitimately sends comes near 64 KiB, so anything above is
# rejected before a length lie can force unbounded buffering.
MAX_HANDSHAKE_BODY = 1 << 16

# Handshake message types.
CLIENT_HELLO = 1
SERVER_HELLO = 2
NEW_SESSION_TICKET = 4
END_OF_EARLY_DATA = 5
ENCRYPTED_EXTENSIONS = 8
CERTIFICATE = 11
CERTIFICATE_VERIFY = 15
FINISHED = 20
KEY_UPDATE = 24

# Extension types.
EXT_SERVER_NAME = 0
EXT_SUPPORTED_GROUPS = 10
EXT_SIGNATURE_ALGORITHMS = 13
EXT_ALPN = 16
EXT_PRE_SHARED_KEY = 41
EXT_EARLY_DATA = 42
EXT_SUPPORTED_VERSIONS = 43
EXT_PSK_KEY_EXCHANGE_MODES = 45
EXT_KEY_SHARE = 51
# Private-use extension number for TCPLS transport parameters (the paper:
# "the client indicates its willingness to use TCPLS with a transport
# parameter in the ClientHello").
EXT_TCPLS = 0xFF5C
# Overload retry coupon (repro.overload): a server that refused this
# client under pressure sealed a coupon; the redial presents it here
# for cheap-class admission.  0xFF5D is the TCPLS JOIN extension.
EXT_TCPLS_COUPON = 0xFF5E

TLS13 = 0x0304
LEGACY_VERSION = 0x0303
CIPHER_CHACHA20_POLY1305_SHA256 = 0x1303
GROUP_X25519 = 0x001D
SIG_ED25519 = 0x0807

Extensions = List[Tuple[int, bytes]]


def _encode_extensions(extensions: Extensions) -> bytes:
    inner = ByteWriter()
    for ext_type, body in extensions:
        inner.put_u16(ext_type).put_vec16(body)
    writer = ByteWriter()
    writer.put_vec16(inner.getvalue())
    return writer.getvalue()


def _decode_extensions(reader: ByteReader) -> Extensions:
    """Parse an extension block, validating every declared length.

    The outer u16 length and each extension's u16 length are checked
    against the actual buffer bounds before any slice, so a truncated or
    length-lying extension raises a typed ``DecodeError`` instead of
    leaking a low-level exception out of the handshake layer.
    """
    declared = reader.get_u16()
    if declared > reader.remaining():
        raise LengthMismatch(
            f"extension block claims {declared}B, only "
            f"{reader.remaining()}B present"
        )
    block = ByteReader(reader.get_bytes(declared))
    extensions: Extensions = []
    while not block.is_empty():
        if block.remaining() < 4:
            raise LengthMismatch(
                f"dangling {block.remaining()}B at end of extension block"
            )
        ext_type = block.get_u16()
        body_len = block.get_u16()
        if body_len > block.remaining():
            raise LengthMismatch(
                f"extension {ext_type:#06x} claims {body_len}B, only "
                f"{block.remaining()}B present"
            )
        extensions.append((ext_type, block.get_bytes(body_len)))
    return extensions


def get_extension(extensions: Extensions, ext_type: int) -> Optional[bytes]:
    for found_type, body in extensions:
        if found_type == ext_type:
            return body
    return None


def frame_handshake(msg_type: int, body: bytes) -> bytes:
    writer = ByteWriter()
    writer.put_u8(msg_type).put_vec24(body)
    return writer.getvalue()


def parse_handshake_frames(data: bytes) -> List[Tuple[int, bytes, bytes]]:
    """Split concatenated handshake messages; returns (type, body, raw).

    Each frame's declared u24 length is validated against the remaining
    buffer (and against :data:`MAX_HANDSHAKE_BODY`) before the body is
    sliced, so truncation and oversize claims both surface as typed
    ``DecodeError`` subclasses.
    """
    with decode_guard("handshake frames"):
        reader = ByteReader(data)
        frames = []
        while not reader.is_empty():
            start = reader.offset
            if reader.remaining() < 4:
                raise LengthMismatch(
                    f"dangling {reader.remaining()}B handshake header fragment"
                )
            msg_type = reader.get_u8()
            length = reader.get_u24()
            if length > MAX_HANDSHAKE_BODY:
                raise InvalidValue(
                    f"handshake message {msg_type} claims {length}B "
                    f"(limit {MAX_HANDSHAKE_BODY}B)"
                )
            if length > reader.remaining():
                raise LengthMismatch(
                    f"handshake message {msg_type} claims {length}B, only "
                    f"{reader.remaining()}B present"
                )
            body = reader.get_bytes(length)
            raw = data[start : reader.offset]
            frames.append((msg_type, body, raw))
        return frames


# ---------------------------------------------------------------------------
# ClientHello / ServerHello
# ---------------------------------------------------------------------------


@dataclass
class ClientHello:
    random: bytes
    session_id: bytes = b""
    cipher_suites: List[int] = field(
        default_factory=lambda: [CIPHER_CHACHA20_POLY1305_SHA256]
    )
    extensions: Extensions = field(default_factory=list)

    msg_type = CLIENT_HELLO

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u16(LEGACY_VERSION)
        writer.put_bytes(self.random.ljust(32, b"\x00")[:32])
        writer.put_vec8(self.session_id)
        suites = ByteWriter()
        for suite in self.cipher_suites:
            suites.put_u16(suite)
        writer.put_vec16(suites.getvalue())
        writer.put_vec8(b"\x00")  # legacy compression: null only
        writer.put_bytes(_encode_extensions(self.extensions))
        return frame_handshake(CLIENT_HELLO, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "ClientHello":
        with decode_guard("ClientHello"):
            reader = ByteReader(body)
            if reader.get_u16() != LEGACY_VERSION:
                raise InvalidValue("bad legacy_version in ClientHello")
            random = reader.get_bytes(32)
            session_id = reader.get_vec8()
            suites_raw = ByteReader(reader.get_vec16())
            suites = []
            while not suites_raw.is_empty():
                suites.append(suites_raw.get_u16())
            reader.get_vec8()  # compression methods
            extensions = _decode_extensions(reader)
        return cls(
            random=random,
            session_id=session_id,
            cipher_suites=suites,
            extensions=extensions,
        )


@dataclass
class ServerHello:
    random: bytes
    session_id: bytes = b""
    cipher_suite: int = CIPHER_CHACHA20_POLY1305_SHA256
    extensions: Extensions = field(default_factory=list)

    msg_type = SERVER_HELLO

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u16(LEGACY_VERSION)
        writer.put_bytes(self.random.ljust(32, b"\x00")[:32])
        writer.put_vec8(self.session_id)
        writer.put_u16(self.cipher_suite)
        writer.put_u8(0)  # legacy compression
        writer.put_bytes(_encode_extensions(self.extensions))
        return frame_handshake(SERVER_HELLO, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "ServerHello":
        with decode_guard("ServerHello"):
            reader = ByteReader(body)
            reader.get_u16()
            random = reader.get_bytes(32)
            session_id = reader.get_vec8()
            cipher_suite = reader.get_u16()
            reader.get_u8()
            extensions = _decode_extensions(reader)
        return cls(
            random=random,
            session_id=session_id,
            cipher_suite=cipher_suite,
            extensions=extensions,
        )


# ---------------------------------------------------------------------------
# Encrypted handshake flight
# ---------------------------------------------------------------------------


@dataclass
class EncryptedExtensionsMsg:
    extensions: Extensions = field(default_factory=list)

    msg_type = ENCRYPTED_EXTENSIONS

    def to_bytes(self) -> bytes:
        return frame_handshake(ENCRYPTED_EXTENSIONS, _encode_extensions(self.extensions))

    @classmethod
    def from_body(cls, body: bytes) -> "EncryptedExtensionsMsg":
        with decode_guard("EncryptedExtensions"):
            return cls(extensions=_decode_extensions(ByteReader(body)))


@dataclass
class CertificateMsg:
    certificate_bytes: bytes  # one repro certificate (no chains of depth > 1)

    msg_type = CERTIFICATE

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_vec8(b"")  # certificate_request_context
        entry = ByteWriter()
        entry.put_vec24(self.certificate_bytes)
        entry.put_vec16(b"")  # per-entry extensions
        writer.put_vec24(entry.getvalue())
        return frame_handshake(CERTIFICATE, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "CertificateMsg":
        with decode_guard("Certificate"):
            reader = ByteReader(body)
            reader.get_vec8()
            entries = ByteReader(reader.get_vec24())
            certificate_bytes = entries.get_vec24()
            entries.get_vec16()
        return cls(certificate_bytes=certificate_bytes)


@dataclass
class CertificateVerifyMsg:
    algorithm: int
    signature: bytes

    msg_type = CERTIFICATE_VERIFY

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u16(self.algorithm)
        writer.put_vec16(self.signature)
        return frame_handshake(CERTIFICATE_VERIFY, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "CertificateVerifyMsg":
        with decode_guard("CertificateVerify"):
            reader = ByteReader(body)
            return cls(algorithm=reader.get_u16(), signature=reader.get_vec16())


@dataclass
class FinishedMsg:
    verify_data: bytes

    msg_type = FINISHED

    def to_bytes(self) -> bytes:
        return frame_handshake(FINISHED, self.verify_data)

    @classmethod
    def from_body(cls, body: bytes) -> "FinishedMsg":
        with decode_guard("Finished"):
            return cls(verify_data=body)


@dataclass
class EndOfEarlyDataMsg:
    msg_type = END_OF_EARLY_DATA

    def to_bytes(self) -> bytes:
        return frame_handshake(END_OF_EARLY_DATA, b"")


@dataclass
class KeyUpdateMsg:
    """Post-handshake key update (RFC 8446 section 4.6.3)."""

    request_update: bool = False

    msg_type = KEY_UPDATE

    def to_bytes(self) -> bytes:
        return frame_handshake(KEY_UPDATE, bytes([1 if self.request_update else 0]))

    @classmethod
    def from_body(cls, body: bytes) -> "KeyUpdateMsg":
        with decode_guard("KeyUpdate"):
            if len(body) != 1 or body[0] > 1:
                raise InvalidValue("malformed KeyUpdate")
            return cls(request_update=bool(body[0]))


@dataclass
class NewSessionTicketMsg:
    lifetime: int
    age_add: int
    nonce: bytes
    ticket: bytes
    max_early_data: int = 0

    msg_type = NEW_SESSION_TICKET

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        writer.put_u32(self.lifetime)
        writer.put_u32(self.age_add)
        writer.put_vec8(self.nonce)
        writer.put_vec16(self.ticket)
        extensions: Extensions = []
        if self.max_early_data:
            body = ByteWriter()
            body.put_u32(self.max_early_data)
            extensions.append((EXT_EARLY_DATA, body.getvalue()))
        writer.put_bytes(_encode_extensions(extensions))
        return frame_handshake(NEW_SESSION_TICKET, writer.getvalue())

    @classmethod
    def from_body(cls, body: bytes) -> "NewSessionTicketMsg":
        with decode_guard("NewSessionTicket"):
            reader = ByteReader(body)
            lifetime = reader.get_u32()
            age_add = reader.get_u32()
            nonce = reader.get_vec8()
            ticket = reader.get_vec16()
            extensions = _decode_extensions(reader)
            max_early = 0
            early = get_extension(extensions, EXT_EARLY_DATA)
            if early is not None:
                max_early = ByteReader(early).get_u32()
        return cls(
            lifetime=lifetime,
            age_add=age_add,
            nonce=nonce,
            ticket=ticket,
            max_early_data=max_early,
        )


# ---------------------------------------------------------------------------
# Extension body builders/parsers
# ---------------------------------------------------------------------------


def build_key_share_client(public_key: bytes) -> bytes:
    shares = ByteWriter()
    shares.put_u16(GROUP_X25519).put_vec16(public_key)
    writer = ByteWriter()
    writer.put_vec16(shares.getvalue())
    return writer.getvalue()


def parse_key_share_client(body: bytes) -> Optional[bytes]:
    with decode_guard("key_share(ClientHello)"):
        outer = ByteReader(body)
        declared = outer.get_u16()
        if declared != outer.remaining():
            raise LengthMismatch(
                f"key_share list claims {declared}B, {outer.remaining()}B present"
            )
        shares = ByteReader(outer.get_rest())
        while not shares.is_empty():
            if shares.remaining() < 4:
                raise LengthMismatch(
                    f"dangling {shares.remaining()}B key_share entry header"
                )
            group = shares.get_u16()
            key_len = shares.get_u16()
            if key_len > shares.remaining():
                raise LengthMismatch(
                    f"key_share entry claims {key_len}B, only "
                    f"{shares.remaining()}B present"
                )
            key = shares.get_bytes(key_len)
            if group == GROUP_X25519:
                if len(key) != 32:
                    raise InvalidValue(
                        f"X25519 key share must be 32B, got {len(key)}B"
                    )
                return key
    return None


def build_key_share_server(public_key: bytes) -> bytes:
    writer = ByteWriter()
    writer.put_u16(GROUP_X25519).put_vec16(public_key)
    return writer.getvalue()


def parse_key_share_server(body: bytes) -> bytes:
    with decode_guard("key_share(ServerHello)"):
        reader = ByteReader(body)
        group = reader.get_u16()
        if group != GROUP_X25519:
            raise ProtocolViolation(f"unsupported key share group {group:#06x}")
        key = reader.get_vec16()
        if len(key) != 32:
            raise InvalidValue(f"X25519 key share must be 32B, got {len(key)}B")
        if not reader.is_empty():
            raise LengthMismatch(
                f"{reader.remaining()}B of trailing junk after key_share"
            )
        return key


def build_supported_versions_client() -> bytes:
    writer = ByteWriter()
    versions = ByteWriter()
    versions.put_u16(TLS13)
    writer.put_vec8(versions.getvalue())
    return writer.getvalue()


def build_supported_versions_server() -> bytes:
    writer = ByteWriter()
    writer.put_u16(TLS13)
    return writer.getvalue()


def build_server_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    entry = ByteWriter()
    entry.put_u8(0).put_vec16(encoded)
    writer = ByteWriter()
    writer.put_vec16(entry.getvalue())
    return writer.getvalue()


def parse_server_name(body: bytes) -> str:
    with decode_guard("server_name"):
        outer = ByteReader(body)
        declared = outer.get_u16()
        if declared > outer.remaining():
            raise LengthMismatch(
                f"server_name list claims {declared}B, only "
                f"{outer.remaining()}B present"
            )
        entries = ByteReader(outer.get_bytes(declared))
        name_type = entries.get_u8()
        if name_type != 0:
            raise InvalidValue(f"unknown server_name type {name_type}")
        name_len = entries.get_u16()
        if name_len > entries.remaining():
            raise LengthMismatch(
                f"server_name claims {name_len}B, only "
                f"{entries.remaining()}B present"
            )
        # A bad UTF-8 byte raises UnicodeDecodeError, which the guard
        # converts into a typed InvalidValue.
        return entries.get_bytes(name_len).decode("utf-8")


def build_psk_offer(identity: bytes, obfuscated_age: int, binder_length: int) -> bytes:
    """Build pre_shared_key with a zero binder placeholder (filled later)."""
    identities = ByteWriter()
    identities.put_vec16(identity).put_u32(obfuscated_age)
    binders = ByteWriter()
    binders.put_vec8(b"\x00" * binder_length)
    writer = ByteWriter()
    writer.put_vec16(identities.getvalue())
    writer.put_vec16(binders.getvalue())
    return writer.getvalue()


def parse_psk_offer(body: bytes) -> Tuple[bytes, int, bytes]:
    with decode_guard("pre_shared_key"):
        reader = ByteReader(body)
        identities_len = reader.get_u16()
        if identities_len > reader.remaining():
            raise LengthMismatch(
                f"PSK identities claim {identities_len}B, only "
                f"{reader.remaining()}B present"
            )
        identities = ByteReader(reader.get_bytes(identities_len))
        identity = identities.get_vec16()
        age = identities.get_u32()
        binders_len = reader.get_u16()
        if binders_len > reader.remaining():
            raise LengthMismatch(
                f"PSK binders claim {binders_len}B, only "
                f"{reader.remaining()}B present"
            )
        binders = ByteReader(reader.get_bytes(binders_len))
        binder = binders.get_vec8()
        if not binder:
            raise InvalidValue("empty PSK binder")
        return identity, age, binder


def psk_binders_length(binder_length: int) -> int:
    """On-wire length of the binders list: u16 len + (u8 + binder)."""
    return 2 + 1 + binder_length


def build_psk_selected(index: int = 0) -> bytes:
    writer = ByteWriter()
    writer.put_u16(index)
    return writer.getvalue()
