"""The TLS 1.3 connection driver (sans-io).

``TlsSession`` consumes transport bytes via ``receive`` and emits
transport bytes through the ``transport_write`` callback, so it runs
unchanged over simulated TCP.  It implements:

- the full 1-RTT handshake (certificates + Finished);
- PSK resumption via self-encrypted session tickets (stateless server);
- 0-RTT early data with binder verification and the EndOfEarlyData
  transition;
- post-handshake application data with key-updates available;
- the RFC 8446 exporter interface (TCPLS's source of stream keys).

TCPLS hooks in through ``extra_client_extensions`` (ClientHello) and
``extra_encrypted_extensions`` (EncryptedExtensions), plus the
``peer_*_extensions`` results after the handshake.
"""

from __future__ import annotations

import hmac as _hmac
import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.aead import ChaCha20Poly1305
from repro.crypto.hkdf import hkdf_expand_label, sha256
from repro.crypto.keyschedule import KeySchedule, TrafficKeys
from repro.crypto.x25519 import X25519PrivateKey
from repro.tls import alerts
from repro.tls.alerts import TlsAlertError
from repro.tls.certificates import Certificate, Identity, TrustStore
from repro.tls import messages as m
from repro.tls.record import ContentType, RecordDecoder, RecordEncoder
from repro.tls.replay import AntiReplayRegister
from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import (
    CryptoError,
    DecodeError,
    GuardLimitExceeded,
    MessageTooLarge,
    ProtocolViolation,
)

_CERT_VERIFY_CONTEXT_SERVER = b" " * 64 + b"TLS 1.3, server CertificateVerify" + b"\x00"

#: Sealed-ticket plaintext layout: PSK(32) + issued-at-ms(8) + lifetime-s(4).
_TICKET_PLAINTEXT_LEN = 32 + 8 + 4


class _TicketDecline(Exception):
    """A presented ticket we cannot (or will not) resume from.

    Raised internally by the server's ticket unsealing/validation.  It is
    *not* an attack signal: a ticket sealed under a rotated key, an
    expired ticket, or a blob from a different deployment are all normal
    operational events — the handshake continues as a full 1-RTT
    handshake rather than dying with a fatal alert.  (A *valid* ticket
    with a wrong binder stays fatal; see ``_server_handle_client_hello``.)
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class ClientTicket:
    """A resumption ticket as cached by the client.

    ``issued_at`` is the client's clock when the ticket arrived (-1 when
    the session has no clock: no client-side expiry is enforced then);
    ``lifetime`` is the server-advertised ticket_lifetime in seconds.
    """

    server_name: str
    identity: bytes
    psk: bytes
    max_early_data: int
    age_add: int
    issued_at: float = -1.0
    lifetime: int = 0


class SessionTicketStore:
    """Client-side cache of resumption tickets, keyed by server name.

    Tickets are handed out oldest-first (single-use, FIFO — the oldest
    ticket dies first anyway), expired tickets are skipped and evicted on
    the way out, and the whole store is bounded: past ``max_tickets`` the
    oldest ticket of the least-recently-used server name is evicted, so
    a long soak run dialling many farms cannot grow the cache without
    bound.

    ``early_expiry`` is a safety factor on the advertised lifetime: a
    ticket is treated as dead after ``lifetime * early_expiry`` seconds,
    so the client never presents a ticket moments before its server-side
    death (clock skew + flight time would turn that into a guaranteed
    full-handshake fallback).
    """

    def __init__(
        self,
        max_tickets: int = 256,
        clock: Optional[Callable[[], float]] = None,
        early_expiry: float = 0.9,
    ) -> None:
        # dict ordering doubles as the LRU list: least-recently-used
        # server name first (every add/take re-appends its name).
        self._tickets: Dict[str, List[ClientTicket]] = {}
        self.max_tickets = max_tickets
        self.clock = clock
        self.early_expiry = early_expiry
        self.expired_evicted = 0
        self.lru_evicted = 0

    def _touch(self, server_name: str) -> None:
        queue = self._tickets.pop(server_name, None)
        if queue is not None:
            self._tickets[server_name] = queue

    def _expired(self, ticket: ClientTicket, now: Optional[float]) -> bool:
        if now is None or ticket.lifetime <= 0 or ticket.issued_at < 0:
            return False
        return now >= ticket.issued_at + ticket.lifetime * self.early_expiry

    def add(self, ticket: ClientTicket) -> None:
        self._tickets.setdefault(ticket.server_name, []).append(ticket)
        self._touch(ticket.server_name)
        while self.max_tickets and self.total_count() > self.max_tickets:
            lru_name = next(iter(self._tickets))
            queue = self._tickets[lru_name]
            queue.pop(0)
            self.lru_evicted += 1
            if not queue:
                del self._tickets[lru_name]

    def take(
        self, server_name: str, now: Optional[float] = None
    ) -> Optional[ClientTicket]:
        """Pop the oldest still-fresh ticket (single-use against replay).

        Expired tickets encountered on the way are evicted, not
        returned — presenting one would only buy a guaranteed decline.
        """
        if now is None and self.clock is not None:
            now = self.clock()
        queue = self._tickets.get(server_name)
        if not queue:
            return None
        self._touch(server_name)
        taken: Optional[ClientTicket] = None
        while queue:
            ticket = queue.pop(0)
            if self._expired(ticket, now):
                self.expired_evicted += 1
                continue
            taken = ticket
            break
        if not queue:
            self._tickets.pop(server_name, None)
        return taken

    def count(self, server_name: str) -> int:
        return len(self._tickets.get(server_name, []))

    def total_count(self) -> int:
        return sum(len(queue) for queue in self._tickets.values())


@dataclass
class TlsConfig:
    """Configuration shared by client and server sessions."""

    # Server side.
    identity: Optional[Identity] = None
    ticket_key: bytes = b"\x00" * 32
    send_tickets: int = 1
    max_early_data: int = 1 << 16
    ticket_lifetime: int = 7200
    anti_replay: Optional[AntiReplayRegister] = None
    extra_encrypted_extensions: List[Tuple[int, bytes]] = field(default_factory=list)

    # Client side.
    trust_store: Optional[TrustStore] = None
    server_name: str = ""
    ticket_store: Optional[SessionTicketStore] = None
    extra_client_extensions: List[Tuple[int, bytes]] = field(default_factory=list)

    # Shared.  ``clock`` enables ticket lifetime enforcement (issue
    # stamping on the server, early expiry on the client); without it
    # tickets never expire, preserving the pre-clock behaviour.
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    clock: Optional[Callable[[], float]] = None


class TlsSession:
    """One endpoint of a TLS 1.3 connection."""

    def __init__(
        self,
        config: TlsConfig,
        is_server: bool,
        transport_write: Callable[[bytes], None],
    ) -> None:
        self.config = config
        self.is_server = is_server
        self._write = transport_write
        self.encoder = RecordEncoder()
        self.decoder = RecordDecoder()
        self.keys = KeySchedule()
        self._handshake_buffer = bytearray()
        self._ecdh: Optional[X25519PrivateKey] = None

        self.state = "START"
        self.is_established = False
        self.can_send_application_data = False
        self.used_psk = False
        self.early_data_sent = False
        self.early_data_accepted = False
        self._pending_early_data = b""
        self._skipping_early_data = False
        self._psk_ticket: Optional[ClientTicket] = None
        self._sent_client_hello = b""
        self._early_data_limit = 0
        # Resumption outcome accounting (read by the TCPLS session's
        # telemetry and by tests).  ``psk_offered`` is set on both ends;
        # ``psk_declined`` on the client when it fell back to a full
        # handshake; ``psk_decline_reason`` on the server explains *why*
        # it declined ("unseal", "expired", ...); ``early_replay_rejected``
        # marks 0-RTT refused by the anti-replay register specifically.
        self.psk_offered = False
        self.psk_declined = False
        self.psk_decline_reason: Optional[str] = None
        self.early_replay_rejected = False
        self.peer_certificate: Optional[Certificate] = None
        self.peer_client_hello_extensions: List[Tuple[int, bytes]] = []
        self.peer_encrypted_extensions: List[Tuple[int, bytes]] = []
        self.peer_closed = False
        self.key_updates_sent = 0
        self.key_updates_received = 0

        # Fail-closed accounting (the fuzzing harness and the TCPLS
        # session's ``decode.rejected``/``guard.tripped`` counters read
        # these).  ``max_handshake_message`` bounds a single message's
        # declared length; ``max_handshake_buffer`` bounds the reassembly
        # buffer so a peer cannot stall us mid-message forever while we
        # hoard its bytes.
        self.decode_rejected = 0
        self.guard_tripped = 0
        self.max_handshake_message = m.MAX_HANDSHAKE_BODY
        self.max_handshake_buffer = 1 << 17
        self.on_decode_rejected: Optional[Callable[[str], None]] = None
        self.on_guard_tripped: Optional[Callable[[str], None]] = None

        # Events.
        self.on_handshake_complete: Optional[Callable[[], None]] = None
        self.on_application_data: Optional[Callable[[bytes], None]] = None
        self.on_early_data: Optional[Callable[[bytes], None]] = None
        self.on_ticket: Optional[Callable[[ClientTicket], None]] = None
        self.on_close: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Client start
    # ------------------------------------------------------------------

    def start_handshake(self, early_data: bytes = b"") -> None:
        if self.is_server:
            raise RuntimeError("start_handshake is client-only")
        if self.state != "START":
            raise RuntimeError(f"handshake already started ({self.state})")
        self._ecdh = X25519PrivateKey(self._random_bytes(32))
        extensions: List[Tuple[int, bytes]] = [
            (m.EXT_SUPPORTED_VERSIONS, m.build_supported_versions_client()),
            (m.EXT_KEY_SHARE, m.build_key_share_client(self._ecdh.public_bytes)),
        ]
        if self.config.server_name:
            extensions.append(
                (m.EXT_SERVER_NAME, m.build_server_name(self.config.server_name))
            )
        extensions.extend(self.config.extra_client_extensions)

        ticket = None
        if self.config.ticket_store is not None and self.config.server_name:
            now = self.config.clock() if self.config.clock is not None else None
            ticket = self.config.ticket_store.take(self.config.server_name, now=now)
        if early_data and ticket is None:
            raise ProtocolViolation("0-RTT requires a resumption ticket")
        if ticket is not None:
            self._psk_ticket = ticket
            self.psk_offered = True
            self._early_data_limit = ticket.max_early_data
            if early_data:
                extensions.append((m.EXT_EARLY_DATA, b""))
            # pre_shared_key must be the last extension (RFC 8446 4.2.11).
            extensions.append(
                (
                    m.EXT_PRE_SHARED_KEY,
                    m.build_psk_offer(ticket.identity, ticket.age_add, 32),
                )
            )

        hello = m.ClientHello(
            random=self._random_bytes(32),
            session_id=self._random_bytes(32),
            extensions=extensions,
        )
        raw = hello.to_bytes()
        if ticket is not None:
            self.keys = KeySchedule(psk=ticket.psk)
            raw = self._patch_binder(raw, ticket.psk)
        # Kept verbatim so a PSK decline can replay the transcript into a
        # fresh (PSK-less) key schedule without re-sending the hello.
        self._sent_client_hello = raw
        self.keys.update_transcript(raw)
        self._send_record(ContentType.HANDSHAKE, raw)
        self.state = "WAIT_SH"

        if early_data and ticket is not None:
            early = self.keys.derive_early()
            self.encoder.set_key(TrafficKeys.from_secret(early["client_early_traffic"]))
            self._send_record(ContentType.APPLICATION_DATA, early_data)
            self.early_data_sent = True
            self._pending_early_data = early_data

    def send_early_data(self, data: bytes) -> None:
        """Stream more 0-RTT data while the handshake is still in flight.

        Only valid after ``start_handshake(early_data=...)`` and before
        the handshake completes.  The bytes ride under the early traffic
        key; if the server rejects 0-RTT (or declines the PSK entirely)
        every early byte — including these — is replayed under 1-RTT keys
        once established, so data queued behind early data is never lost.
        """
        if self.is_server:
            raise RuntimeError("send_early_data is client-only")
        if not self.early_data_sent:
            raise ProtocolViolation("no 0-RTT flight open; use send()")
        if self.is_established:
            raise ProtocolViolation("handshake complete; use send()")
        if (
            self._early_data_limit
            and len(self._pending_early_data) + len(data) > self._early_data_limit
        ):
            raise GuardLimitExceeded(
                "early data exceeds the ticket's max_early_data "
                f"({self._early_data_limit} bytes)"
            )
        if data:
            self._send_record(ContentType.APPLICATION_DATA, data)
            self._pending_early_data += data

    def _patch_binder(self, raw_client_hello: bytes, psk: bytes) -> bytes:
        """Fill in the PSK binder over the truncated ClientHello."""
        binders_len = m.psk_binders_length(32)
        truncated = raw_client_hello[:-binders_len]
        binder = _compute_binder(psk, truncated)
        return raw_client_hello[:-32] + binder

    # ------------------------------------------------------------------
    # Transport input
    # ------------------------------------------------------------------

    def receive(self, data: bytes) -> None:
        self.decoder.feed(data)
        while True:
            try:
                for content_type, payload in self.decoder.records():
                    if self._skipping_early_data:
                        self._skipping_early_data = False
                    self._on_record(content_type, payload)
                return
            except CryptoError:
                if self._skipping_early_data:
                    # RFC 8446 4.2.10: a server that rejected 0-RTT skips
                    # records that fail to decrypt (the client's early
                    # data under keys we refused to derive).
                    continue
                self._fatal(alerts.BAD_RECORD_MAC, "record authentication failed")
            except GuardLimitExceeded as exc:
                self._note_guard_trip(str(exc))
                self._fatal(alerts.DECODE_ERROR, f"guard tripped: {exc}")
            except DecodeError as exc:
                # Fail closed: a malformed peer message becomes a fatal
                # decode_error alert and connection teardown, never a
                # stray exception through the event loop.
                self._note_decode_rejected(str(exc))
                self._fatal(alerts.DECODE_ERROR, f"malformed peer message: {exc}")

    def _note_decode_rejected(self, detail: str) -> None:
        self.decode_rejected += 1
        if self.on_decode_rejected:
            self.on_decode_rejected(detail)

    def _note_guard_trip(self, detail: str) -> None:
        self.guard_tripped += 1
        if self.on_guard_tripped:
            self.on_guard_tripped(detail)

    def _on_record(self, content_type: int, payload: bytes) -> None:
        if content_type == ContentType.HANDSHAKE:
            self._handshake_buffer.extend(payload)
            self._drain_handshake_messages()
        elif content_type == ContentType.APPLICATION_DATA:
            if self.is_server and self.state == "WAIT_EOED":
                if self.on_early_data:
                    self.on_early_data(payload)
                return
            if not self.is_established:
                raise TlsAlertError(
                    alerts.UNEXPECTED_MESSAGE, "application data before handshake"
                )
            if payload and self.on_application_data:
                self.on_application_data(payload)
        elif content_type == ContentType.ALERT:
            level, description = alerts.decode_alert(payload)
            if description == alerts.CLOSE_NOTIFY:
                self.peer_closed = True
                if self.on_close:
                    self.on_close()
            else:
                raise TlsAlertError(description, f"peer alert: {alerts.alert_name(description)}")
        elif content_type == ContentType.CHANGE_CIPHER_SPEC:
            pass  # compatibility records are ignored
        else:
            raise TlsAlertError(alerts.UNEXPECTED_MESSAGE, f"record type {content_type}")

    def _drain_handshake_messages(self) -> None:
        while True:
            if len(self._handshake_buffer) < 4:
                return
            length = int.from_bytes(self._handshake_buffer[1:4], "big")
            if length > self.max_handshake_message:
                # A length lie this large would have us buffer forever
                # waiting for bytes that never come; reject it outright.
                raise MessageTooLarge(
                    f"handshake message {self._handshake_buffer[0]} claims "
                    f"{length}B (limit {self.max_handshake_message}B)"
                )
            total = 4 + length
            if len(self._handshake_buffer) < total:
                if len(self._handshake_buffer) > self.max_handshake_buffer:
                    raise GuardLimitExceeded(
                        f"handshake reassembly buffer exceeds "
                        f"{self.max_handshake_buffer}B"
                    )
                return
            raw = bytes(self._handshake_buffer[:total])
            del self._handshake_buffer[:total]
            self._on_handshake_message(raw[0], raw[4:], raw)

    # ------------------------------------------------------------------
    # Handshake state machine
    # ------------------------------------------------------------------

    def _on_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if self.is_server:
            self._server_message(msg_type, body, raw)
        else:
            self._client_message(msg_type, body, raw)

    # -- client ------------------------------------------------------------

    def _client_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if self.state == "WAIT_SH" and msg_type == m.SERVER_HELLO:
            self._client_handle_server_hello(m.ServerHello.from_body(body), raw)
        elif self.state == "WAIT_EE" and msg_type == m.ENCRYPTED_EXTENSIONS:
            msg = m.EncryptedExtensionsMsg.from_body(body)
            self.peer_encrypted_extensions = msg.extensions
            self.early_data_accepted = (
                self.early_data_sent
                and m.get_extension(msg.extensions, m.EXT_EARLY_DATA) is not None
            )
            self.keys.update_transcript(raw)
            self.state = "WAIT_FINISHED" if self.used_psk else "WAIT_CERT"
        elif self.state == "WAIT_CERT" and msg_type == m.CERTIFICATE:
            msg = m.CertificateMsg.from_body(body)
            self.peer_certificate = Certificate.from_bytes(msg.certificate_bytes)
            self.keys.update_transcript(raw)
            self.state = "WAIT_CV"
        elif self.state == "WAIT_CV" and msg_type == m.CERTIFICATE_VERIFY:
            self._client_handle_certificate_verify(
                m.CertificateVerifyMsg.from_body(body), raw
            )
        elif self.state == "WAIT_FINISHED" and msg_type == m.FINISHED:
            self._client_handle_finished(m.FinishedMsg.from_body(body), raw)
        elif msg_type == m.NEW_SESSION_TICKET and self.is_established:
            self._client_handle_ticket(m.NewSessionTicketMsg.from_body(body))
        elif msg_type == m.KEY_UPDATE and self.is_established:
            self._handle_key_update(m.KeyUpdateMsg.from_body(body))
        else:
            raise TlsAlertError(
                alerts.UNEXPECTED_MESSAGE,
                f"client got message {msg_type} in state {self.state}",
            )

    def _client_handle_server_hello(self, hello: m.ServerHello, raw: bytes) -> None:
        if hello.cipher_suite != m.CIPHER_CHACHA20_POLY1305_SHA256:
            raise TlsAlertError(alerts.ILLEGAL_PARAMETER, "unexpected cipher suite")
        selected_psk = m.get_extension(hello.extensions, m.EXT_PRE_SHARED_KEY)
        if selected_psk is not None and self._psk_ticket is not None:
            self.used_psk = True
        elif self._psk_ticket is not None:
            # The server declined our PSK — a ticket sealed under a
            # rotated key, expired, or from another deployment.  That is
            # an operational event, not an attack: restart the key
            # schedule without the PSK, replay our ClientHello into the
            # fresh transcript, and continue as a full 1-RTT handshake.
            # Any early data we sent was implicitly rejected; it is
            # replayed under 1-RTT keys at Finished time, so nothing the
            # application queued behind 0-RTT is dropped.
            self.psk_declined = True
            self._psk_ticket = None
            self.keys = KeySchedule()
            self.keys.update_transcript(self._sent_client_hello)
        key_share = m.get_extension(hello.extensions, m.EXT_KEY_SHARE)
        if key_share is None:
            raise TlsAlertError(alerts.MISSING_EXTENSION, "no key_share in ServerHello")
        server_public = m.parse_key_share_server(key_share)
        self.keys.update_transcript(raw)
        self.keys.input_ecdhe(self._ecdh.exchange(server_public))
        self.decoder.set_key(
            TrafficKeys.from_secret(self.keys.server_handshake_traffic)
        )
        self.state = "WAIT_EE"

    def _client_handle_certificate_verify(
        self, msg: m.CertificateVerifyMsg, raw: bytes
    ) -> None:
        if msg.algorithm != m.SIG_ED25519:
            raise TlsAlertError(alerts.ILLEGAL_PARAMETER, "unexpected sig algorithm")
        if self.config.trust_store is None:
            raise TlsAlertError(alerts.BAD_CERTIFICATE, "client has no trust store")
        expected = self.config.server_name or None
        if not self.config.trust_store.verify(self.peer_certificate, expected):
            raise TlsAlertError(alerts.BAD_CERTIFICATE, "certificate not trusted")
        signed = _CERT_VERIFY_CONTEXT_SERVER + self.keys.transcript_hash()
        from repro.crypto.ed25519 import ed25519_verify

        if not ed25519_verify(self.peer_certificate.public_key, signed, msg.signature):
            raise TlsAlertError(alerts.DECRYPT_ERROR, "CertificateVerify failed")
        self.keys.update_transcript(raw)
        self.state = "WAIT_FINISHED"

    def _client_handle_finished(self, msg: m.FinishedMsg, raw: bytes) -> None:
        expected = self.keys.finished_verify_data(self.keys.server_handshake_traffic)
        if not _hmac.compare_digest(expected, msg.verify_data):
            raise TlsAlertError(alerts.DECRYPT_ERROR, "server Finished mismatch")
        self.keys.update_transcript(raw)
        self.keys.derive_master()

        if self.early_data_sent and self.early_data_accepted:
            eoed = m.EndOfEarlyDataMsg().to_bytes()
            self._send_record(ContentType.HANDSHAKE, eoed)  # still early key
            self.keys.update_transcript(eoed)
        self.encoder.set_key(
            TrafficKeys.from_secret(self.keys.client_handshake_traffic)
        )
        finished = m.FinishedMsg(
            verify_data=self.keys.finished_verify_data(
                self.keys.client_handshake_traffic
            )
        ).to_bytes()
        self._send_record(ContentType.HANDSHAKE, finished)
        self.keys.update_transcript(finished)
        self.keys.derive_resumption()

        self.encoder.set_key(
            TrafficKeys.from_secret(self.keys.client_application_traffic)
        )
        self.decoder.set_key(
            TrafficKeys.from_secret(self.keys.server_application_traffic)
        )
        self.is_established = True
        self.can_send_application_data = True
        self.state = "CONNECTED"
        if self.early_data_sent and not self.early_data_accepted:
            # Rejected 0-RTT: replay the early data under 1-RTT keys.
            self.send(self._pending_early_data)
        if self.on_handshake_complete:
            self.on_handshake_complete()

    def _client_handle_ticket(self, msg: m.NewSessionTicketMsg) -> None:
        psk = KeySchedule.resumption_psk(self.keys.resumption_master_secret, msg.nonce)
        issued_at = self.config.clock() if self.config.clock is not None else -1.0
        ticket = ClientTicket(
            server_name=self.config.server_name,
            identity=msg.ticket,
            psk=psk,
            max_early_data=msg.max_early_data,
            age_add=msg.age_add,
            issued_at=issued_at,
            lifetime=msg.lifetime,
        )
        if self.config.ticket_store is not None:
            self.config.ticket_store.add(ticket)
        if self.on_ticket:
            self.on_ticket(ticket)

    # -- server -----------------------------------------------------------------

    def _server_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if self.state == "START" and msg_type == m.CLIENT_HELLO:
            self._server_handle_client_hello(m.ClientHello.from_body(body), raw)
        elif self.state == "WAIT_EOED" and msg_type == m.END_OF_EARLY_DATA:
            self.keys.update_transcript(raw)
            self.decoder.set_key(
                TrafficKeys.from_secret(self.keys.client_handshake_traffic)
            )
            self.state = "WAIT_FINISHED"
        elif self.state == "WAIT_FINISHED" and msg_type == m.FINISHED:
            self._server_handle_finished(m.FinishedMsg.from_body(body), raw)
        elif msg_type == m.KEY_UPDATE and self.is_established:
            self._handle_key_update(m.KeyUpdateMsg.from_body(body))
        else:
            raise TlsAlertError(
                alerts.UNEXPECTED_MESSAGE,
                f"server got message {msg_type} in state {self.state}",
            )

    def _server_handle_client_hello(self, hello: m.ClientHello, raw: bytes) -> None:
        if m.CIPHER_CHACHA20_POLY1305_SHA256 not in hello.cipher_suites:
            raise TlsAlertError(alerts.HANDSHAKE_FAILURE, "no common cipher suite")
        key_share = m.get_extension(hello.extensions, m.EXT_KEY_SHARE)
        if key_share is None:
            raise TlsAlertError(alerts.MISSING_EXTENSION, "ClientHello without key_share")
        client_public = m.parse_key_share_client(key_share)
        if client_public is None:
            raise TlsAlertError(alerts.HANDSHAKE_FAILURE, "no X25519 key share")
        self.peer_client_hello_extensions = hello.extensions

        # PSK / 0-RTT processing.
        psk: bytes = b""
        binder = b""
        psk_body = m.get_extension(hello.extensions, m.EXT_PRE_SHARED_KEY)
        early_requested = (
            m.get_extension(hello.extensions, m.EXT_EARLY_DATA) is not None
        )
        if psk_body is not None:
            self.psk_offered = True
            identity, _age, binder = m.parse_psk_offer(psk_body)
            try:
                psk, issued_at, lifetime = self._unseal_ticket(identity)
            except _TicketDecline as exc:
                # Unsealing failure is *expected* after a ticket-key
                # rotation or restart with fresh keys: decline the PSK
                # and continue as a full handshake.  The client falls
                # back (see _client_handle_server_hello) instead of
                # paying a torn-down connection.
                self.psk_decline_reason = exc.reason
                psk = b""
            else:
                truncated = raw[: -m.psk_binders_length(len(binder))]
                if not _hmac.compare_digest(_compute_binder(psk, truncated), binder):
                    # A ticket that unseals under *our* key but whose
                    # binder does not match its PSK is an active attack
                    # (a spliced or tampered offer), not a stale cache —
                    # this path stays fatal.
                    raise TlsAlertError(alerts.DECRYPT_ERROR, "PSK binder mismatch")
                if self._ticket_expired(issued_at, lifetime):
                    self.psk_decline_reason = "expired"
                    psk = b""
                else:
                    self.used_psk = True

        self.keys = KeySchedule(psk=psk)
        self.keys.update_transcript(raw)
        early_keys = self.keys.derive_early() if self.used_psk else None
        accept_early = (
            early_requested and self.used_psk and self.config.max_early_data > 0
        )
        if accept_early and self.config.anti_replay is not None:
            # RFC 8446 section 8: the binder is the replay key — a
            # replayed flight carries the identical binder.  On a second
            # sighting (or a full register: fail closed) refuse the early
            # data but keep the PSK resumption; the replayed flight
            # cannot complete the handshake anyway without the client's
            # live Finished.
            if not self.config.anti_replay.observe(binder):
                accept_early = False
                self.early_replay_rejected = True

        self._ecdh = X25519PrivateKey(self._random_bytes(32))
        extensions: List[Tuple[int, bytes]] = [
            (m.EXT_SUPPORTED_VERSIONS, m.build_supported_versions_server()),
            (m.EXT_KEY_SHARE, m.build_key_share_server(self._ecdh.public_bytes)),
        ]
        if self.used_psk:
            extensions.append((m.EXT_PRE_SHARED_KEY, m.build_psk_selected(0)))
        server_hello = m.ServerHello(
            random=self._random_bytes(32),
            session_id=hello.session_id,
            extensions=extensions,
        )
        sh_raw = server_hello.to_bytes()
        self.keys.update_transcript(sh_raw)
        self.keys.input_ecdhe(self._ecdh.exchange(client_public))
        self._send_record(ContentType.HANDSHAKE, sh_raw)
        self.encoder.set_key(
            TrafficKeys.from_secret(self.keys.server_handshake_traffic)
        )

        # EncryptedExtensions — TCPLS's secure control data rides here.
        ee_extensions = list(self.config.extra_encrypted_extensions)
        if accept_early:
            ee_extensions.append((m.EXT_EARLY_DATA, b""))
        ee = m.EncryptedExtensionsMsg(extensions=ee_extensions).to_bytes()
        self.keys.update_transcript(ee)
        self._send_record(ContentType.HANDSHAKE, ee)

        if not self.used_psk:
            if self.config.identity is None:
                raise TlsAlertError(alerts.HANDSHAKE_FAILURE, "server has no identity")
            cert = m.CertificateMsg(
                certificate_bytes=self.config.identity.certificate.to_bytes()
            ).to_bytes()
            self.keys.update_transcript(cert)
            self._send_record(ContentType.HANDSHAKE, cert)
            signed = _CERT_VERIFY_CONTEXT_SERVER + self.keys.transcript_hash()
            cert_verify = m.CertificateVerifyMsg(
                algorithm=m.SIG_ED25519,
                signature=self.config.identity.key.sign(signed),
            ).to_bytes()
            self.keys.update_transcript(cert_verify)
            self._send_record(ContentType.HANDSHAKE, cert_verify)

        finished = m.FinishedMsg(
            verify_data=self.keys.finished_verify_data(
                self.keys.server_handshake_traffic
            )
        ).to_bytes()
        self.keys.update_transcript(finished)
        self._send_record(ContentType.HANDSHAKE, finished)
        self.keys.derive_master()
        # 0.5-RTT: the server may send application data from here on.
        self.encoder.set_key(
            TrafficKeys.from_secret(self.keys.server_application_traffic)
        )
        self.can_send_application_data = True

        if accept_early:
            self.early_data_accepted = True
            self.decoder.set_key(
                TrafficKeys.from_secret(early_keys["client_early_traffic"])
            )
            self.state = "WAIT_EOED"
        else:
            if early_requested:
                self._skipping_early_data = True
            self.decoder.set_key(
                TrafficKeys.from_secret(self.keys.client_handshake_traffic)
            )
            self.state = "WAIT_FINISHED"

    def _server_handle_finished(self, msg: m.FinishedMsg, raw: bytes) -> None:
        expected = self.keys.finished_verify_data(self.keys.client_handshake_traffic)
        if not _hmac.compare_digest(expected, msg.verify_data):
            raise TlsAlertError(alerts.DECRYPT_ERROR, "client Finished mismatch")
        self.keys.update_transcript(raw)
        self.keys.derive_resumption()
        self.decoder.set_key(
            TrafficKeys.from_secret(self.keys.client_application_traffic)
        )
        self.is_established = True
        self.can_send_application_data = True
        self.state = "CONNECTED"
        # Tickets go out before the completion callback: the application
        # may close the transport from inside the callback.
        for _ in range(self.config.send_tickets):
            self._send_new_session_ticket()
        if self.on_handshake_complete:
            self.on_handshake_complete()

    # -- tickets ----------------------------------------------------------------------

    def _send_new_session_ticket(self) -> None:
        nonce = self._random_bytes(8)
        psk = KeySchedule.resumption_psk(self.keys.resumption_master_secret, nonce)
        lifetime = self.config.ticket_lifetime
        ticket_blob = self._seal_ticket(psk, lifetime)
        msg = m.NewSessionTicketMsg(
            lifetime=lifetime,
            age_add=int.from_bytes(self._random_bytes(4), "big"),
            nonce=nonce,
            ticket=ticket_blob,
            max_early_data=self.config.max_early_data,
        )
        raw = msg.to_bytes()
        self._send_record(ContentType.HANDSHAKE, raw)

    def _seal_ticket(self, psk: bytes, lifetime: int) -> bytes:
        """Stateless ticket: AEAD-seal PSK + issue time + lifetime.

        The issue timestamp rides *inside* the sealed blob so the server
        enforces its own lifetime without trusting the client's clock;
        without a configured clock it seals 0 and expiry is disabled.
        """
        issued = self.config.clock() if self.config.clock is not None else 0.0
        plaintext = (
            psk
            + int(max(issued, 0.0) * 1000).to_bytes(8, "big")
            + int(lifetime).to_bytes(4, "big")
        )
        nonce = self._random_bytes(12)
        aead = ChaCha20Poly1305(self.config.ticket_key)
        return nonce + aead.encrypt(nonce, plaintext, b"repro-ticket")

    def _unseal_ticket(self, blob: bytes) -> Tuple[bytes, float, int]:
        """Open a presented ticket; ``_TicketDecline`` on any failure.

        Declines (never fatal alerts): a blob too short to carry the
        AEAD envelope, an authentication failure (rotated or foreign
        ticket key), or a plaintext of the wrong shape (older sealing
        format).  Returns ``(psk, issued_at_seconds, lifetime_seconds)``.
        """
        if len(blob) < 12 + 16:
            raise _TicketDecline("short")
        aead = ChaCha20Poly1305(self.config.ticket_key)
        try:
            plaintext = aead.decrypt(blob[:12], blob[12:], b"repro-ticket")
        except CryptoError as exc:
            raise _TicketDecline("unseal") from exc
        if len(plaintext) != _TICKET_PLAINTEXT_LEN:
            raise _TicketDecline("format")
        psk = plaintext[:32]
        issued_at = int.from_bytes(plaintext[32:40], "big") / 1000.0
        lifetime = int.from_bytes(plaintext[40:44], "big")
        return psk, issued_at, lifetime

    def _ticket_expired(self, issued_at: float, lifetime: int) -> bool:
        if lifetime <= 0 or self.config.clock is None:
            return False
        return self.config.clock() > issued_at + lifetime

    # ------------------------------------------------------------------
    # Application phase
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> None:
        if not self.can_send_application_data:
            raise RuntimeError("send() before handshake completion")
        self._send_record(ContentType.APPLICATION_DATA, data)

    def send_key_update(self, request_peer: bool = False) -> None:
        """RFC 8446 7.2: roll our sending keys (and optionally ask the
        peer to roll theirs).  The AEAD usage limits the paper cites
        (section 2.3) make periodic updates part of long-lived sessions.
        """
        if not self.is_established:
            raise RuntimeError("key update before handshake completion")
        self._send_record(
            ContentType.HANDSHAKE,
            m.KeyUpdateMsg(request_update=request_peer).to_bytes(),
        )
        self.encoder.cipher.rekey()
        self.key_updates_sent += 1

    def _handle_key_update(self, msg: "m.KeyUpdateMsg") -> None:
        # Everything the peer sends after its KeyUpdate uses the next
        # generation; our decoder must roll now (record order preserved).
        self.decoder.cipher.rekey()
        self.key_updates_received += 1
        if msg.request_update:
            self.send_key_update(request_peer=False)

    def send_close_notify(self) -> None:
        self._send_record(
            ContentType.ALERT,
            alerts.encode_alert(alerts.LEVEL_WARNING, alerts.CLOSE_NOTIFY),
        )

    def export(self, label: str, context: bytes, length: int) -> bytes:
        """RFC 8446 exporter — TCPLS derives stream/connection keys here."""
        return self.keys.export(label, context, length)

    def process_handshake_bytes(self, payload: bytes) -> None:
        """Feed already-decrypted post-handshake message bytes.

        TCPLS takes over record decryption after the handshake (it owns
        the per-stream cryptographic contexts); when a record's inner
        type turns out to be HANDSHAKE (e.g. NewSessionTicket), it hands
        the plaintext back to the TLS layer through this entry point.
        """
        self._handshake_buffer.extend(payload)
        try:
            self._drain_handshake_messages()
        except GuardLimitExceeded as exc:
            self._note_guard_trip(str(exc))
            self._fatal(alerts.DECODE_ERROR, f"guard tripped: {exc}")
        except DecodeError as exc:
            self._note_decode_rejected(str(exc))
            self._fatal(alerts.DECODE_ERROR, f"malformed peer message: {exc}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send_record(self, content_type: int, payload: bytes) -> None:
        self._write(self.encoder.encode(content_type, payload))

    def _fatal(self, description: int, message: str) -> None:
        try:
            self._send_record(
                ContentType.ALERT,
                alerts.encode_alert(alerts.LEVEL_FATAL, description),
            )
        except Exception:  # repro: noqa-SEC003 - best-effort alert on a dying connection
            pass
        raise TlsAlertError(description, message)

    def _random_bytes(self, count: int) -> bytes:
        return bytes(self.config.rng.randrange(256) for _ in range(count))


def _compute_binder(psk: bytes, truncated_client_hello: bytes) -> bytes:
    """PSK binder (RFC 8446 4.2.11.2)."""
    schedule = KeySchedule(psk=psk)
    binder_key = schedule.derive_early()["binder_key"]
    finished_key = hkdf_expand_label(binder_key, "finished", b"", 32)
    return _hmac.new(
        finished_key, sha256(truncated_client_hello), hashlib.sha256
    ).digest()
