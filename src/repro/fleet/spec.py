"""Shard-boundary objects: what crosses between fleet processes.

Everything in this module is a plain picklable dataclass (or a pure
function of ints) because it travels through ``multiprocessing`` — the
parent ships :class:`ShardSpec` down to workers and gets
:class:`ShardResult` back.  The FP002 lint rule enforces that every
class defined here is declared in :data:`PICKLE_BOUNDARY` and has a
registered pickle round-trip test (``repro.fleet.CROSSCHECKS``), so the
boundary cannot silently grow an unpicklable or untested object.

Seed derivation
---------------

Every scenario cell gets its own RNG seed derived from the fleet's base
seed and the cell's index via SHA-256 (:func:`derive_cell_seed`).  The
derivation depends only on ``(base_seed, cell_index)`` — never on the
shard count or which worker runs the cell — which is one of the three
legs the merge invariant stands on (the others: per-cell world
isolation, and contiguous-block partitioning; see DESIGN §4i).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Every class in this module that crosses the process boundary.  FP002
#: checks this list against the module's top-level class definitions and
#: against the ``repro.fleet.CROSSCHECKS`` registry.
PICKLE_BOUNDARY: Tuple[str, ...] = (
    "CellSpec",
    "ShardSpec",
    "CellResult",
    "ShardResult",
)


def derive_cell_seed(base_seed: int, cell_index: int) -> int:
    """A 63-bit per-cell seed, stable across shard counts and platforms."""
    digest = hashlib.sha256(
        b"repro.fleet.cell:%d:%d" % (base_seed, cell_index)
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class CellSpec:
    """One independent scenario cell: an isolated simulator world.

    ``params`` stays a plain dict of JSON-able values (floats, ints,
    strings) — the cell runner materializes live objects (networks,
    fault plans) inside the worker, so the spec itself never drags a
    simulator across the pickle boundary.
    """

    index: int
    kind: str = "bulk"
    seed: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    #: Engage ``Simulator.enable_schedule_shake`` with this seed (the
    #: determinism tests run the fleet under shake too).
    shake_seed: Optional[int] = None
    #: When set, the cell writes its wire traffic here as a pcap.
    pcap_path: Optional[str] = None


@dataclass
class ShardSpec:
    """One worker's assignment: a contiguous block of cells.

    Carries the parent's fastpath flag snapshot so a spawned (rather
    than forked) worker would still run the same datapath configuration.
    """

    index: int
    shards: int
    cells: List[CellSpec] = field(default_factory=list)
    fastpath_flags: Dict[str, bool] = field(default_factory=dict)
    profile: bool = True
    #: Per-shard hot-function rows kept for the merge (> the published
    #: top-10 so the merged ranking is exact for anything hot anywhere).
    profile_limit: int = 30


@dataclass
class CellResult:
    """Everything one cell run reduces to (all picklable, all mergeable)."""

    index: int
    kind: str
    event_digest: str
    pcap_digest: str
    clock: float
    events: int
    packets: int
    sessions: int
    telemetry: Dict[str, dict] = field(default_factory=dict)
    timers: Dict[str, dict] = field(default_factory=dict)
    wall_seconds: float = 0.0
    pcap_path: Optional[str] = None


@dataclass
class ShardResult:
    """One worker's barrier contribution."""

    index: int
    cells: List[CellResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    hot_functions: List[dict] = field(default_factory=list)
