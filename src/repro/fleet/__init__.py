"""Sharded fleet simulation: scale-out with a digest-verifiable merge.

The discrete-event engine is single-threaded by design; the fleet buys
throughput the only way that preserves determinism — by running *many
independent worlds* at once and merging their outputs in an order that
cannot depend on scheduling.  See ``repro.fleet.runner`` for the merge
invariant and DESIGN §4i for the architecture.

Quick start::

    from repro.fleet import make_cells, run_fleet

    cells = make_cells(16, base_seed=42, kind="bulk")
    single = run_fleet(cells, workers=1)
    fleet = run_fleet(cells, workers=4)
    assert fleet.event_digest == single.event_digest
"""

from __future__ import annotations

from typing import Dict

from repro.fleet.cells import CELL_KINDS, run_cell
from repro.fleet.runner import (
    FleetResult,
    make_cells,
    partition_cells,
    run_fleet,
    run_shard,
)
from repro.fleet.spec import (
    CellResult,
    CellSpec,
    PICKLE_BOUNDARY,
    ShardResult,
    ShardSpec,
    derive_cell_seed,
)

#: Cross-check registry enforced by the FP002 lint rule: every object
#: crossing the shard boundary must have a pickle round-trip test, and
#: the vectorized queue path must keep its scalar-oracle test.  Same
#: contract as ``repro.fastpath.CROSSCHECKS`` — no shard-boundary object
#: or fleet fast path outlives the test that proves it safe.
CROSSCHECKS: Dict[str, str] = {
    "CellSpec": "tests/fleet/test_pickle_boundary.py",
    "ShardSpec": "tests/fleet/test_pickle_boundary.py",
    "CellResult": "tests/fleet/test_pickle_boundary.py",
    "ShardResult": "tests/fleet/test_pickle_boundary.py",
    "netsim.vectorq": "tests/netsim/test_vectorq.py",
}

__all__ = [
    "CELL_KINDS",
    "CROSSCHECKS",
    "CellResult",
    "CellSpec",
    "FleetResult",
    "PICKLE_BOUNDARY",
    "ShardResult",
    "ShardSpec",
    "derive_cell_seed",
    "make_cells",
    "partition_cells",
    "run_cell",
    "run_fleet",
    "run_shard",
]
