"""The sharded fleet runner: partition, fan out, merge, verify.

``run_fleet`` takes a list of independent scenario cells, partitions
them into contiguous shards, runs each shard — in-process for one
worker, or across a ``multiprocessing`` pool — and merges everything at
the barrier:

- **digests**: the merged event-stream digest is SHA-256 over the
  per-cell digests *in cell-index order*.  Cells are isolated worlds
  with rewound process globals, so a cell's digest is independent of
  the shard that ran it; contiguous-block partitioning makes
  shard-major concatenation equal cell-index order; therefore the
  merged digest is invariant under the shard count, and an N-worker
  run is digest-verifiable against the single-process run;
- **pcaps**: per-cell traces concatenate in the same order
  (``netsim.pcap.merge_pcaps``), with one SHA-256 over the merged
  record stream;
- **telemetry / timers**: per-cell mergeable states reduce through
  ``Telemetry.merge`` / ``SubsystemTimers.merge``;
- **profiles**: each shard runs under its own ``cProfile``; per-shard
  top-K tables merge into one ranked top-10
  (``repro.obs.profiling.merge_hot_functions``).

Workers use the ``fork`` start method (the cell builds its whole world
after the fork, so nothing stateful is inherited that
``reset_process_globals`` does not rewind); where ``fork`` is
unavailable the runner degrades to sequential in-process execution,
which produces identical merged output — only slower.
"""

from __future__ import annotations

import cProfile
import multiprocessing
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro import fastpath
from repro.fleet.cells import run_cell
from repro.fleet.spec import (
    CellSpec,
    CellResult,
    ShardResult,
    ShardSpec,
    derive_cell_seed,
)
from repro.netsim.pcap import merge_pcaps
from repro.obs import keys as obs_keys
from repro.obs import profiling
from repro.obs.telemetry import Telemetry


def make_cells(
    count: int,
    base_seed: int = 0,
    kind: str = "bulk",
    params: Optional[dict] = None,
    shake_seed: Optional[int] = None,
    pcap_dir: Optional[str] = None,
) -> List[CellSpec]:
    """A homogeneous cell set with per-cell derived seeds."""
    cells = []
    for index in range(count):
        pcap_path = None
        if pcap_dir is not None:
            pcap_path = f"{pcap_dir}/cell_{index:04d}.pcap"
        cells.append(
            CellSpec(
                index=index,
                kind=kind,
                seed=derive_cell_seed(base_seed, index),
                params=dict(params or {}),
                shake_seed=shake_seed,
                pcap_path=pcap_path,
            )
        )
    return cells


def partition_cells(
    cells: Sequence[CellSpec], shards: int
) -> List[List[CellSpec]]:
    """Contiguous blocks, sizes differing by at most one.

    Contiguity is load-bearing: concatenating shard outputs in shard
    order must reproduce cell-index order, or the merged digest would
    depend on the shard count.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    shards = min(shards, len(cells)) or 1
    base, extra = divmod(len(cells), shards)
    blocks: List[List[CellSpec]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(list(cells[start : start + size]))
        start += size
    return blocks


def run_shard(spec: ShardSpec) -> ShardResult:
    """Run one shard's cells (worker entry point; also used inline).

    Applies the parent's fastpath flag snapshot first, so workers run
    the datapath configuration the parent decided on regardless of the
    start method.  Profiling wraps the whole cell loop in a shard-local
    ``cProfile`` via ``exclusive_profile`` — which also suspends any
    profiler inherited across the fork (or armed by the benchmark
    conftest in inline mode) instead of colliding with it.
    """
    for name, value in spec.fastpath_flags.items():
        if name in fastpath.flags:
            fastpath.set_enabled(name, value)  # repro: noqa-FP001 - replaying the parent's already-audited flag snapshot
    started = perf_counter()
    hot: List[dict] = []
    if spec.profile:
        profile = cProfile.Profile()
        with profiling.exclusive_profile(profile):
            cells = [run_cell(cell) for cell in spec.cells]
        hot = profiling.hot_functions(profile, limit=spec.profile_limit)
    else:
        cells = [run_cell(cell) for cell in spec.cells]
    return ShardResult(
        index=spec.index,
        cells=cells,
        wall_seconds=perf_counter() - started,
        hot_functions=hot,
    )


@dataclass
class FleetResult:
    """The barrier merge of one fleet run."""

    workers: int
    shards: List[ShardResult] = field(default_factory=list)
    cells: List[CellResult] = field(default_factory=list)
    #: SHA-256 over per-cell event digests, cell-index order.
    event_digest: str = ""
    #: SHA-256 over per-cell pcap-tap digests, cell-index order.
    pcap_digest: str = ""
    #: Digest of the merged pcap file's record stream (when written).
    merged_pcap_path: Optional[str] = None
    merged_pcap_file_digest: Optional[str] = None
    total_events: int = 0
    total_sessions: int = 0
    total_packets: int = 0
    #: Parent-side wall time across the whole fan-out/merge (the number
    #: the scaling curve divides by).
    wall_seconds: float = 0.0
    telemetry: Optional[Telemetry] = None
    timers_state: Dict[str, dict] = field(default_factory=dict)
    hot_functions: List[dict] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        return self.total_events / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def sessions_per_second(self) -> float:
        return (
            self.total_sessions / self.wall_seconds if self.wall_seconds else 0.0
        )

    def to_metrics(self) -> dict:
        """JSON-ready summary for the BENCH export."""
        return {
            "workers": self.workers,
            "cells": len(self.cells),
            "event_digest": self.event_digest,
            "pcap_digest": self.pcap_digest,
            "merged_pcap_file_digest": self.merged_pcap_file_digest,
            "total_events": self.total_events,
            "total_sessions": self.total_sessions,
            "total_packets": self.total_packets,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "sessions_per_second": self.sessions_per_second,
            "shard_wall_seconds": [shard.wall_seconds for shard in self.shards],
            "telemetry": self.telemetry.snapshot() if self.telemetry else {},
            "profiling": {"top_functions": self.hot_functions},
        }


def _fork_context():
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def run_fleet(
    cells: Sequence[CellSpec],
    workers: int = 1,
    profile: bool = True,
    merge_pcap_path: Optional[str] = None,
) -> FleetResult:
    """Partition ``cells`` across ``workers``, run, and merge.

    ``workers=1`` runs everything in-process (the digest reference the
    sharded runs are verified against).  ``merge_pcap_path`` additionally
    concatenates the per-cell pcaps (cells must have ``pcap_path`` set)
    into one auditable trace with a record-stream digest.
    """
    if not cells:
        raise ValueError("a fleet run needs at least one cell")
    import hashlib

    blocks = partition_cells(cells, workers)
    flags = fastpath.all_enabled()
    specs = [
        ShardSpec(
            index=index,
            shards=len(blocks),
            cells=block,
            fastpath_flags=flags,
            profile=profile,
        )
        for index, block in enumerate(blocks)
    ]

    started = perf_counter()
    context = _fork_context() if len(specs) > 1 else None
    if context is None:
        shard_results = [run_shard(spec) for spec in specs]
    else:
        with context.Pool(processes=len(specs)) as pool:
            shard_results = pool.map(run_shard, specs)
    wall = perf_counter() - started

    # Shard-major concatenation == cell-index order (contiguous blocks).
    merged_cells: List[CellResult] = []
    for shard in shard_results:
        merged_cells.extend(shard.cells)

    event_hash = hashlib.sha256()
    pcap_hash = hashlib.sha256()
    for cell in merged_cells:
        event_hash.update(cell.event_digest.encode("ascii"))
        pcap_hash.update(cell.pcap_digest.encode("ascii"))

    merged_pcap_path = None
    merged_pcap_file_digest = None
    if merge_pcap_path is not None:
        paths = [cell.pcap_path for cell in merged_cells if cell.pcap_path]
        if paths:
            merged_pcap_path, merged_pcap_file_digest = merge_pcaps(
                paths, merge_pcap_path
            )

    telemetry = Telemetry.merge(cell.telemetry for cell in merged_cells)
    telemetry.counter(obs_keys.COMP_FLEET, obs_keys.FLEET_SHARDS).inc(
        len(shard_results)
    )
    wall_hist = telemetry.histogram(
        obs_keys.COMP_FLEET, obs_keys.FLEET_SHARD_WALL_SECONDS
    )
    for shard in shard_results:
        wall_hist.observe(shard.wall_seconds)

    timers = profiling.SubsystemTimers.merge(
        cell.timers for cell in merged_cells
    )
    hot = profiling.merge_hot_functions(
        (shard.hot_functions for shard in shard_results),
        limit=profiling.TOP_FUNCTIONS,
    )

    return FleetResult(
        workers=len(specs),
        shards=list(shard_results),
        cells=merged_cells,
        event_digest=event_hash.hexdigest(),
        pcap_digest=pcap_hash.hexdigest(),
        merged_pcap_path=merged_pcap_path,
        merged_pcap_file_digest=merged_pcap_file_digest,
        total_events=sum(cell.events for cell in merged_cells),
        total_sessions=sum(cell.sessions for cell in merged_cells),
        total_packets=sum(cell.packets for cell in merged_cells),
        wall_seconds=wall,
        telemetry=telemetry,
        timers_state=timers.state(),
        hot_functions=hot,
    )
