"""Scenario-cell runners: one isolated simulator world per cell.

A cell is the fleet's unit of work and of verification.  ``run_cell``
rewinds the process-global counters, builds a fresh world from the
cell's derived seed, runs it under a determinism probe, and reduces the
run to a :class:`~repro.fleet.spec.CellResult`: digests, counters,
mergeable telemetry/timer state.  Because nothing a cell touches
outlives it (and nothing from a previous cell leaks in), a cell's
digests depend only on its spec — not on which process, which shard, or
which position in the batch ran it.  That per-cell isolation is the
first leg of the fleet's merge invariant.

Three cell kinds ship:

- ``bulk`` — one TCPLS client/server pair over a duplex link moving a
  seeded payload across two streams (the smoke-scenario shape,
  parameterized);
- ``churn`` — a small ``repro.scale`` server-farm run (session pool,
  arrivals/departures) for many-session workloads;
- ``overload`` — an open-loop ``repro.overload`` storm against an
  admission-gated listener, with optional scripted workload faults
  (``stampede_at``/``slow_at``/``mem_at``...).

All accept an optional scripted link flap (``params["flap_at"]`` /
``params["flap_duration"]``) so the determinism-under-sharding tests
cover the fault path, and all honour ``spec.shake_seed`` and
``spec.pcap_path``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Tuple

from repro.analysis.sanitizers import DeterminismProbe, reset_process_globals
from repro.fleet.spec import CellResult, CellSpec
from repro.netsim.pcap import PcapWriter
from repro.obs import keys as obs_keys
from repro.obs.profiling import SubsystemTimers
from repro.obs.telemetry import Telemetry


def _seeded_payload(seed: int, size: int) -> bytes:
    """A deterministic, seed-dependent byte pattern (no RNG draws)."""
    step = (seed % 251) + 1
    return bytes(((i * step + seed) & 0xFF) for i in range(size))


def _fault_plan(params: dict):
    """The cell's scripted fault plan, or None."""
    flap_at = params.get("flap_at")
    if flap_at is None:
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan(name="fleet-flap").flap(
        at=float(flap_at),
        duration=float(params.get("flap_duration", 0.05)),
        path=0,
    )


def _run_bulk(spec: CellSpec, probe: DeterminismProbe) -> int:
    from repro.core.session import TcplsContext, TcplsServer, TcplsSession
    from repro.netsim.scenarios import simple_duplex_network
    from repro.tcp.stack import TcpStack
    from repro.tls.certificates import CertificateAuthority, TrustStore
    from repro.tls.session import SessionTicketStore

    params = spec.params
    net, client_host, server_host, link = simple_duplex_network(
        rate_bps=float(params.get("rate_bps", 100e6)),
        delay=float(params.get("delay", 0.005)),
        queue_packets=int(params.get("queue_packets", 200)),
        loss_rate=float(params.get("loss_rate", 0.0)),
        seed=spec.seed & 0xFFFFFFFF,
    )
    probe.watch(net.sim)
    probe.tap(link, link.endpoint(0))
    probe.tap(link, link.endpoint(1))
    writer = None
    if spec.pcap_path:
        writer = PcapWriter(spec.pcap_path, net.sim)
        link.add_transformer(link.endpoint(0), writer)
        link.add_transformer(link.endpoint(1), writer)

    plan = _fault_plan(params)
    if plan is not None:
        from repro.faults.chaos import ChaosEngine

        ChaosEngine(net.sim, [link]).apply(plan)

    ca = CertificateAuthority("Repro Root", seed=b"fleet-root")
    identity = ca.issue_identity("server.example", seed=b"fleet-srv")
    trust = TrustStore()
    trust.add_authority(ca)
    client_ctx = TcplsContext(
        trust_store=trust,
        server_name="server.example",
        ticket_store=SessionTicketStore(),
        seed=spec.seed,
    )
    server_ctx = TcplsContext(identity=identity, seed=spec.seed + 1)
    client_stack = TcpStack(client_host, seed=spec.seed & 0x7FFFFFFF)
    server_stack = TcpStack(server_host, seed=(spec.seed + 1) & 0x7FFFFFFF)
    sessions: list = []
    TcplsServer(server_ctx, server_stack, port=443, on_session=sessions.append)
    client = TcplsSession(client_ctx, client_stack)

    client.connect("10.0.0.2")
    client.handshake()
    net.sim.run(until=1.0)

    payload = _seeded_payload(spec.seed, int(params.get("payload_bytes", 40_000)))
    first = client.stream_new()
    second = client.stream_new()
    client.streams_attach()
    client.send(first, payload)
    client.send(second, payload[::-1])
    net.sim.run(until=float(params.get("until", 5.0)))
    client.close()
    net.sim.run(until=float(params.get("until", 5.0)) + 1.0)

    if writer is not None:
        writer.close()
    return 1


def _run_churn(spec: CellSpec, probe: DeterminismProbe) -> int:
    from repro.scale.loadgen import ScaleConfig, run_scale

    params = spec.params
    config = ScaleConfig(
        sessions=int(params.get("sessions", 30)),
        reuse_fraction=float(params.get("reuse_fraction", 0.25)),
        listeners=int(params.get("listeners", 2)),
        client_hosts=int(params.get("client_hosts", 2)),
        arrival_span=float(params.get("arrival_span", 0.5)),
        hold_time=float(params.get("hold_time", 0.2)),
        seed=spec.seed & 0x7FFFFFFF,
    )
    writer_holder: list = []

    def on_world(world) -> None:
        probe.watch(world.sim)
        for link in world.links:
            probe.tap(link, link.endpoint(0))
            probe.tap(link, link.endpoint(1))
        if spec.pcap_path:
            writer = PcapWriter(spec.pcap_path, world.sim)
            writer_holder.append(writer)
            for link in world.links:
                link.add_transformer(link.endpoint(0), writer)
                link.add_transformer(link.endpoint(1), writer)

    result = run_scale(
        config,
        fault_plan=_fault_plan(params),
        until=params.get("until"),
        on_world=on_world,
    )
    for writer in writer_holder:
        writer.close()
    return result.requests_completed


def _overload_plan(params: dict):
    """Scripted overload faults (plus any link flap), or None."""
    from repro.faults.plan import FaultPlan

    plan = _fault_plan(params)
    extra = FaultPlan(name="fleet-overload")
    if "stampede_at" in params:
        extra.client_stampede(
            float(params["stampede_at"]),
            count=int(params.get("stampede_count", 10)),
        )
    if "slow_at" in params:
        extra.slow_reader(
            float(params["slow_at"]),
            float(params.get("slow_duration", 0.5)),
        )
    if "mem_at" in params:
        extra.memory_pressure(
            float(params["mem_at"]),
            float(params.get("mem_duration", 0.5)),
            factor=float(params.get("mem_factor", 0.1)),
        )
    if not len(extra):
        return plan
    return extra if plan is None else plan + extra


def _run_overload(spec: CellSpec, probe: DeterminismProbe) -> int:
    from repro.overload.world import OverloadConfig, run_overload

    params = spec.params
    config = OverloadConfig(
        capacity_rate=float(params.get("capacity_rate", 20.0)),
        offered_multiplier=float(params.get("offered_multiplier", 2.0)),
        duration=float(params.get("duration", 1.5)),
        client_hosts=int(params.get("client_hosts", 2)),
        seed=spec.seed & 0x7FFFFFFF,
    )
    writer_holder: list = []

    def on_world(world) -> None:
        probe.watch(world.sim)
        for link in world.links:
            probe.tap(link, link.endpoint(0))
            probe.tap(link, link.endpoint(1))
        if spec.pcap_path:
            writer = PcapWriter(spec.pcap_path, world.sim)
            writer_holder.append(writer)
            for link in world.links:
                link.add_transformer(link.endpoint(0), writer)
                link.add_transformer(link.endpoint(1), writer)

    result = run_overload(
        config,
        fault_plan=_overload_plan(params),
        until=params.get("until"),
        on_world=on_world,
    )
    for writer in writer_holder:
        writer.close()
    return result.completed


_KINDS: Dict[str, Callable[[CellSpec, DeterminismProbe], int]] = {
    "bulk": _run_bulk,
    "churn": _run_churn,
    "overload": _run_overload,
}

CELL_KINDS: Tuple[str, ...] = tuple(sorted(_KINDS))


def run_cell(spec: CellSpec) -> CellResult:
    """Run one cell in an isolated world and reduce it to a result."""
    try:
        runner = _KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {spec.kind!r} (have {', '.join(CELL_KINDS)})"
        ) from None
    reset_process_globals()
    probe = DeterminismProbe(shake_seed=spec.shake_seed)
    timers = SubsystemTimers(enabled=True)
    started = perf_counter()
    with timers.section("fleet.cell"):
        sessions = runner(spec, probe)
    wall = perf_counter() - started
    digest = probe.digest()

    telemetry = Telemetry(enabled=True)
    telemetry.counter(obs_keys.COMP_FLEET, obs_keys.FLEET_CELLS).inc(1)
    telemetry.counter(obs_keys.COMP_FLEET, obs_keys.FLEET_EVENTS).inc(
        digest.events
    )
    telemetry.counter(obs_keys.COMP_FLEET, obs_keys.FLEET_SESSIONS).inc(sessions)
    return CellResult(
        index=spec.index,
        kind=spec.kind,
        event_digest=digest.event_hash,
        pcap_digest=digest.pcap_hash,
        clock=digest.clock,
        events=digest.events,
        packets=digest.packets,
        sessions=sessions,
        telemetry=telemetry.export_state(),
        timers=timers.state(),
        wall_seconds=wall,
        pcap_path=spec.pcap_path,
    )
