"""Protocol feature comparison — the machinery behind Table 1."""

from repro.compare.features import (
    FEATURES,
    PAPER_TABLE,
    PROTOCOLS,
    evaluate_feature,
    evaluate_matrix,
    render_table,
)

__all__ = [
    "FEATURES",
    "PAPER_TABLE",
    "PROTOCOLS",
    "evaluate_feature",
    "evaluate_matrix",
    "render_table",
]
