"""Minimal UDP on the simulated network (the substrate under mini-QUIC).

Real 8-byte UDP headers on the wire; per-host port demultiplexing.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from repro.netsim.node import Host, Interface
from repro.netsim.packet import Datagram, IPAddress, PROTO_UDP, parse_address

UDP_HEADER_LEN = 8


def encode_udp(src_port: int, dst_port: int, payload: bytes) -> bytes:
    # Checksum omitted (optional in IPv4; our links don't corrupt silently).
    return struct.pack("!HHHH", src_port, dst_port, 8 + len(payload), 0) + payload


def decode_udp(data: bytes) -> Tuple[int, int, bytes]:
    if len(data) < UDP_HEADER_LEN:
        raise ValueError("UDP datagram shorter than header")
    src_port, dst_port, length, _checksum = struct.unpack("!HHHH", data[:8])
    return src_port, dst_port, data[8 : length]


class UdpStack:
    """Per-host UDP: bind ports, send datagrams."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.sim = host.sim
        self._handlers: Dict[int, Callable] = {}
        self._next_ephemeral = 49152
        host.register_protocol(PROTO_UDP, self._on_datagram)

    def bind(
        self, port: int, handler: Callable[[IPAddress, int, bytes], None]
    ) -> int:
        """Bind ``handler(src_addr, src_port, payload)``; 0 = ephemeral."""
        if port == 0:
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._handlers:
            raise ValueError(f"UDP port {port} already bound")
        self._handlers[port] = handler
        return port

    def unbind(self, port: int) -> None:
        self._handlers.pop(port, None)

    def send(
        self,
        src_port: int,
        dst,
        dst_port: int,
        payload: bytes,
        src: Optional[str] = None,
    ) -> bool:
        dst_addr = parse_address(dst) if isinstance(dst, str) else dst
        if src is not None:
            src_addr = parse_address(src) if isinstance(src, str) else src
        else:
            out = self.host.lookup_route(dst_addr)
            if out is None:
                return False
            src_addr = out.address_for_family(dst_addr.version)
            if src_addr is None:
                return False
        return self.host.send_ip(
            Datagram(
                src=src_addr,
                dst=dst_addr,
                protocol=PROTO_UDP,
                payload=encode_udp(src_port, dst_port, payload),
            )
        )

    def _on_datagram(self, datagram: Datagram, interface: Interface) -> None:
        try:
            src_port, dst_port, payload = decode_udp(datagram.payload)
        except ValueError:
            return
        handler = self._handlers.get(dst_port)
        if handler is not None:
            handler(datagram.src, src_port, payload)
