"""The discrete-event engine at the bottom of the whole reproduction.

``Simulator`` keeps a priority queue of timestamped callbacks.  Protocol
stacks never sleep or poll; they schedule continuations.  Determinism
rules:

- ties on the timestamp are broken by insertion order (a monotonically
  increasing sequence number), so two events at the same instant always
  run in the order they were scheduled;
- all randomness used by links/middleboxes comes from ``Random`` instances
  seeded at construction.

``pending_events`` is O(1): a live counter tracks scheduled-minus-
(cancelled-or-executed) events instead of scanning the heap.  The engine
also keeps cheap wall-clock profiling (total ``run()`` time and an
events-per-second gauge) that ``attach_observability`` mirrors into the
telemetry registry for the perf benchmarks.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, Optional

from repro import fastpath
from repro.netsim.timerwheel import TimerWheel
from repro.obs import keys
from repro.utils.errors import ReentrancyError


class Event:
    """A scheduled callback; keep the handle to be able to cancel it."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call more than once.

        Also safe after the event already fired or was discarded: the
        engine clears ``_owner`` when it consumes the event, so a late
        cancel (a stale RTO handle kept across teardown, say) cannot
        decrement the live-event counter a second time.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._owner is not None:
                self._owner._live_events -= 1
                self._owner = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A single-threaded discrete-event loop with float-seconds time."""

    # Absolute-time scheduling tolerance: a target computed as
    # ``now + rtt - elapsed`` can land one float ulp before ``now``;
    # deltas smaller than a nanosecond are clock noise, not the past.
    TIME_EPSILON = 1e-9

    def __init__(self) -> None:
        self.now: float = 0.0
        # Pending-event store, fixed for the simulator's lifetime: with
        # netsim.wheel on it is a hierarchical ``TimerWheel``; otherwise
        # a heap — the netsim.fast path stores (time, seq, event) tuples
        # so ordering uses C-level tuple comparison, and the reference
        # path stores the ``Event`` objects themselves and orders via
        # ``Event.__lt__`` exactly as the pre-fast-path engine did.  All
        # three produce the identical (time, seq) execution order.
        self._tuple_queue = fastpath.flags["netsim.fast"]
        self._wheel: Optional[TimerWheel] = (
            TimerWheel() if fastpath.flags["netsim.wheel"] else None
        )
        self._queue: list = []
        self._seq = 0
        self._events_processed = 0
        self._live_events = 0  # scheduled minus cancelled/executed
        self.run_wall_seconds = 0.0  # wall-clock time spent inside run()
        self._obs_events = None  # optional telemetry counter
        self._obs_rate = None  # optional events/sec gauge
        self._obs_wall = None  # optional wall-seconds gauge
        self._event_hook: Optional[Callable[[float, int], None]] = None
        self._shake_key: Optional[int] = None
        self._running = False  # reentrancy sanitizer: inside run()?

    def attach_event_hook(self, hook: Optional[Callable[[float, int], None]]) -> None:
        """Observe every executed event as ``hook(time, seq)``.

        Pure observation for the determinism sanitizer: the hook sees the
        exact (time, seq) execution order and must not touch the engine.
        """
        self._event_hook = hook

    def enable_schedule_shake(self, seed: int) -> None:
        """Perturb equal-time tie-break order, deterministically per seed.

        Replaces the insertion sequence number with a bijection of it
        (xor + odd multiply in 32 bits), so events at the same timestamp
        execute in a *different but reproducible* order.  Two runs under
        the same shake seed must still match bit-for-bit; code whose
        behaviour leaks the arbitrary tie order is flushed out by
        comparing digests across *different* shake seeds.  Must be called
        before anything is scheduled.
        """
        if self._seq or self._queue or (self._wheel is not None and self._wheel):
            raise ValueError("schedule shake must be enabled before scheduling")
        self._shake_key = seed & 0xFFFFFFFF

    def attach_observability(self, obs) -> None:
        """Mirror the processed-event count into a telemetry registry.

        Pure observation: attaching never changes scheduling order,
        event counts, or the clock.  Also exposes wall-clock profiling:
        total seconds spent inside ``run()`` and the resulting
        events-per-second rate.
        """
        self._obs_events = obs.telemetry.counter(
            keys.COMP_ENGINE, keys.ENGINE_EVENTS_PROCESSED
        )
        self._obs_rate = obs.telemetry.gauge(
            keys.COMP_ENGINE, keys.ENGINE_EVENTS_PER_SECOND
        )
        self._obs_wall = obs.telemetry.gauge(
            keys.COMP_ENGINE, keys.ENGINE_RUN_WALL_SECONDS
        )

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def events_per_second(self) -> float:
        """Processed events per wall-clock second inside ``run()``."""
        if self.run_wall_seconds <= 0:
            return 0.0
        return self._events_processed / self.run_wall_seconds

    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        if self._shake_key is not None:
            # Deterministic bijection on 32 bits: same seed -> same shaken
            # order, different seed -> different equal-time tie-breaks.
            seq = ((seq ^ self._shake_key) * 0x9E3779B1) & 0xFFFFFFFF
        event = Event(self.now + delay, seq, callback, args)
        event._owner = self
        if self._wheel is not None:
            self._wheel.push(event.time, seq, event)
        elif self._tuple_queue:
            heapq.heappush(self._queue, (event.time, seq, event))
        else:
            heapq.heappush(self._queue, event)
        self._seq += 1
        self._live_events += 1
        return event

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Run ``callback`` at an absolute simulated time.

        A target equal to ``now`` may subtract to a tiny negative delta
        (one ulp) after float arithmetic; clamp anything smaller than
        ``TIME_EPSILON`` to zero instead of crashing a deterministic
        replay.  Genuinely past times still raise.
        """
        delay = time - self.now
        if -self.TIME_EPSILON < delay < 0:
            delay = 0.0
        return self.schedule(delay, callback, *args)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Process events in order until the queue drains or ``until`` passes.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if the queue drained earlier, so follow-up scheduling is intuitive.
        """
        if self._running:
            raise ReentrancyError(
                "Simulator.run() re-entered from inside an event handler; "
                "schedule a continuation instead"
            )
        self._running = True
        processed = 0
        wall_start = _time.perf_counter()
        queue = self._queue
        wheel = self._wheel
        heappop = heapq.heappop
        tuple_queue = self._tuple_queue
        event_hook = self._event_hook
        try:
            if wheel is not None:
                while wheel:
                    event = wheel.peek()
                    if until is not None and event.time > until:
                        break
                    if event.cancelled:
                        wheel.pop()
                        continue
                    # Check the cap BEFORE popping: the event that trips it
                    # must stay queued so a follow-up run() resumes without
                    # losing it.
                    if processed >= max_events:
                        raise RuntimeError(
                            f"simulation exceeded {max_events} events; likely a loop"
                        )
                    wheel.pop()
                    event._owner = None
                    self._live_events -= 1
                    self.now = event.time
                    if event_hook is not None:
                        event_hook(event.time, event.seq)
                    event.callback(*event.args)
                    processed += 1
                    self._events_processed += 1
                    if self._obs_events is not None:
                        self._obs_events.inc()
            else:
                while queue:
                    head = queue[0]
                    event = head[2] if tuple_queue else head
                    if until is not None and event.time > until:
                        break
                    if event.cancelled:
                        heappop(queue)
                        continue
                    # Check the cap BEFORE popping: the event that trips it
                    # must stay queued so a follow-up run() resumes without
                    # losing it.
                    if processed >= max_events:
                        raise RuntimeError(
                            f"simulation exceeded {max_events} events; likely a loop"
                        )
                    heappop(queue)
                    event._owner = None
                    self._live_events -= 1
                    self.now = event.time
                    if event_hook is not None:
                        event_hook(event.time, event.seq)
                    event.callback(*event.args)
                    processed += 1
                    self._events_processed += 1
                    if self._obs_events is not None:
                        self._obs_events.inc()
        finally:
            self._running = False
            self.run_wall_seconds += _time.perf_counter() - wall_start
            if self._obs_wall is not None:
                self._obs_wall.set(self.run_wall_seconds)
            if self._obs_rate is not None:
                self._obs_rate.set(self.events_per_second)
        if until is not None and until > self.now:
            self.now = until

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain the queue completely."""
        self.run(until=None, max_events=max_events)

    def pending_events(self) -> int:
        """Live (scheduled, not cancelled, not yet executed) events — O(1)."""
        return self._live_events
