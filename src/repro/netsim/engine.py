"""The discrete-event engine at the bottom of the whole reproduction.

``Simulator`` keeps a priority queue of timestamped callbacks.  Protocol
stacks never sleep or poll; they schedule continuations.  Determinism
rules:

- ties on the timestamp are broken by insertion order (a monotonically
  increasing sequence number), so two events at the same instant always
  run in the order they were scheduled;
- all randomness used by links/middleboxes comes from ``Random`` instances
  seeded at construction.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback; keep the handle to be able to cancel it."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A single-threaded discrete-event loop with float-seconds time."""

    # Absolute-time scheduling tolerance: a target computed as
    # ``now + rtt - elapsed`` can land one float ulp before ``now``;
    # deltas smaller than a nanosecond are clock noise, not the past.
    TIME_EPSILON = 1e-9

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._obs_events = None  # optional telemetry counter

    def attach_observability(self, obs) -> None:
        """Mirror the processed-event count into a telemetry registry.

        Pure observation: attaching never changes scheduling order,
        event counts, or the clock.
        """
        self._obs_events = obs.telemetry.counter("engine", "events_processed")

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Run ``callback`` at an absolute simulated time.

        A target equal to ``now`` may subtract to a tiny negative delta
        (one ulp) after float arithmetic; clamp anything smaller than
        ``TIME_EPSILON`` to zero instead of crashing a deterministic
        replay.  Genuinely past times still raise.
        """
        delay = time - self.now
        if -self.TIME_EPSILON < delay < 0:
            delay = 0.0
        return self.schedule(delay, callback, *args)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Process events in order until the queue drains or ``until`` passes.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if the queue drained earlier, so follow-up scheduling is intuitive.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            # Check the cap BEFORE popping: the event that trips it must
            # stay queued so a follow-up run() resumes without losing it.
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a loop"
                )
            heapq.heappop(self._queue)
            self.now = event.time
            event.callback(*event.args)
            processed += 1
            self._events_processed += 1
            if self._obs_events is not None:
                self._obs_events.inc()
        if until is not None and until > self.now:
            self.now = until

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain the queue completely."""
        self.run(until=None, max_events=max_events)

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)
