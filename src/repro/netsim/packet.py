"""IP-layer datagrams.

The IP layer is structured (a dataclass) while the transport payload is
real serialized bytes: middleboxes parse and rewrite genuine TCP headers,
which is what makes the paper's middlebox-interference experiments
meaningful.  Addresses are ``ipaddress`` objects; a datagram is v4 or v6
according to its source address family.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Union

from repro import fastpath

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

PROTO_TCP = 6
PROTO_UDP = 17

IPV4_HEADER_LEN = 20
IPV6_HEADER_LEN = 40

_next_packet_id = 0


def _allocate_packet_id() -> int:
    global _next_packet_id
    _next_packet_id += 1
    return _next_packet_id


@dataclass
class Datagram:
    """One IP datagram in flight."""

    src: IPAddress
    dst: IPAddress
    protocol: int
    payload: bytes
    hop_limit: int = 64
    packet_id: int = field(default_factory=_allocate_packet_id)

    def __post_init__(self) -> None:
        if self.src.version != self.dst.version:
            raise ValueError(
                f"address family mismatch: {self.src} -> {self.dst}"
            )
        # All fields that determine the wire size are effectively
        # immutable after construction (middleboxes rewrite via
        # ``copy()``, which builds a new datagram), so precompute the
        # values the link layer reads on every enqueue/delivery instead
        # of paying property-call overhead per packet.
        version = self.src.version
        self.version = version
        self.header_length = IPV4_HEADER_LEN if version == 4 else IPV6_HEADER_LEN
        # Total on-wire size in bytes (IP header + payload).
        self.size = self.header_length + len(self.payload)

    def copy(self, **overrides) -> "Datagram":
        """Clone with modifications; used by middleboxes that rewrite
        and by every router hop (``hop_limit`` decrement).

        Fast path (``netsim.fast``): skips the dataclass ``__init__``
        and fills the instance dict directly; ``__post_init__`` still
        runs whenever a field other than ``hop_limit`` changed, so the
        family check and the derived size fields stay exactly as a
        fresh construction would set them.
        """
        if fastpath.flags["netsim.fast"]:
            clone = object.__new__(Datagram)
            state = dict(self.__dict__)
            if overrides:
                state.update(overrides)
            if "packet_id" not in overrides:
                state["packet_id"] = _allocate_packet_id()
            clone.__dict__ = state
            if overrides and not overrides.keys() <= {"hop_limit", "packet_id"}:
                # Addresses or payload changed: revalidate the family
                # pairing and recompute the derived size fields.  A
                # hop-limit-only clone (the router forwarding path)
                # inherits them unchanged.
                clone.__post_init__()
            return clone
        fields = {
            "src": self.src,
            "dst": self.dst,
            "protocol": self.protocol,
            "payload": self.payload,
            "hop_limit": self.hop_limit,
        }
        fields.update(overrides)
        return Datagram(**fields)

    def summary(self) -> str:
        proto = {PROTO_TCP: "TCP", PROTO_UDP: "UDP"}.get(
            self.protocol, str(self.protocol)
        )
        return f"[{self.src} -> {self.dst} {proto} {len(self.payload)}B]"


def parse_address(text: str) -> IPAddress:
    """Parse a literal IPv4 or IPv6 address."""
    return ipaddress.ip_address(text)
