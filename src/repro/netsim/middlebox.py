"""Programmable middleboxes, the antagonists of the paper.

Middleboxes install as link transformers (``Link.add_transformer``) and
operate on real TCP header bytes: they can strip options, rewrite
addresses (NAT), forge RSTs, mangle SYNs like a transparent proxy, or
block TCP Fast Open.  Because TLS record payloads are AEAD-protected,
none of them can touch the TCPLS control channel — which is exactly the
paper's argument for moving control data there.

Fast path (``fastpath`` feature ``netsim.fast``): every box first peeks
at the fixed TCP header (:class:`~repro.tcp.segment.TcpHeaderPeek`) and
only the packets it actually rewrites pay for a full parse → mutate →
reserialize round trip; NAT and the payload corruptor skip even that by
patching the raw bytes in place and refreshing the checksum.  Both
paths emit byte-identical packets (proved by the wire-fidelity tests).
"""

from __future__ import annotations

import struct

from typing import Callable, Iterable, Optional

from repro import fastpath
from repro.netsim.packet import Datagram, PROTO_TCP
from repro.tcp.options import (
    KIND_FAST_OPEN,
    MaximumSegmentSize,
    TcpOption,
)
from repro.tcp.segment import Flags, TcpHeaderPeek, TcpSegment, patch_checksum
from repro.utils.errors import DecodeError


def _parse_tcp(datagram: Datagram) -> Optional[TcpSegment]:
    if datagram.protocol != PROTO_TCP:
        return None
    try:
        return TcpSegment.from_bytes(
            datagram.payload, datagram.src, datagram.dst, verify_checksum=False
        )
    except DecodeError:
        return None


def _peek_tcp(datagram: Datagram) -> Optional[TcpHeaderPeek]:
    """Header peek when the "netsim.fast" path is on, else None.

    Returning None sends the caller down the reference parse path, so a
    packet the peek cannot read gets the same treatment either way.
    """
    if datagram.protocol != PROTO_TCP or not fastpath.flags["netsim.fast"]:
        return None
    return TcpHeaderPeek.of(datagram.payload)


def _reserialize(datagram: Datagram, segment: TcpSegment, **overrides) -> Datagram:
    src = overrides.get("src", datagram.src)
    dst = overrides.get("dst", datagram.dst)
    return datagram.copy(payload=segment.to_bytes(src, dst), **overrides)


class OptionStripper:
    """Removes TCP options of the given kinds — the classic extension killer.

    The paper cites measurements (Honda et al.) showing paths where
    middleboxes add, remove, or change TCP options; this models "remove".
    """

    def __init__(self, kinds: Iterable[int]) -> None:
        self.kinds = set(kinds)
        self.stripped_count = 0

    def __call__(self, datagram: Datagram):
        peek = _peek_tcp(datagram)
        if peek is not None and not set(peek.option_kinds()) & self.kinds:
            return datagram  # nothing to strip: forward the bytes untouched
        segment = _parse_tcp(datagram)
        if segment is None:
            return datagram
        kept = [option for option in segment.options if option.kind not in self.kinds]
        if len(kept) == len(segment.options):
            return datagram
        self.stripped_count += len(segment.options) - len(kept)
        segment.options = kept
        return _reserialize(datagram, segment)


class RstInjector:
    """Forges a RST toward the receiver after a byte threshold on a flow.

    Models middleboxes that "force the termination of TCP connections by
    sending RST packets" (paper section 2.1, citing RFC 3360).  Installed
    on one direction; once triggered, the original packet is replaced by
    a forged RST carrying valid sequence numbers, and all later packets
    of that flow are dropped (the box has "terminated" the connection).
    """

    def __init__(self, trigger_bytes: int, match: Optional[Callable] = None) -> None:
        self.trigger_bytes = trigger_bytes
        self.match = match
        self.seen_bytes = 0
        self.fired = False

    def __call__(self, datagram: Datagram):
        if self.match is None:
            peek = _peek_tcp(datagram)
            if peek is not None:
                self.seen_bytes += peek.payload_length
                if self.fired or self.seen_bytes < self.trigger_bytes:
                    return datagram
                self.seen_bytes -= peek.payload_length  # recounted below
        segment = _parse_tcp(datagram)
        if segment is None:
            return datagram
        if self.match is not None and not self.match(datagram, segment):
            return datagram
        self.seen_bytes += len(segment.payload)
        if self.fired or self.seen_bytes < self.trigger_bytes:
            # After firing, traffic passes again: the victim's stack no
            # longer has the connection and answers with genuine RSTs,
            # which is how the other endpoint learns of the kill.
            return datagram
        self.fired = True
        rst = TcpSegment(
            src_port=segment.src_port,
            dst_port=segment.dst_port,
            seq=segment.seq,
            ack=segment.ack,
            flags=Flags.RST | Flags.ACK,
            window=0,
        )
        return [_reserialize(datagram, rst)]


class Nat44:
    """Source NAT for IPv4: rewrites (addr, port) to a public endpoint.

    Construct once, then install ``outbound`` on the private-to-public
    direction and ``inbound`` on the reverse one.  Port allocation is
    deterministic (sequential from ``base_port``).
    """

    def __init__(self, public_address, base_port: int = 40000) -> None:
        import ipaddress

        self.public_address = (
            ipaddress.ip_address(public_address)
            if isinstance(public_address, str)
            else public_address
        )
        self._next_port = base_port
        self._forward: dict = {}  # (private addr, private port) -> public port
        self._reverse: dict = {}  # public port -> (private addr, private port)
        self.translations = 0
        self.rebinds = 0

    def rebind(self) -> None:
        """Forget every mapping and move to a fresh port range.

        Models a NAT timeout/reboot (the classic middlebox failure the
        paper's JOIN mechanism recovers from): established flows lose
        their translation — subsequent inbound packets are unsolicited
        and dropped, outbound packets get a *new* public port the peer's
        stack won't recognise — while brand-new connections work fine.
        """
        self._forward.clear()
        self._reverse.clear()
        # Jump past the old range so recycled ports never alias dead flows.
        self._next_port += 1009
        self.rebinds += 1

    def outbound(self, datagram: Datagram):
        if datagram.version == 4:
            peek = _peek_tcp(datagram)
            if peek is not None:
                # Raw rewrite: patch the source port bytes in place and
                # refresh the checksum — no parse, no option re-encode.
                key = (datagram.src, peek.src_port)
                if key not in self._forward:
                    self._forward[key] = self._next_port
                    self._reverse[self._next_port] = key
                    self._next_port += 1
                public_port = self._forward[key]
                self.translations += 1
                buffer = bytearray(datagram.payload)
                struct.pack_into("!H", buffer, 0, public_port)
                patch_checksum(buffer, self.public_address, datagram.dst)
                return datagram.copy(payload=bytes(buffer), src=self.public_address)
        segment = _parse_tcp(datagram)
        if segment is None or datagram.version != 4:
            return datagram
        key = (datagram.src, segment.src_port)
        if key not in self._forward:
            self._forward[key] = self._next_port
            self._reverse[self._next_port] = key
            self._next_port += 1
        public_port = self._forward[key]
        segment.src_port = public_port
        self.translations += 1
        return _reserialize(datagram, segment, src=self.public_address)

    def inbound(self, datagram: Datagram):
        if datagram.version == 4 and datagram.dst == self.public_address:
            peek = _peek_tcp(datagram)
            if peek is not None:
                mapping = self._reverse.get(peek.dst_port)
                if mapping is None:
                    return None  # unsolicited inbound: NATs drop these
                private_addr, private_port = mapping
                self.translations += 1
                buffer = bytearray(datagram.payload)
                struct.pack_into("!H", buffer, 2, private_port)
                patch_checksum(buffer, datagram.src, private_addr)
                return datagram.copy(payload=bytes(buffer), dst=private_addr)
        segment = _parse_tcp(datagram)
        if segment is None or datagram.version != 4:
            return datagram
        if datagram.dst != self.public_address:
            return datagram
        mapping = self._reverse.get(segment.dst_port)
        if mapping is None:
            return None  # unsolicited inbound: NATs drop these
        private_addr, private_port = mapping
        segment.dst_port = private_port
        self.translations += 1
        return _reserialize(datagram, segment, dst=private_addr)


class TransparentProxyMangler:
    """Approximates a transparent TCP proxy's header rewriting.

    Real transparent proxies terminate and re-originate connections; the
    observable symptoms on the SYN are rewritten MSS, stripped
    unsupported options, and a different window.  Those symptoms are what
    TCPLS's SYN-echo detection (section 4.5) keys on, so we model them
    directly.
    """

    def __init__(self, clamp_mss: int = 1380, keep_kinds: Iterable[int] = (2,)) -> None:
        self.clamp_mss = clamp_mss
        self.keep_kinds = set(keep_kinds)
        self.mangled_syns = 0

    def __call__(self, datagram: Datagram):
        peek = _peek_tcp(datagram)
        if peek is not None and not peek.is_syn:
            return datagram  # only SYNs are mangled; everything else passes
        segment = _parse_tcp(datagram)
        if segment is None or not segment.is_syn:
            return datagram
        new_options: list[TcpOption] = []
        for option in segment.options:
            if option.kind not in self.keep_kinds:
                continue
            if isinstance(option, MaximumSegmentSize):
                option = MaximumSegmentSize(mss=min(option.mss, self.clamp_mss))
            new_options.append(option)
        segment.options = new_options
        segment.window = min(segment.window, 8192)
        self.mangled_syns += 1
        return _reserialize(datagram, segment)


class TfoBlocker:
    """Drops SYN segments that carry data or a Fast Open cookie option.

    Models the enterprise/wireless middleboxes that block TCP Fast Open
    (paper section 4.2, citing Paasch's NANOG measurements).
    """

    def __init__(self) -> None:
        self.blocked = 0

    def __call__(self, datagram: Datagram):
        peek = _peek_tcp(datagram)
        if peek is not None:
            # Never rewrites, so the peek answers everything.
            if peek.is_syn and not peek.is_ack:
                if KIND_FAST_OPEN in peek.option_kinds() or peek.payload_length:
                    self.blocked += 1
                    return None
            return datagram
        segment = _parse_tcp(datagram)
        if segment is None:
            return datagram
        if segment.is_syn and not segment.is_ack:
            has_tfo = any(option.kind == KIND_FAST_OPEN for option in segment.options)
            if has_tfo or segment.payload:
                self.blocked += 1
                return None
        return datagram


class PayloadCorruptor:
    """Flips a byte in every Nth TCP payload — tests AEAD protection.

    Any tampering inside a TLS record must surface as an authentication
    failure at the receiver, never as silently corrupted data.
    """

    def __init__(self, every: int = 1) -> None:
        self.every = every
        self._count = 0
        self.corrupted = 0

    def __call__(self, datagram: Datagram):
        peek = _peek_tcp(datagram)
        if peek is not None:
            if not peek.payload_length:
                return datagram
            self._count += 1
            if self._count % self.every:
                return datagram
            buffer = bytearray(datagram.payload)
            buffer[peek.data_offset + peek.payload_length // 2] ^= 0xFF
            self.corrupted += 1
            patch_checksum(buffer, datagram.src, datagram.dst)
            return datagram.copy(payload=bytes(buffer))
        segment = _parse_tcp(datagram)
        if segment is not None and segment.payload:
            self._count += 1
            if self._count % self.every:
                return datagram
            tampered = bytearray(segment.payload)
            tampered[len(tampered) // 2] ^= 0xFF
            segment.payload = bytes(tampered)
            self.corrupted += 1
            return _reserialize(datagram, segment)
        if datagram.protocol == 17 and len(datagram.payload) > 9:
            # UDP: flip a byte inside the payload past the 8-byte header.
            self._count += 1
            if self._count % self.every:
                return datagram
            tampered = bytearray(datagram.payload)
            tampered[8 + (len(tampered) - 8) // 2] ^= 0xFF
            self.corrupted += 1
            return datagram.copy(payload=bytes(tampered))
        return datagram
