"""Point-to-point links with rate, propagation delay, queueing, and loss.

Each direction of a link is modelled independently: a FIFO drop-tail
queue feeding a transmitter that serializes packets at ``rate_bps``.
``set_down()``/``set_up()`` model outages (packets in flight are lost);
an optional Bernoulli loss process and a reordering process are driven by
a seeded RNG for reproducibility.

Middlebox hooks: a list of transformers per direction, applied at the
moment a packet is accepted for transmission.  A transformer receives the
datagram and returns a (possibly rewritten) datagram, ``None`` to drop,
or a list of datagrams (to inject extra packets, e.g. spurious RSTs).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Union

try:  # pragma: no cover - exercised by environment, not branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.netsim.packet import Datagram
from repro.obs import keys as obs_keys

TransformResult = Union[Datagram, None, List[Datagram]]
Transformer = Callable[[Datagram], TransformResult]


class _Direction:
    """State for one direction of a link."""

    def __init__(self) -> None:
        self.next_free_time = 0.0
        self.queued_packets = 0
        self.transformers: list = []
        self.up = True
        # Outage epoch: bumped on every set_down() of this direction.  A
        # packet captures the epoch when it is accepted; if the epoch has
        # moved by delivery time the link went down while the packet was
        # queued or propagating, and the packet is lost (``dropped_down``)
        # even if the link is back up by then.
        self.down_epoch = 0


class Link:
    """A bidirectional point-to-point link between two interfaces."""

    def __init__(
        self,
        sim,
        rate_bps: float = 100e6,
        delay: float = 0.001,
        queue_packets: int = 100,
        loss_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_extra_delay: float = 0.005,
        seed: int = 0,
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if not 0.0 <= reorder_rate < 1.0:
            raise ValueError("reorder rate must be in [0, 1)")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue_packets = queue_packets
        self.loss_rate = loss_rate
        self.reorder_rate = reorder_rate
        self.reorder_extra_delay = reorder_extra_delay
        self.name = name
        self._rng = random.Random(seed)
        self._endpoints: list = [None, None]  # two Interface objects
        self._directions = {0: _Direction(), 1: _Direction()}
        # Counters for experiments.
        self.stats = {
            "delivered": 0,
            "dropped_queue": 0,
            "dropped_loss": 0,
            "dropped_down": 0,
            "reordered": 0,
            "bytes_delivered": 0,
        }
        # Optional observability hookup (see observe()).
        self._obs_counters = None
        self._obs_queue = None
        self._obs_tracer = None
        self._obs_component = ""

    def observe(self, obs) -> None:
        """Mirror this link's counters and queue/drop events into an
        ``Observability`` hub.  Pure observation: the data path is
        unchanged whether or not a hub is attached."""
        self._obs_component = obs_keys.link_component(self.name)
        telemetry = obs.telemetry
        self._obs_counters = {
            key: telemetry.counter(self._obs_component, key) for key in self.stats
        }
        self._obs_queue = telemetry.histogram(
            self._obs_component, obs_keys.LINK_QUEUE_DEPTH
        )
        self._obs_tracer = obs.tracer

    def _obs_count(self, key: str, amount: int = 1) -> None:
        if self._obs_counters is not None:
            self._obs_counters[key].inc(amount)

    def _obs_drop(self, reason: str, datagram: Datagram) -> None:
        self._obs_count(reason)
        if self._obs_tracer is not None:
            self._obs_tracer.point(
                self._obs_component, reason, size=datagram.size
            )

    # -- wiring ------------------------------------------------------------

    def attach(self, interface) -> int:
        """Attach an interface; returns its endpoint index (0 or 1)."""
        for index in (0, 1):
            if self._endpoints[index] is None:
                self._endpoints[index] = interface
                return index
        raise ValueError("link already has two endpoints")

    def endpoint(self, index: int):
        """The interface attached at endpoint ``index`` (0 or 1)."""
        return self._endpoints[index]

    def peer_of(self, interface):
        a, b = self._endpoints
        if interface is a:
            return b
        if interface is b:
            return a
        raise ValueError("interface not attached to this link")

    def add_transformer(self, from_interface, transformer: Transformer) -> None:
        """Install a middlebox transformer on the direction leaving ``from_interface``."""
        self._directions[self._index_of(from_interface)].transformers.append(
            transformer
        )

    def remove_transformer(self, from_interface, transformer: Transformer) -> bool:
        """Uninstall a transformer (middlebox churn); True if it was present."""
        transformers = self._directions[self._index_of(from_interface)].transformers
        if transformer not in transformers:
            return False
        transformers.remove(transformer)
        return True

    def _index_of(self, interface) -> int:
        for index in (0, 1):
            if self._endpoints[index] is interface:
                return index
        raise ValueError("interface not attached to this link")

    # -- outages -------------------------------------------------------------

    @property
    def up(self) -> bool:
        """True when both directions are up (back-compat view)."""
        return self._directions[0].up and self._directions[1].up

    def _selected_directions(self, direction: Optional[int]):
        if direction is None:
            return self._directions.values()
        return (self._directions[direction],)

    def set_down(self, direction: Optional[int] = None) -> None:
        """Take the link (or one direction of it) down.

        Packets already queued or propagating on an affected direction
        are lost and counted in ``dropped_down`` — an outage kills what
        is on the wire, it does not park it.  ``direction`` is the
        endpoint index (0/1) whose *outgoing* traffic dies; None means
        both directions (a full outage).
        """
        for state in self._selected_directions(direction):
            state.up = False
            state.down_epoch += 1
        if self._obs_tracer is not None:
            self._obs_tracer.point(
                self._obs_component, "link_down",
                direction=-1 if direction is None else direction,
            )

    def set_up(self, direction: Optional[int] = None) -> None:
        for state in self._selected_directions(direction):
            state.up = True
            state.next_free_time = self.sim.now
        if self._obs_tracer is not None:
            self._obs_tracer.point(
                self._obs_component, "link_up",
                direction=-1 if direction is None else direction,
            )

    # -- data path -----------------------------------------------------------

    def transmit(self, from_interface, datagram: Datagram) -> None:
        """Accept a datagram for transmission out of ``from_interface``."""
        # Inlined _index_of: this runs once per packet per hop.
        endpoints = self._endpoints
        if endpoints[0] is from_interface:
            index = 0
        elif endpoints[1] is from_interface:
            index = 1
        else:
            raise ValueError("interface not attached to this link")
        direction = self._directions[index]

        for transformer in direction.transformers:
            result = transformer(datagram)
            if result is None:
                return
            if isinstance(result, list):
                for extra in result:
                    self._enqueue(index, extra)
                return
            datagram = result
        self._enqueue(index, datagram)

    def _enqueue(self, index: int, datagram: Datagram) -> None:
        direction = self._directions[index]
        if not direction.up:
            self.stats["dropped_down"] += 1
            self._obs_drop("dropped_down", datagram)
            return
        if direction.queued_packets >= self.queue_packets:
            self.stats["dropped_queue"] += 1
            self._obs_drop("dropped_queue", datagram)
            return
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats["dropped_loss"] += 1
            self._obs_drop("dropped_loss", datagram)
            return

        now = self.sim.now
        tx_time = datagram.size * 8 / self.rate_bps
        start = direction.next_free_time
        if start < now:
            start = now
        direction.next_free_time = start + tx_time
        direction.queued_packets += 1
        if self._obs_queue is not None:
            self._obs_queue.observe(direction.queued_packets)
        arrival_delay = (start + tx_time + self.delay) - now
        if self.reorder_rate and self._rng.random() < self.reorder_rate:
            # Reordering model: a packet takes a slow lane and arrives
            # behind packets transmitted after it.
            arrival_delay += self.reorder_extra_delay
            self.stats["reordered"] += 1
            self._obs_count("reordered")
        self.sim.schedule(
            arrival_delay, self._deliver, index, datagram, direction.down_epoch
        )

    def transmit_batch(
        self, from_interface, datagrams: Sequence[Datagram]
    ) -> None:
        """Accept a burst of datagrams for transmission out of
        ``from_interface`` (the ``netsim.vectorq`` fast path).

        Semantically identical to calling :meth:`transmit` per datagram:
        same accept/drop decisions, same service-time chaining, same
        delivery times, bit-for-bit.  The batch form exists so the queue
        service computation (start/finish/arrival times for the whole
        burst) runs once in numpy instead of once per packet in Python.

        Bursts only vectorize on loss-free, reorder-free directions —
        both processes draw from the link RNG per packet, and preserving
        the scalar draw order matters more than the arithmetic win, so
        those configurations take the per-packet path unchanged.
        """
        if len(datagrams) == 1:
            self.transmit(from_interface, datagrams[0])
            return
        if _np is None or self.loss_rate or self.reorder_rate:
            for datagram in datagrams:
                self.transmit(from_interface, datagram)
            return
        endpoints = self._endpoints
        if endpoints[0] is from_interface:
            index = 0
        elif endpoints[1] is from_interface:
            index = 1
        else:
            raise ValueError("interface not attached to this link")
        direction = self._directions[index]

        if direction.transformers:
            # Transformers see datagrams one at a time in burst order,
            # exactly as the scalar loop presents them; survivors (and
            # injected extras) proceed to the vectorized enqueue.
            survivors: List[Datagram] = []
            for datagram in datagrams:
                for transformer in direction.transformers:
                    result = transformer(datagram)
                    if result is None:
                        datagram = None
                        break
                    if isinstance(result, list):
                        survivors.extend(result)
                        datagram = None
                        break
                    datagram = result
                if datagram is not None:
                    survivors.append(datagram)
            datagrams = survivors
            if not datagrams:
                return
        self._enqueue_batch(index, datagrams)

    def _enqueue_batch(self, index: int, datagrams: Sequence[Datagram]) -> None:
        """Vectorized :meth:`_enqueue` for a loss-free, reorder-free
        direction (no RNG draws, so accept filtering and service-time
        math can phase-separate without changing observable behaviour)."""
        direction = self._directions[index]
        if not direction.up:
            for datagram in datagrams:
                self.stats["dropped_down"] += 1
                self._obs_drop("dropped_down", datagram)
            return
        room = self.queue_packets - direction.queued_packets
        if room <= 0:
            accepted: Sequence[Datagram] = ()
            overflow = datagrams
        elif room < len(datagrams):
            accepted = datagrams[:room]
            overflow = datagrams[room:]
        else:
            accepted = datagrams
            overflow = ()
        for datagram in overflow:
            self.stats["dropped_queue"] += 1
            self._obs_drop("dropped_queue", datagram)
        if not accepted:
            return

        now = self.sim.now
        # Chained service times for the whole burst in one accumulate.
        # ``np.add.accumulate`` folds strictly left to right, so every
        # partial sum is the same float the scalar loop's
        # ``start + tx_time`` chain produces — this is what keeps the
        # fast path bit-identical, where a naive cumsum would drift by
        # an ulp and fork the pcap digest.
        start0 = direction.next_free_time
        if start0 < now:
            start0 = now
        tx_times = _np.empty(len(accepted) + 1, dtype=_np.float64)
        tx_times[0] = start0
        tx_times[1:] = [datagram.size for datagram in accepted]
        tx_times[1:] *= 8.0
        tx_times[1:] /= self.rate_bps
        finishes = _np.add.accumulate(tx_times)[1:]
        arrival_delays = ((finishes + self.delay) - now).tolist()
        direction.next_free_time = float(finishes[-1])

        base_depth = direction.queued_packets
        direction.queued_packets = base_depth + len(accepted)
        if self._obs_queue is not None:
            observe = self._obs_queue.observe
            for depth in range(base_depth + 1, base_depth + len(accepted) + 1):
                observe(depth)
        epoch = direction.down_epoch
        schedule = self.sim.schedule
        deliver = self._deliver
        for datagram, arrival_delay in zip(accepted, arrival_delays):
            schedule(arrival_delay, deliver, index, datagram, epoch)

    def _deliver(self, index: int, datagram: Datagram, epoch: int) -> None:
        direction = self._directions[index]
        direction.queued_packets -= 1
        if not direction.up or epoch != direction.down_epoch:
            # Down right now, or went down at least once while this
            # packet was queued/propagating: either way it is an outage
            # loss, distinct from Bernoulli loss (``dropped_loss``).
            self.stats["dropped_down"] += 1
            self._obs_drop("dropped_down", datagram)
            return
        destination = self._endpoints[1 - index]
        if destination is None or not destination.up:
            return
        stats = self.stats
        stats["delivered"] += 1
        stats["bytes_delivered"] += datagram.size
        counters = self._obs_counters
        if counters is not None:
            counters["delivered"].inc(1)
            counters["bytes_delivered"].inc(datagram.size)
        destination.deliver(datagram)
