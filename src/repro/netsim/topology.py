"""Topology builder with OSPF-like static route computation.

``Network`` wraps a ``Simulator`` plus a registry of nodes and links, and
computes per-family shortest-path routes with networkx — the simulated
analogue of the paper's IPMininet setup where one path runs OSPF (IPv4
only) and another OSPF6 (IPv6 only): a link participates in a family's
routing graph only if *both* of its endpoint interfaces carry an address
of that family, so v4-only and v6-only paths arise naturally.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host, Node, Router


class Network:
    """A simulation, its nodes, and its links."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []

    # -- construction ------------------------------------------------------

    def add_host(self, name: str) -> Host:
        return self._add_node(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        return self._add_node(Router(self.sim, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def connect(
        self,
        iface_a,
        iface_b,
        rate_bps: float = 100e6,
        delay: float = 0.001,
        queue_packets: int = 100,
        loss_rate: float = 0.0,
        reorder_rate: float = 0.0,
        seed: int = 0,
    ) -> Link:
        """Create a link between two interfaces."""
        link = Link(
            self.sim,
            rate_bps=rate_bps,
            delay=delay,
            queue_packets=queue_packets,
            loss_rate=loss_rate,
            reorder_rate=reorder_rate,
            seed=seed,
            name=f"{iface_a.node.name}:{iface_a.name}--{iface_b.node.name}:{iface_b.name}",
        )
        iface_a.attach_link(link)
        iface_b.attach_link(link)
        self.links.append(link)
        return link

    # -- routing ---------------------------------------------------------------

    def compute_routes(self) -> None:
        """(Re)build every node's routing table via shortest paths.

        Run once after topology construction; rerun after structural
        changes.  Directly-connected networks route out of the local
        interface; remote networks route to the shortest path's first hop.
        """
        for node in self.nodes.values():
            node.clear_routes()
        for family in (4, 6):
            graph = self._family_graph(family)
            destinations = self._destination_networks(family)
            for node in self.nodes.values():
                self._install_routes(node, graph, destinations, family)

    def _family_graph(self, family: int) -> "nx.Graph":
        graph = nx.Graph()
        for node in self.nodes.values():
            graph.add_node(node.name)
        for link in self.links:
            iface_a, iface_b = link._endpoints
            if iface_a is None or iface_b is None:
                continue
            if (
                iface_a.address_for_family(family) is None
                or iface_b.address_for_family(family) is None
            ):
                continue
            graph.add_edge(
                iface_a.node.name,
                iface_b.node.name,
                weight=link.delay,
                interfaces={iface_a.node.name: iface_a, iface_b.node.name: iface_b},
            )
        return graph

    def _destination_networks(self, family: int) -> dict[object, set[str]]:
        networks: dict[object, set[str]] = {}
        for node in self.nodes.values():
            for interface in node.interfaces.values():
                for network in interface.networks():
                    if network.version == family:
                        networks.setdefault(network, set()).add(node.name)
        return networks

    def _install_routes(
        self,
        node: Node,
        graph,
        destinations: dict[object, set[str]],
        family: int,
    ) -> None:
        try:
            paths = nx.single_source_dijkstra_path(graph, node.name, weight="weight")
        except nx.NodeNotFound:
            return
        for network, owner_names in destinations.items():
            # Directly connected?
            local = next(
                (
                    interface
                    for interface in node.interfaces.values()
                    if network in interface.networks()
                ),
                None,
            )
            if local is not None:
                node.add_route(network, local)
                continue
            # Pick the nearest owner of this network.  Owner names are a
            # set; iterate sorted so the tie between equidistant owners
            # breaks the same way under every PYTHONHASHSEED (route
            # choice feeds the wire, so hash-order iteration here made
            # whole pcaps differ across processes).
            best_path = None
            for owner in sorted(owner_names):
                path = paths.get(owner)
                if path is not None and (best_path is None or len(path) < len(best_path)):
                    best_path = path
            if best_path is None or len(best_path) < 2:
                continue
            next_hop = best_path[1]
            edge = graph.get_edge_data(node.name, next_hop)
            node.add_route(network, edge["interfaces"][node.name])

    # -- convenience --------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name!r} is not a host")
        return node
