"""Lightweight packet tracing for experiments and debugging.

``PacketTrace`` hooks a link direction (as a pass-through transformer)
and records (time, summary) tuples; ``ThroughputMeter`` bins delivered
bytes into fixed intervals — this produces the goodput-vs-time series
plotted in the paper's Figure 4.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netsim.packet import Datagram, PROTO_TCP
from repro.tcp.segment import TcpSegment
from repro.utils.errors import DecodeError


class PacketTrace:
    """Records every packet crossing a link direction."""

    def __init__(self, sim, parse_tcp: bool = True) -> None:
        self.sim = sim
        self.parse_tcp = parse_tcp
        self.records: List[Tuple[float, str]] = []

    def __call__(self, datagram: Datagram):
        text = datagram.summary()
        if self.parse_tcp and datagram.protocol == PROTO_TCP:
            try:
                segment = TcpSegment.from_bytes(
                    datagram.payload, verify_checksum=False
                )
                text = f"{datagram.src}->{datagram.dst} {segment.summary()}"
            except DecodeError:
                pass
        self.records.append((self.sim.now, text))
        return datagram

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        rows = self.records[:limit] if limit else self.records
        return "\n".join(f"{time:10.6f}  {text}" for time, text in rows)


class ThroughputMeter:
    """Bins observed payload bytes into fixed time intervals."""

    def __init__(self, sim, interval: float = 0.1) -> None:
        self.sim = sim
        self.interval = interval
        self._bins: dict[int, int] = {}

    def record(self, n_bytes: int, at: Optional[float] = None) -> None:
        time = self.sim.now if at is None else at
        self._bins[int(time / self.interval)] = (
            self._bins.get(int(time / self.interval), 0) + n_bytes
        )

    def __call__(self, datagram: Datagram):
        """Use as a link transformer counting TCP payload bytes."""
        if datagram.protocol == PROTO_TCP:
            try:
                segment = TcpSegment.from_bytes(datagram.payload, verify_checksum=False)
                if segment.payload:
                    self.record(len(segment.payload))
            except DecodeError:
                pass
        return datagram

    def series(self, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """Return (interval start time, throughput in Mbps) pairs."""
        if not self._bins:
            return []
        last_bin = int(until / self.interval) if until is not None else max(self._bins)
        series = []
        for index in range(0, last_bin + 1):
            bits = self._bins.get(index, 0) * 8
            series.append((index * self.interval, bits / self.interval / 1e6))
        return series

    def total_bytes(self) -> int:
        return sum(self._bins.values())
