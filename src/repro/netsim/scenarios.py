"""Canned topologies used across tests, examples, and benchmarks.

``dual_path_network`` is the reproduction of the paper's Figure 4 setup:
a client and a server, each dual-stack, connected over two disjoint
router paths — one IPv4-only (OSPF in the paper) and one IPv6-only
(OSPF6), with configurable rates and delays ("we configure the bandwidth
to 30Mbps, the lowest delay to the v4 link").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.topology import Network


@dataclass
class DualPathNetwork:
    """Handles to the pieces of the two-path topology."""

    net: Network
    client: "object"
    server: "object"
    client_v4: str
    client_v6: str
    server_v4: str
    server_v6: str
    v4_links: list = field(default_factory=list)
    v6_links: list = field(default_factory=list)

    @property
    def sim(self):
        return self.net.sim

    def cut_v4_path(self) -> None:
        for link in self.v4_links:
            link.set_down()

    def restore_v4_path(self) -> None:
        for link in self.v4_links:
            link.set_up()

    def cut_v6_path(self) -> None:
        for link in self.v6_links:
            link.set_down()


def dual_path_network(
    rate_bps: float = 30e6,
    v4_delay: float = 0.010,
    v6_delay: float = 0.025,
    queue_packets: int = 100,
    loss_rate: float = 0.0,
    seed: int = 1,
    v6_rate_bps: Optional[float] = None,
) -> DualPathNetwork:
    """Build the Figure 4 topology.

    Client and server each have a v4-only interface toward router path
    r4a--r4b and a v6-only interface toward router path r6a--r6b.  The v4
    path has the lower delay, as in the paper.
    """
    net = Network()
    client = net.add_host("client")
    server = net.add_host("server")
    r4a = net.add_router("r4a")
    r4b = net.add_router("r4b")
    r6a = net.add_router("r6a")
    r6b = net.add_router("r6b")

    v6_rate = v6_rate_bps if v6_rate_bps is not None else rate_bps

    # IPv4 path: client -- r4a -- r4b -- server
    c4 = client.add_interface("eth0").configure_ipv4("10.0.1.1/24")
    r4a_c = r4a.add_interface("eth0").configure_ipv4("10.0.1.254/24")
    r4a_r = r4a.add_interface("eth1").configure_ipv4("10.0.2.1/24")
    r4b_r = r4b.add_interface("eth0").configure_ipv4("10.0.2.2/24")
    r4b_s = r4b.add_interface("eth1").configure_ipv4("10.0.3.254/24")
    s4 = server.add_interface("eth0").configure_ipv4("10.0.3.1/24")

    # IPv6 path: client -- r6a -- r6b -- server
    c6 = client.add_interface("eth1").configure_ipv6("fc00:1::1/64")
    r6a_c = r6a.add_interface("eth0").configure_ipv6("fc00:1::ff/64")
    r6a_r = r6a.add_interface("eth1").configure_ipv6("fc00:2::1/64")
    r6b_r = r6b.add_interface("eth0").configure_ipv6("fc00:2::2/64")
    r6b_s = r6b.add_interface("eth1").configure_ipv6("fc00:3::ff/64")
    s6 = server.add_interface("eth1").configure_ipv6("fc00:3::1/64")

    v4_links = [
        net.connect(c4, r4a_c, rate_bps=rate_bps, delay=v4_delay / 3,
                    queue_packets=queue_packets, loss_rate=loss_rate, seed=seed),
        net.connect(r4a_r, r4b_r, rate_bps=rate_bps, delay=v4_delay / 3,
                    queue_packets=queue_packets, loss_rate=loss_rate, seed=seed + 1),
        net.connect(r4b_s, s4, rate_bps=rate_bps, delay=v4_delay / 3,
                    queue_packets=queue_packets, loss_rate=loss_rate, seed=seed + 2),
    ]
    v6_links = [
        net.connect(c6, r6a_c, rate_bps=v6_rate, delay=v6_delay / 3,
                    queue_packets=queue_packets, loss_rate=loss_rate, seed=seed + 3),
        net.connect(r6a_r, r6b_r, rate_bps=v6_rate, delay=v6_delay / 3,
                    queue_packets=queue_packets, loss_rate=loss_rate, seed=seed + 4),
        net.connect(r6b_s, s6, rate_bps=v6_rate, delay=v6_delay / 3,
                    queue_packets=queue_packets, loss_rate=loss_rate, seed=seed + 5),
    ]
    net.compute_routes()
    return DualPathNetwork(
        net=net,
        client=client,
        server=server,
        client_v4="10.0.1.1",
        client_v6="fc00:1::1",
        server_v4="10.0.3.1",
        server_v6="fc00:3::1",
        v4_links=v4_links,
        v6_links=v6_links,
    )


@dataclass
class MultiPathNetwork:
    """Handles for the N-path fault-matrix topology."""

    net: Network
    client: "object"
    server: "object"
    client_addrs: list
    server_addrs: list
    links: list  # one Link per path, same index as the address lists

    @property
    def sim(self):
        return self.net.sim

    def cut_path(self, index: int) -> None:
        self.links[index].set_down()

    def restore_path(self, index: int) -> None:
        self.links[index].set_up()


def multi_path_network(
    paths: int = 2,
    rate_bps: float = 30e6,
    base_delay: float = 0.010,
    delay_step: float = 0.005,
    queue_packets: int = 100,
    loss_rate: float = 0.0,
    seed: int = 1,
) -> MultiPathNetwork:
    """A client and a server joined by ``paths`` disjoint IPv4 links.

    The fault-injection matrix sweeps path count; this generalises the
    Figure 4 dual-path idea to N directly-connected paths (no routers,
    so per-scenario cost stays low).  Path ``i`` uses subnet
    ``10.(i+1).0.0/24`` and delay ``base_delay + i*delay_step`` — paths
    are deliberately asymmetric so scheduler/health choices matter.
    """
    if paths < 1:
        raise ValueError("need at least one path")
    net = Network()
    client = net.add_host("client")
    server = net.add_host("server")
    client_addrs, server_addrs, links = [], [], []
    for index in range(paths):
        subnet = index + 1
        c_if = client.add_interface(f"eth{index}").configure_ipv4(
            f"10.{subnet}.0.1/24"
        )
        s_if = server.add_interface(f"eth{index}").configure_ipv4(
            f"10.{subnet}.0.2/24"
        )
        links.append(
            net.connect(
                c_if, s_if,
                rate_bps=rate_bps,
                delay=base_delay + index * delay_step,
                queue_packets=queue_packets,
                loss_rate=loss_rate,
                seed=seed + index,
            )
        )
        client_addrs.append(f"10.{subnet}.0.1")
        server_addrs.append(f"10.{subnet}.0.2")
    net.compute_routes()
    return MultiPathNetwork(
        net=net,
        client=client,
        server=server,
        client_addrs=client_addrs,
        server_addrs=server_addrs,
        links=links,
    )


def simple_duplex_network(
    rate_bps: float = 100e6,
    delay: float = 0.005,
    queue_packets: int = 200,
    loss_rate: float = 0.0,
    reorder_rate: float = 0.0,
    seed: int = 1,
):
    """A minimal client--server network on one IPv4 link (for unit tests)."""
    net = Network()
    client = net.add_host("client")
    server = net.add_host("server")
    ci = client.add_interface("eth0").configure_ipv4("10.0.0.1/24")
    si = server.add_interface("eth0").configure_ipv4("10.0.0.2/24")
    link = net.connect(
        ci, si, rate_bps=rate_bps, delay=delay,
        queue_packets=queue_packets, loss_rate=loss_rate,
        reorder_rate=reorder_rate, seed=seed,
    )
    net.compute_routes()
    return net, client, server, link
