"""Deterministic discrete-event network simulator.

This package replaces the paper's IPMininet testbed: hosts and routers are
Python objects, links have configurable rate/delay/queueing/loss, packets
carry byte-accurate transport payloads, and programmable middleboxes can
sit bump-in-the-wire on any link (NAT, TCP option stripping, RST
injection, transparent proxying, TCP Fast Open blocking).

Everything runs inside one single-threaded event loop (``Simulator``);
there are no real sockets, threads, or wall-clock timers, so every run is
bit-reproducible given the same seeds.
"""

from repro.netsim.engine import Simulator
from repro.netsim.packet import Datagram, PROTO_TCP, PROTO_UDP
from repro.netsim.link import Link
from repro.netsim.node import Host, Interface, Node, Router
from repro.netsim.topology import Network
from repro.netsim.pcap import PcapWriter

__all__ = [
    "Simulator",
    "Datagram",
    "PROTO_TCP",
    "PROTO_UDP",
    "Link",
    "Host",
    "Interface",
    "Node",
    "Router",
    "Network",
    "PcapWriter",
]
