"""Hierarchical timer wheel for the discrete-event engine.

At a handful of sessions the engine's binary heap is unbeatable; at
thousands of concurrent TCPLS sessions the heap holds tens of thousands
of timers (every ACK cancels and re-arms an RTO, every session keeps
delayed-ACK and health timers) and each push/pop pays ``O(log n)``
comparisons against the whole population.  The timer wheel replaces the
single heap with fixed-width time buckets so an insert is O(1) and a pop
only ever sorts the handful of events sharing one bucket.

Design (hashed hierarchical wheel, Varghese & Lauck):

- Level ``i`` has ``SLOTS`` (256) buckets of width ``W0 * SLOTS**i``
  seconds.  ``W0`` is ``2**-12`` s (~244 us), chosen as a power of two so
  tick arithmetic between levels is an exact bit shift: the level-0 tick
  of an event is ``floor(time * 4096)`` and the level-``i`` tick is that
  value shifted right by ``8*i`` bits.  Spans: level 0 covers 62.5 ms,
  level 1 covers 16 s, level 2 covers 4096 s; anything later sits in an
  unsorted overflow list until the wheels drain and rebase onto it.
- Each level owns a half-open tick window.  Level 0 holds every pending
  event with tick in ``[cursor0, cursor1 << 8)``, level 1 holds
  ``[cursor1 << 8, cursor2 << 16)``, level 2 holds ticks below
  ``limit2 << 16``.  Cascading a level-``i`` bucket extends the
  level-``i-1`` window by exactly one bucket, so every window stays at
  most ``SLOTS`` wide and a slot index mod 256 is unambiguous.  Pushes
  route by comparing the event tick against those boundaries — the same
  arithmetic the bucket scans use, so an event can never be filed where
  a scan would misread its tick.
- Events inside a bucket are unordered.  When the level-0 cursor reaches
  a bucket its events move into a small "ready" heap ordered by
  ``(time, seq)`` — exactly the engine's global ordering contract, so
  the wheel's execution order is **bit-identical** to the reference
  heap's (the ``netsim.wheel`` cross-check tests and the churn-matrix
  pcap digests enforce this).  Bucketing by ``floor`` is order-safe:
  floor of a monotone function is monotone, so ``t_a < t_b`` can never
  place ``a`` in a later bucket than ``b``.  Pushes at or below the last
  collected tick (e.g. an event scheduled for "now" from inside a
  callback) go straight into the ready heap, which restores exact order.
- Cancelled events are discarded lazily when popped, same as the heap
  path; live-event accounting stays in the :class:`Simulator`.

The wheel is a fast path in the PR 3 sense: enabled by the
``netsim.wheel`` flag, with the heap kept as the cross-check oracle
(``fastpath.CROSSCHECKS['netsim.wheel']``).
"""

from __future__ import annotations

import heapq
from typing import List

#: Buckets per level; ``TICK_SHIFT`` bits index one level.
SLOTS = 256
TICK_SHIFT = 8
_MASK = SLOTS - 1
#: Level-0 bucket width is ``2**-RESOLUTION_BITS`` seconds (~244 us).
RESOLUTION_BITS = 12
_TICK_SCALE = float(1 << RESOLUTION_BITS)
#: Wheel levels before the overflow list (level 2 spans 4096 s).
LEVELS = 3
_TOP_SHIFT = TICK_SHIFT * (LEVELS - 1)


class TimerWheel:
    """Bucketed pending-event store with heap-identical pop order.

    Entries are ``(time, seq, event)`` tuples, the same shape the tuple
    heap uses, so the ready heap's C-level tuple comparison reproduces
    the ``(time, seq)`` tie-break exactly.
    """

    __slots__ = (
        "_ready",
        "_levels",
        "_counts",
        "_cursor",
        "_collected_tick",
        "_limit2",
        "_overflow",
        "_len",
    )

    def __init__(self) -> None:
        # Events already known to be next in line, ordered (time, seq).
        self._ready: List[tuple] = []
        self._levels = [[[] for _ in range(SLOTS)] for _ in range(LEVELS)]
        self._counts = [0] * LEVELS
        # _cursor[i] is the first level-i tick not yet cascaded/collected.
        # Windows (level-0 ticks): level 0 owns [cursor0, cursor1 << 8),
        # level 1 owns [cursor1 << 8, cursor2 << 16), level 2 owns up to
        # limit2 << 16; later ticks overflow.
        self._cursor = [0] * LEVELS
        # Highest level-0 tick whose bucket has been merged into _ready
        # (== cursor0 - 1 between operations); pushes at or before it go
        # straight to the ready heap.
        self._collected_tick = -1
        self._limit2 = SLOTS
        self._overflow: List[tuple] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    # -- insertion ---------------------------------------------------------

    def push(self, time: float, seq: int, event) -> None:
        entry = (time, seq, event)
        self._len += 1
        tick = int(time * _TICK_SCALE)
        if tick <= self._collected_tick:
            heapq.heappush(self._ready, entry)
        elif tick < self._cursor[1] << TICK_SHIFT:
            self._levels[0][tick & _MASK].append(entry)
            self._counts[0] += 1
        elif tick < self._cursor[2] << (2 * TICK_SHIFT):
            self._levels[1][(tick >> TICK_SHIFT) & _MASK].append(entry)
            self._counts[1] += 1
        elif (tick >> (2 * TICK_SHIFT)) < self._limit2:
            self._levels[2][(tick >> (2 * TICK_SHIFT)) & _MASK].append(entry)
            self._counts[2] += 1
        else:
            self._overflow.append(entry)

    # -- extraction --------------------------------------------------------

    def peek(self):
        """The next event in (time, seq) order, or None; does not remove."""
        if not self._ready and not self._advance():
            return None
        return self._ready[0][2]

    def pop(self):
        """Remove and return the next event in (time, seq) order."""
        if not self._ready and not self._advance():
            raise IndexError("pop from an empty TimerWheel")
        self._len -= 1
        return heapq.heappop(self._ready)[2]

    # -- internal: advance cursors until _ready has something --------------

    def _advance(self) -> bool:
        """Move buckets toward _ready; True when _ready is non-empty.

        Always collects the earliest occupied level-0 bucket before
        cascading the next higher-level bucket, so collection order is
        globally tick-monotone; within the collected bucket the ready
        heap supplies the (time, seq) order.
        """
        while True:
            if self._counts[0]:
                cursor = self._cursor[0]
                buckets = self._levels[0]
                for offset in range(SLOTS):
                    tick = cursor + offset
                    bucket = buckets[tick & _MASK]
                    if bucket:
                        for entry in bucket:
                            heapq.heappush(self._ready, entry)
                        self._counts[0] -= len(bucket)
                        del bucket[:]
                        self._collected_tick = tick
                        self._cursor[0] = tick + 1
                        return True
                raise AssertionError("timer wheel level-0 count drift")
            if self._cascade(1):
                continue
            if self._cascade(2):
                continue
            if self._overflow:
                self._refill_from_overflow()
                continue
            return False

    def _cascade(self, level: int) -> bool:
        """Scatter the next occupied level-``level`` bucket one level down."""
        if not self._counts[level]:
            return False
        cursor = self._cursor[level]
        buckets = self._levels[level]
        below = level - 1
        shift = TICK_SHIFT * below
        for offset in range(SLOTS):
            tick = cursor + offset
            bucket = buckets[tick & _MASK]
            if not bucket:
                continue
            # Extend the child window to this bucket's child tick range
            # before filing entries into it.
            if self._cursor[below] < tick << TICK_SHIFT:
                self._cursor[below] = tick << TICK_SHIFT
                if below == 0:
                    self._collected_tick = self._cursor[0] - 1
            child_buckets = self._levels[below]
            for entry in bucket:
                child_tick = int(entry[0] * _TICK_SCALE) >> shift
                child_buckets[child_tick & _MASK].append(entry)
            moved = len(bucket)
            self._counts[level] -= moved
            self._counts[below] += moved
            del bucket[:]
            self._cursor[level] = tick + 1
            return True
        raise AssertionError(f"timer wheel level-{level} count drift")

    def _refill_from_overflow(self) -> None:
        """Rebase the wheels onto the earliest overflow event.

        Only reached when every wheel level is empty, so snapping all
        cursors forward cannot strand an earlier pending event.
        Overflow events still beyond the new top-level window stay in
        the list for the next refill.
        """
        base2 = min(int(e[0] * _TICK_SCALE) for e in self._overflow) >> _TOP_SHIFT
        self._cursor[2] = base2
        self._cursor[1] = base2 << TICK_SHIFT
        self._cursor[0] = base2 << (2 * TICK_SHIFT)
        self._collected_tick = self._cursor[0] - 1
        self._limit2 = base2 + SLOTS
        remaining: List[tuple] = []
        for entry in self._overflow:
            tick2 = int(entry[0] * _TICK_SCALE) >> _TOP_SHIFT
            if tick2 < self._limit2:
                self._levels[2][tick2 & _MASK].append(entry)
                self._counts[2] += 1
            else:
                remaining.append(entry)
        self._overflow = remaining
