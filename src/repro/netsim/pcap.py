"""Export simulated traffic to pcap files readable by Wireshark/tcpdump.

The simulator keeps the IP layer structured, so the writer synthesizes a
genuine IPv4/IPv6 header (correct lengths, protocol number, header
checksum) around the real transport bytes each ``Datagram`` carries.
Attach a ``PcapWriter`` to a link direction like any middlebox
transformer:

    writer = PcapWriter("trace.pcap", sim)
    link.add_transformer(client_iface, writer)
    ...
    writer.close()

The file uses the classic pcap format with LINKTYPE_RAW (101): each
packet starts directly at the IP header.

``merge_pcaps`` concatenates per-shard traces from a fleet run into one
auditable file: records keep their original timestamps and appear in
stable shard-major order (all of shard 0's packets, then shard 1's, ...),
so the merged byte stream — and therefore its SHA-256 digest — depends
only on the scenario set, not on how it was partitioned or which worker
finished first.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, List, Optional, Tuple

from repro.netsim.packet import Datagram

_MAGIC = 0xA1B2C3D4  # microsecond-resolution pcap


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum (kept local: netsim sits below
    the TCP layer and must not import from it)."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


_VERSION = (2, 4)
_LINKTYPE_RAW = 101
_SNAPLEN = 65535


def _ipv4_header(datagram: Datagram) -> bytes:
    total_length = 20 + len(datagram.payload)
    header = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,                    # version 4, IHL 5
        0,                       # DSCP/ECN
        total_length,
        datagram.packet_id & 0xFFFF,
        0,                       # flags/fragment offset
        datagram.hop_limit,
        datagram.protocol,
        0,                       # checksum placeholder
        datagram.src.packed,
        datagram.dst.packed,
    )
    checksum = internet_checksum(header)
    return header[:10] + struct.pack("!H", checksum) + header[12:]


def _ipv6_header(datagram: Datagram) -> bytes:
    return struct.pack(
        "!IHBB16s16s",
        0x60000000,              # version 6, no traffic class/flow label
        len(datagram.payload),
        datagram.protocol,       # next header
        datagram.hop_limit,
        datagram.src.packed,
        datagram.dst.packed,
    )


def serialize_ip(datagram: Datagram) -> bytes:
    """Full on-the-wire bytes (IP header + transport payload)."""
    if datagram.version == 4:
        return _ipv4_header(datagram) + datagram.payload
    return _ipv6_header(datagram) + datagram.payload


class PcapWriter:
    """Writes every observed datagram to a pcap file.

    Usable directly as a link transformer (pass-through).  Timestamps
    come from the simulation clock, so inter-packet spacing in Wireshark
    reflects simulated time exactly.
    """

    def __init__(self, path: str, sim) -> None:
        self.path = path
        self.sim = sim
        self.packets_written = 0
        self._file = open(path, "wb")
        self._file.write(
            struct.pack(
                "!IHHiIII",
                _MAGIC,
                _VERSION[0],
                _VERSION[1],
                0,          # timezone offset
                0,          # sigfigs
                _SNAPLEN,
                _LINKTYPE_RAW,
            )
        )

    def write(self, datagram: Datagram, at: Optional[float] = None) -> None:
        if self._file.closed:
            return
        timestamp = self.sim.now if at is None else at
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        wire = serialize_ip(datagram)
        self._file.write(
            struct.pack("!IIII", seconds, microseconds, len(wire), len(wire))
        )
        self._file.write(wire)
        self.packets_written += 1

    def __call__(self, datagram: Datagram) -> Datagram:
        self.write(datagram)
        return datagram

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_pcap(path: str):
    """Parse a pcap file back into (timestamp, raw_ip_bytes) tuples.

    Round-trip helper for tests and offline analysis; handles only the
    format this writer produces (big-endian classic pcap, LINKTYPE_RAW).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < 24:
        raise ValueError("not a pcap file this reader understands")
    magic, major, minor, _tz, _sig, _snap, linktype = struct.unpack(
        "!IHHiIII", data[:24]
    )
    if magic != _MAGIC:
        raise ValueError("not a pcap file this reader understands")
    if linktype != _LINKTYPE_RAW:
        raise ValueError(f"unexpected linktype {linktype}")
    packets = []
    offset = 24
    while offset < len(data):
        if offset + 16 > len(data):
            raise ValueError("truncated pcap record header")
        seconds, micros, caplen, _origlen = struct.unpack(
            "!IIII", data[offset : offset + 16]
        )
        offset += 16
        packets.append((seconds + micros / 1e6, data[offset : offset + caplen]))
        offset += caplen
    return packets


_HEADER = struct.pack(
    "!IHHiIII", _MAGIC, _VERSION[0], _VERSION[1], 0, 0, _SNAPLEN, _LINKTYPE_RAW
)


def _records_bytes(path: str) -> bytes:
    """A pcap file's record stream (header validated, then stripped)."""
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < 24 or data[:24] != _HEADER:
        raise ValueError(f"{path}: not a pcap file this merger understands")
    return data[24:]


def pcap_file_digest(path: str) -> str:
    """SHA-256 over a pcap's record stream (header excluded).

    Excluding the 24-byte file header makes a single trace's digest equal
    the digest of a one-input merge, so single-process and fleet runs are
    directly comparable.
    """
    return hashlib.sha256(_records_bytes(path)).hexdigest()


def merge_pcaps(paths: Iterable[str], out_path: str) -> Tuple[str, str]:
    """Concatenate per-shard pcaps in the given (shard-major) order.

    Returns ``(out_path, sha256_hexdigest)`` where the digest covers the
    merged record stream.  Records keep their original simulated
    timestamps; ordering is by position in ``paths`` — the caller passes
    shards in cell-index order, which the fleet's contiguous partitioning
    makes identical across shard counts.
    """
    digest = hashlib.sha256()
    streams: List[bytes] = []
    for path in paths:
        records = _records_bytes(path)
        digest.update(records)
        streams.append(records)
    with open(out_path, "wb") as out:
        out.write(_HEADER)
        for records in streams:
            out.write(records)
    return out_path, digest.hexdigest()
