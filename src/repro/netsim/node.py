"""Nodes (hosts and routers) and their interfaces.

A ``Node`` owns interfaces and a per-family routing table (longest-prefix
match).  ``Router`` forwards packets not addressed to it; ``Host`` hands
local deliveries to registered protocol handlers (the TCP and UDP stacks
register themselves).  Hosts can be dual-stack — the Figure 4 experiment
uses a host with one IPv4-only and one IPv6-only interface.

Fast path (``fastpath`` feature ``netsim.fast``): per-node caches for
``owns_address`` (a set of owned addresses) and ``lookup_route`` (a
destination-keyed memo of the longest-prefix match).  Both are dropped
whenever an interface address or the routing table changes, so they are
pure memoization of the reference scans.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, Dict, Optional

from repro import fastpath
from repro.netsim.packet import Datagram, IPAddress


class Interface:
    """One network interface: a node-side attachment point for a link."""

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self.link = None
        self.up = True
        self.ipv4: Optional[ipaddress.IPv4Interface] = None
        self.ipv6: Optional[ipaddress.IPv6Interface] = None

    def configure_ipv4(self, cidr: str) -> "Interface":
        self.ipv4 = ipaddress.IPv4Interface(cidr)
        self.node.invalidate_lookup_caches()
        return self

    def configure_ipv6(self, cidr: str) -> "Interface":
        self.ipv6 = ipaddress.IPv6Interface(cidr)
        self.node.invalidate_lookup_caches()
        return self

    def address_for_family(self, version: int) -> Optional[IPAddress]:
        if version == 4 and self.ipv4 is not None:
            return self.ipv4.ip
        if version == 6 and self.ipv6 is not None:
            return self.ipv6.ip
        return None

    def networks(self):
        if self.ipv4 is not None:
            yield self.ipv4.network
        if self.ipv6 is not None:
            yield self.ipv6.network

    def attach_link(self, link) -> None:
        if self.link is not None:
            raise ValueError(f"{self} already attached to a link")
        self.link = link
        link.attach(self)

    def send(self, datagram: Datagram) -> None:
        if not self.up or self.link is None:
            return
        self.link.transmit(self, datagram)

    def send_batch(self, datagrams) -> None:
        """Burst form of :meth:`send` (the ``netsim.vectorq`` path)."""
        if not self.up or self.link is None:
            return
        self.link.transmit_batch(self, datagrams)

    def deliver(self, datagram: Datagram) -> None:
        if self.up:
            self.node.receive(datagram, self)

    def set_down(self) -> None:
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def __repr__(self) -> str:
        return f"<Interface {self.node.name}:{self.name}>"


class Node:
    """Base class for hosts and routers."""

    forwarding = False

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: dict[str, Interface] = {}
        # Routes: list of (network, interface) sorted by prefix length
        # descending so iteration order gives longest-prefix match.
        self._routes: list = []
        self.packets_forwarded = 0
        self.packets_delivered = 0
        # Lazy lookup caches ("netsim.fast"); see invalidate_lookup_caches.
        self._owned_cache: Optional[frozenset] = None
        self._route_cache: Dict[tuple, Optional[Interface]] = {}

    # -- configuration ---------------------------------------------------

    def add_interface(self, name: str) -> Interface:
        if name in self.interfaces:
            raise ValueError(f"duplicate interface name {name!r}")
        interface = Interface(self, name)
        self.interfaces[name] = interface
        return interface

    def add_route(self, network, interface: Interface) -> None:
        network = (
            ipaddress.ip_network(network) if isinstance(network, str) else network
        )
        self._routes.append((network, interface))
        self._routes.sort(key=lambda entry: entry[0].prefixlen, reverse=True)
        self.invalidate_lookup_caches()

    def clear_routes(self) -> None:
        self._routes.clear()
        self.invalidate_lookup_caches()

    def invalidate_lookup_caches(self) -> None:
        """Drop the address/route memos after any topology change."""
        self._owned_cache = None
        self._route_cache.clear()

    # -- address helpers -----------------------------------------------------

    def addresses(self, version: Optional[int] = None):
        for interface in self.interfaces.values():
            for family in (4, 6):
                if version is not None and family != version:
                    continue
                address = interface.address_for_family(family)
                if address is not None:
                    yield address

    def owns_address(self, address: IPAddress) -> bool:
        if fastpath.flags["netsim.fast"]:
            # Keyed by (concrete class, integer value): hashing an
            # ``ipaddress`` object builds a hex string every time, while
            # a (type, int) tuple hashes in a few nanoseconds.  The class
            # in the key keeps v4 and v6 addresses with equal integer
            # values distinct.
            if self._owned_cache is None:
                self._owned_cache = frozenset(
                    (owned.__class__, int(owned)) for owned in self.addresses()
                )
            return (address.__class__, address._ip) in self._owned_cache
        return any(address == owned for owned in self.addresses())

    def interface_for_address(self, address: IPAddress) -> Optional[Interface]:
        for interface in self.interfaces.values():
            if interface.address_for_family(address.version) == address:
                return interface
        return None

    # -- data path -------------------------------------------------------------

    def receive(self, datagram: Datagram, interface: Interface) -> None:
        if self.owns_address(datagram.dst):
            self.packets_delivered += 1
            self.local_deliver(datagram, interface)
        elif self.forwarding:
            self.forward(datagram)

    def forward(self, datagram: Datagram) -> None:
        if datagram.hop_limit <= 1:
            return
        out = self.lookup_route(datagram.dst)
        if out is None:
            return
        self.packets_forwarded += 1
        out.send(datagram.copy(hop_limit=datagram.hop_limit - 1))

    def lookup_route(self, destination: IPAddress) -> Optional[Interface]:
        if fastpath.flags["netsim.fast"]:
            key = (destination.__class__, destination._ip)
            try:
                return self._route_cache[key]
            except KeyError:
                pass
            result = self._lookup_route_scan(destination)
            self._route_cache[key] = result
            return result
        return self._lookup_route_scan(destination)

    def _lookup_route_scan(self, destination: IPAddress) -> Optional[Interface]:
        for network, interface in self._routes:
            if network.version == destination.version and destination in network:
                return interface
        return None

    def send_ip(self, datagram: Datagram) -> bool:
        """Originate a datagram from this node. Returns False if unroutable."""
        out = self.lookup_route(datagram.dst)
        if out is None:
            return False
        out.send(datagram)
        return True

    def send_ip_batch(self, datagrams) -> bool:
        """Originate a burst sharing one destination (``netsim.vectorq``).

        The route is resolved once for the burst — callers guarantee all
        datagrams share ``dst``, which is what makes the burst a single
        link-direction enqueue sequence downstream.
        """
        out = self.lookup_route(datagrams[0].dst)
        if out is None:
            return False
        out.send_batch(datagrams)
        return True

    def local_deliver(self, datagram: Datagram, interface: Interface) -> None:
        """Overridden by Host; routers silently sink local traffic."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """A node that forwards transit traffic."""

    forwarding = True


class Host(Node):
    """An end host with protocol handlers (TCP/UDP stacks attach here)."""

    forwarding = False

    def __init__(self, sim, name: str) -> None:
        super().__init__(sim, name)
        self._protocol_handlers: dict[int, Callable] = {}

    def register_protocol(self, protocol: int, handler: Callable) -> None:
        """Register ``handler(datagram, interface)`` for an IP protocol number."""
        if protocol in self._protocol_handlers:
            raise ValueError(f"protocol {protocol} already has a handler")
        self._protocol_handlers[protocol] = handler

    def local_deliver(self, datagram: Datagram, interface: Interface) -> None:
        handler = self._protocol_handlers.get(datagram.protocol)
        if handler is not None:
            handler(datagram, interface)
