"""Poly1305 one-time authenticator (RFC 8439 section 2.5).

This scalar implementation is the reference; the batched fast path in
``repro.crypto.poly1305_fast`` must agree with it bit-for-bit on every
input (cross-checked by randomized tests).
"""

from __future__ import annotations

import hmac

from repro.crypto.chacha20 import chacha20_block

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for start in range(0, len(message), 16):
        chunk = message[start : start + 16]
        # Each block gets a high bit appended (the 0x01 byte past the end).
        block = int.from_bytes(chunk + b"\x01", "little")
        accumulator = ((accumulator + block) * r) % _P
    accumulator = (accumulator + s) & ((1 << 128) - 1)
    return accumulator.to_bytes(16, "little")


def poly1305_key_gen(key: bytes, nonce: bytes) -> bytes:
    """Derive the per-message Poly1305 key from ChaCha20 block 0 (RFC 8439 2.6)."""
    return chacha20_block(key, 0, nonce)[:32]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch.

    Delegates to ``hmac.compare_digest`` (constant-time in C) instead of
    the original per-byte Python loop; that loop survives only as a
    documented reference in ``tests/crypto/test_fastpath_crypto.py``.
    """
    if len(a) != len(b):
        return False
    return hmac.compare_digest(a, b)
