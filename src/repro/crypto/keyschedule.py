"""The TLS 1.3 key schedule (RFC 8446 section 7.1) for SHA-256 suites.

The schedule is a three-stage HKDF ladder:

    0 -> Extract(0, PSK)          = early secret
      -> Extract(., ECDHE)        = handshake secret
      -> Extract(., 0)            = master secret

Each stage yields Derive-Secret outputs for client/server traffic keys.
TCPLS extends this at the application layer by deriving *per-stream*
traffic secrets from the exporter secret (see ``repro.core.stream``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.aead import ChaCha20Poly1305
from repro.crypto.hkdf import (
    HASH_LENGTH,
    derive_secret,
    hkdf_expand_label,
    hkdf_extract,
    sha256,
)

_EMPTY_HASH = hashlib.sha256(b"").digest()
_ZEROS = b"\x00" * HASH_LENGTH


@dataclass
class TrafficKeys:
    """AEAD key material derived from one traffic secret (RFC 8446 7.3)."""

    secret: bytes
    key: bytes
    iv: bytes

    @classmethod
    def from_secret(cls, secret: bytes) -> "TrafficKeys":
        return cls(
            secret=secret,
            key=hkdf_expand_label(secret, "key", b"", ChaCha20Poly1305.key_length),
            iv=hkdf_expand_label(secret, "iv", b"", ChaCha20Poly1305.nonce_length),
        )

    def nonce_for(self, sequence_number: int) -> bytes:
        """Per-record nonce: IV XOR left-padded sequence number (RFC 8446 5.3)."""
        seq = sequence_number.to_bytes(len(self.iv), "big")
        return bytes(a ^ b for a, b in zip(self.iv, seq))

    def next_generation(self) -> "TrafficKeys":
        """Key update: traffic secret N+1 (RFC 8446 section 7.2)."""
        return TrafficKeys.from_secret(
            hkdf_expand_label(self.secret, "traffic upd", b"", HASH_LENGTH)
        )


class KeySchedule:
    """Drives the RFC 8446 key schedule as handshake inputs arrive."""

    def __init__(self, psk: bytes = b"") -> None:
        self._transcript = hashlib.sha256()
        self.early_secret = hkdf_extract(_ZEROS, psk or _ZEROS)
        self.handshake_secret = b""
        self.master_secret = b""
        self.client_handshake_traffic = b""
        self.server_handshake_traffic = b""
        self.client_application_traffic = b""
        self.server_application_traffic = b""
        self.exporter_secret = b""
        self.resumption_master_secret = b""

    # -- transcript management -------------------------------------------

    def update_transcript(self, handshake_bytes: bytes) -> None:
        self._transcript.update(handshake_bytes)

    def transcript_hash(self) -> bytes:
        return self._transcript.copy().digest()

    # -- stage derivations -------------------------------------------------

    def derive_early(self) -> dict:
        """Early-data secrets (0-RTT), bound to the ClientHello transcript."""
        transcript = self.transcript_hash()
        return {
            "client_early_traffic": derive_secret(
                self.early_secret, "c e traffic", transcript
            ),
            "early_exporter": derive_secret(
                self.early_secret, "e exp master", transcript
            ),
            "binder_key": derive_secret(
                self.early_secret, "res binder", _EMPTY_HASH
            ),
        }

    def input_ecdhe(self, shared_secret: bytes) -> None:
        """Mix the (EC)DHE shared secret in; call after ServerHello is hashed."""
        derived = derive_secret(self.early_secret, "derived", _EMPTY_HASH)
        self.handshake_secret = hkdf_extract(derived, shared_secret)
        transcript = self.transcript_hash()
        self.client_handshake_traffic = derive_secret(
            self.handshake_secret, "c hs traffic", transcript
        )
        self.server_handshake_traffic = derive_secret(
            self.handshake_secret, "s hs traffic", transcript
        )

    def derive_master(self) -> None:
        """Derive application secrets; call after server Finished is hashed."""
        derived = derive_secret(self.handshake_secret, "derived", _EMPTY_HASH)
        self.master_secret = hkdf_extract(derived, _ZEROS)
        transcript = self.transcript_hash()
        self.client_application_traffic = derive_secret(
            self.master_secret, "c ap traffic", transcript
        )
        self.server_application_traffic = derive_secret(
            self.master_secret, "s ap traffic", transcript
        )
        self.exporter_secret = derive_secret(
            self.master_secret, "exp master", transcript
        )

    def derive_resumption(self) -> None:
        """Resumption master secret; call after client Finished is hashed."""
        self.resumption_master_secret = derive_secret(
            self.master_secret, "res master", self.transcript_hash()
        )

    # -- helpers -------------------------------------------------------------

    def finished_key(self, base_secret: bytes) -> bytes:
        return hkdf_expand_label(base_secret, "finished", b"", HASH_LENGTH)

    def finished_verify_data(self, base_secret: bytes) -> bytes:
        import hmac as _hmac

        key = self.finished_key(base_secret)
        return _hmac.new(key, self.transcript_hash(), hashlib.sha256).digest()

    def export(self, label: str, context: bytes, length: int) -> bytes:
        """RFC 8446 section 7.5 exporter; TCPLS derives stream keys here."""
        if not self.exporter_secret:
            raise ValueError("exporter secret not yet available")
        derived = derive_secret(self.exporter_secret, label, _EMPTY_HASH)
        return hkdf_expand_label(derived, "exporter", sha256(context), length)

    @staticmethod
    def resumption_psk(resumption_master_secret: bytes, ticket_nonce: bytes) -> bytes:
        return hkdf_expand_label(
            resumption_master_secret, "resumption", ticket_nonce, HASH_LENGTH
        )
