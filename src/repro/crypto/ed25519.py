"""Ed25519 signatures (RFC 8032), used for certificate signing.

Reference (slow, non-constant-time) implementation following RFC 8032
section 5.1; sufficient for a simulator where the adversary is a
middlebox model, not a timing attacker.  Validated against the RFC 8032
section 7.1 test vectors.
"""

from __future__ import annotations

import hashlib

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

# Base point (from RFC 8032 section 5.1).
_BY = (4 * pow(5, _P - 2, _P)) % _P


def _recover_x(y: int, sign: int) -> int:
    if y >= _P:
        raise ValueError("invalid point encoding")
    x2 = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P)
    if x2 == 0:
        if sign:
            raise ValueError("invalid point encoding")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = (x * pow(2, (_P - 1) // 4, _P)) % _P
    if (x * x - x2) % _P != 0:
        raise ValueError("invalid point encoding")
    if (x & 1) != sign:
        x = _P - x
    return x


_BX = _recover_x(_BY, 0)
_BASE = (_BX, _BY, 1, (_BX * _BY) % _P)
_IDENTITY = (0, 1, 1, 0)


def _point_add(p, q):
    # Extended twisted-Edwards coordinates addition (RFC 8032 section 5.1.4).
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = ((y1 - x1) * (y2 - x2)) % _P
    b = ((y1 + x1) * (y2 + x2)) % _P
    c = (2 * t1 * t2 * _D) % _P
    d = (2 * z1 * z2) % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return ((e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P)


def _point_mul(scalar: int, point):
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _point_equal(p, q) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(point) -> bytes:
    x, y, z, _ = point
    zinv = pow(z, _P - 2, _P)
    x, y = (x * zinv) % _P, (y * zinv) % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes):
    if len(data) != 32:
        raise ValueError("point encoding must be 32 bytes")
    encoded = int.from_bytes(data, "little")
    y = encoded & ((1 << 255) - 1)
    sign = encoded >> 255
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % _P)


def _sha512_int(*parts: bytes) -> int:
    return int.from_bytes(hashlib.sha512(b"".join(parts)).digest(), "little")


def _secret_expand(secret: bytes):
    if len(secret) != 32:
        raise ValueError("Ed25519 private key must be 32 bytes")
    digest = hashlib.sha512(secret).digest()
    a = int.from_bytes(digest[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, digest[32:]


def ed25519_public_key(secret: bytes) -> bytes:
    a, _ = _secret_expand(secret)
    return _point_compress(_point_mul(a, _BASE))


def ed25519_sign(secret: bytes, message: bytes) -> bytes:
    a, prefix = _secret_expand(secret)
    public = _point_compress(_point_mul(a, _BASE))
    r = _sha512_int(prefix, message) % _L
    r_point = _point_compress(_point_mul(r, _BASE))
    h = _sha512_int(r_point, public, message) % _L
    s = (r + h * a) % _L
    return r_point + s.to_bytes(32, "little")


def ed25519_verify(public: bytes, message: bytes, signature: bytes) -> bool:
    if len(public) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    h = _sha512_int(signature[:32], public, message) % _L
    left = _point_mul(s, _BASE)
    right = _point_add(r_point, _point_mul(h, a_point))
    return _point_equal(left, right)


class Ed25519PrivateKey:
    """Convenience wrapper pairing a seed with its public key."""

    def __init__(self, seed: bytes) -> None:
        self._seed = bytes(seed)
        self.public_bytes = ed25519_public_key(self._seed)

    def sign(self, message: bytes) -> bytes:
        return ed25519_sign(self._seed, message)
