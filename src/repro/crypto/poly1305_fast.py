"""Batched Poly1305 (RFC 8439 section 2.5), bit-identical to the scalar
reference in ``repro.crypto.poly1305``.

The scalar implementation performs one big-int multiply **and one
reduction mod p** per 16-byte block.  This version processes ``k``
blocks per reduction using precomputed powers ``r^1 .. r^k``: unrolling
Horner's rule over a group of k blocks,

    a' = (a + b_1) * r^k  +  b_2 * r^(k-1)  +  ...  +  b_k * r   (mod p)

so the group costs k small multiplies, one k-term sum and a *single*
``% p`` — instead of k of each.

Two group evaluators, picked at import time:

- **numpy** (preferred): blocks and powers are decomposed into five
  26-bit limbs and the k-term polynomial sum becomes one integer
  ``einsum`` per message — a (groups, k, 5) x (k, 5) contraction whose
  (5, 5) limb-product grid per group is recombined exactly into a
  Python int.  Products are <= 2^52 and are summed over at most k = 64
  blocks, so every intermediate fits an int64 with five bits to spare:
  the arithmetic is exact, never modular-by-overflow.
- **pure int** (fallback): message blocks are pulled out of the buffer
  four at a time (one 64-byte ``int.from_bytes`` per quad) and the
  k-term sum is a C-level ``sum(map(mul, limbs, powers))``.

The group size trades precomputation (k-1 multiplies per message, since
``r`` is a fresh one-time key for every AEAD record) against the number
of reductions; ``_GROUP_BLOCKS = 64`` sits near the optimum for the
record sizes the TLS layer produces (up to 2^14 bytes).

The scalar ``poly1305_mac`` stays the reference and the fallback for
short messages, where precomputing powers would cost more than it
saves.  ``tests/crypto`` cross-checks all implementations on randomized
inputs; they must agree bit-for-bit on every input.
"""

from __future__ import annotations

from operator import mul

try:
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None
    HAVE_NUMPY = False

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
_HI = 1 << 128          # the high bit appended to every full block
_M128 = (1 << 128) - 1
_M26 = (1 << 26) - 1

#: Blocks folded per reduction.  The numpy evaluator's exactness proof
#: needs 2^52 * _GROUP_BLOCKS < 2^63 — do not raise past 2048 without
#: revisiting the limb bound.
_GROUP_BLOCKS = 64
_GROUP_BYTES = 16 * _GROUP_BLOCKS

#: Below this size the scalar loop wins (power precompute dominates).
MIN_BATCH_BYTES = 512


def _powers_of_r(r: int) -> list:
    """``[r^k, r^(k-1), ..., r^1] mod p`` for the group evaluators."""
    powers = [r] * _GROUP_BLOCKS
    for j in range(_GROUP_BLOCKS - 2, -1, -1):
        powers[j] = (powers[j + 1] * r) % _P
    return powers


def _grouped_numpy(view, grouped_end: int, powers: list, r_k: int) -> int:
    """Fold ``view[:grouped_end]`` (a whole number of groups) into the
    accumulator using one exact int64 einsum for all group sums."""
    n_groups = grouped_end // _GROUP_BYTES
    words = _np.frombuffer(view[:grouped_end], dtype="<u4").astype(_np.int64)
    w = words.reshape(-1, 4)  # one row of four 32-bit words per block
    w0, w1, w2, w3 = w[:, 0], w[:, 1], w[:, 2], w[:, 3]
    limbs = _np.empty((w.shape[0], 5), dtype=_np.int64)
    limbs[:, 0] = w0 & _M26
    limbs[:, 1] = ((w0 >> 26) | (w1 << 6)) & _M26
    limbs[:, 2] = ((w1 >> 20) | (w2 << 12)) & _M26
    limbs[:, 3] = ((w2 >> 14) | (w3 << 18)) & _M26
    limbs[:, 4] = (w3 >> 8) | (1 << 24)  # 2^128 high bit lives in limb 4
    # Power limbs the same vectorized way: each power < 2^130 padded to
    # five little-endian 32-bit words, split with the same shift pattern
    # (the fifth word holds bits 128..129 of the top limb).
    p_words = _np.frombuffer(
        b"".join(power.to_bytes(20, "little") for power in powers), dtype="<u4"
    ).astype(_np.int64).reshape(-1, 5)
    p0, p1, p2, p3, p4 = (p_words[:, i] for i in range(5))
    p_limbs = _np.empty((_GROUP_BLOCKS, 5), dtype=_np.int64)
    p_limbs[:, 0] = p0 & _M26
    p_limbs[:, 1] = ((p0 >> 26) | (p1 << 6)) & _M26
    p_limbs[:, 2] = ((p1 >> 20) | (p2 << 12)) & _M26
    p_limbs[:, 3] = ((p2 >> 14) | (p3 << 18)) & _M26
    p_limbs[:, 4] = ((p3 >> 8) | (p4 << 24)) & _M26
    # grid[g, a, b] = sum_k block_limb[g*k + k, a] * power_limb[k, b]
    grid = _np.einsum("gka,kb->gab", limbs.reshape(n_groups, _GROUP_BLOCKS, 5), p_limbs)
    # Collapse the (5, 5) limb-product grid along its anti-diagonals:
    # entry (a, b) carries weight 2^(26*(a+b)), so the nine diagonal
    # sums are the coefficients of 2^(26*d).  Each grid entry is below
    # 2^52 * _GROUP_BLOCKS = 2^58 and a diagonal sums at most five of
    # them — still exact in int64.  Cuts the per-group Python-int
    # recombination from 25 terms to 9.
    diag = _np.zeros((n_groups, 9), dtype=_np.int64)
    for a in range(5):
        diag[:, a : a + 5] += grid[:, a, :]
    accumulator = 0
    for d in diag.tolist():
        total = (
            d[0]
            + (d[1] << 26)
            + (d[2] << 52)
            + (d[3] << 78)
            + (d[4] << 104)
            + (d[5] << 130)
            + (d[6] << 156)
            + (d[7] << 182)
            + (d[8] << 208)
        )
        accumulator = (accumulator * r_k + total) % _P
    return accumulator


def _grouped_int(view, grouped_end: int, powers: list, r_k: int) -> int:
    """Pure-int group fold: 64-byte reads, C-level k-term dot product."""
    from_bytes = int.from_bytes
    accumulator = 0
    offset = 0
    while offset < grouped_end:
        limbs = []
        append = limbs.append
        for quad_offset in range(offset, offset + _GROUP_BYTES, 64):
            quad = from_bytes(view[quad_offset : quad_offset + 64], "little")
            append((quad & _M128) | _HI)
            append(((quad >> 128) & _M128) | _HI)
            append(((quad >> 256) & _M128) | _HI)
            append((quad >> 384) | _HI)
        accumulator = (accumulator * r_k + sum(map(mul, limbs, powers))) % _P
        offset += _GROUP_BYTES
    return accumulator


def poly1305_mac_fast(key: bytes, message) -> bytes:
    """Compute the 16-byte Poly1305 tag; same contract as the scalar
    ``poly1305_mac`` but ``message`` may be any bytes-like object."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    view = memoryview(message)
    n = len(view)
    full = n - (n % 16)

    accumulator = 0
    offset = 0
    from_bytes = int.from_bytes

    grouped_end = full - (full % _GROUP_BYTES)
    if grouped_end:
        powers = _powers_of_r(r)
        r_k = powers[0]
        if HAVE_NUMPY:
            accumulator = _grouped_numpy(view, grouped_end, powers, r_k)
        else:
            accumulator = _grouped_int(view, grouped_end, powers, r_k)
        offset = grouped_end

    # Leftover full blocks (fewer than one group): scalar Horner.
    while offset < full:
        block = from_bytes(view[offset : offset + 16], "little") | _HI
        accumulator = ((accumulator + block) * r) % _P
        offset += 16

    # Final partial block, high bit at its true end (RFC 8439 2.5.1).
    if offset < n:
        block = int.from_bytes(bytes(view[offset:]) + b"\x01", "little")
        accumulator = ((accumulator + block) * r) % _P

    accumulator = (accumulator + s) & _M128
    return accumulator.to_bytes(16, "little")
