"""HKDF (RFC 5869) and the TLS 1.3 HKDF-Expand-Label wrapper (RFC 8446 7.1).

SHA-256 only — the one hash our single cipher suite needs.
"""

from __future__ import annotations

import hashlib
import hmac

HASH_LENGTH = 32  # SHA-256


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC-Hash(salt, IKM)."""
    if not salt:
        salt = b"\x00" * HASH_LENGTH
    return _hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    if length > 255 * HASH_LENGTH:
        raise ValueError("HKDF-Expand output too long")
    output = b""
    previous = b""
    counter = 1
    while len(output) < length:
        previous = _hmac_sha256(prk, previous + info + bytes([counter]))
        output += previous
        counter += 1
    return output[:length]


def hkdf_expand_label(secret: bytes, label: str, context: bytes, length: int) -> bytes:
    """TLS 1.3 HKDF-Expand-Label (RFC 8446 section 7.1).

    HkdfLabel = length(u16) || "tls13 " + label (vec8) || context (vec8)
    """
    full_label = b"tls13 " + label.encode("ascii")
    hkdf_label = (
        length.to_bytes(2, "big")
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, hkdf_label, length)


def derive_secret(secret: bytes, label: str, transcript_hash: bytes) -> bytes:
    """TLS 1.3 Derive-Secret: Expand-Label with a transcript hash context."""
    return hkdf_expand_label(secret, label, transcript_hash, HASH_LENGTH)


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()
