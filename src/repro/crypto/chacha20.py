"""ChaCha20 stream cipher (RFC 8439 section 2).

Implements the 20-round ChaCha block function and the counter-mode stream
cipher built on it.  Used both directly (record encryption) and as the key
derivation step of Poly1305 (``poly1305_key_gen``).
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

# "expand 32-byte k" as four little-endian words (RFC 8439 section 2.3).
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte keystream block (RFC 8439 section 2.3)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    initial = list(_CONSTANTS)
    initial.extend(struct.unpack("<8I", key))
    initial.append(counter & _MASK32)
    initial.extend(struct.unpack("<3I", nonce))

    state = list(initial)
    for _ in range(10):
        _quarter_round(state, 0, 4, 8, 12)
        _quarter_round(state, 1, 5, 9, 13)
        _quarter_round(state, 2, 6, 10, 14)
        _quarter_round(state, 3, 7, 11, 15)
        _quarter_round(state, 0, 5, 10, 15)
        _quarter_round(state, 1, 6, 11, 12)
        _quarter_round(state, 2, 7, 8, 13)
        _quarter_round(state, 3, 4, 9, 14)

    out = [(s + i) & _MASK32 for s, i in zip(state, initial)]
    return struct.pack("<16I", *out)


def chacha20_encrypt(key: bytes, counter: int, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt (or decrypt) ``plaintext`` in counter mode (RFC 8439 2.4).

    Inputs beyond a few blocks take a numpy-vectorized keystream path
    (``repro.crypto.chacha20_fast``); the scalar loop below is the
    reference implementation and the fallback.  Both are exercised against
    the RFC vectors in the test suite.
    """
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    if len(plaintext) >= 256:
        try:
            return _encrypt_vectorized(key, counter, nonce, plaintext)
        except ImportError:  # pragma: no cover - numpy is a hard dependency
            pass
    output = bytearray(len(plaintext))
    for block_index in range(0, len(plaintext), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = plaintext[block_index : block_index + 64]
        for i, byte in enumerate(chunk):
            output[block_index + i] = byte ^ keystream[i]
    return bytes(output)


def _encrypt_vectorized(key: bytes, counter: int, nonce: bytes, plaintext: bytes) -> bytes:
    import numpy as np

    from repro.crypto.chacha20_fast import chacha20_keystream

    n_blocks = (len(plaintext) + 63) // 64
    keystream = chacha20_keystream(key, counter, nonce, n_blocks)
    data = np.frombuffer(plaintext, dtype=np.uint8)
    ks = np.frombuffer(keystream, dtype=np.uint8)[: len(plaintext)]
    return (data ^ ks).tobytes()
