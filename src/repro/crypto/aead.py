"""ChaCha20-Poly1305 AEAD construction (RFC 8439 section 2.8).

This is the single cipher suite the TLS stack uses
(``TLS_CHACHA20_POLY1305_SHA256``).  Decryption failures raise
``CryptoError`` — TCPLS counts those as forgery attempts when doing
trial decryption across per-stream contexts (paper section 2.3).

Fast path (``fastpath`` feature ``crypto.batch``): for multi-block
records the Poly1305 one-time key and the payload keystream come out of
a *single* vectorized ``chacha20_keystream`` call (blocks 0..n), and the
tag is computed by the batched Poly1305.  The scalar construction below
is the reference; both produce bit-identical output and the scalar path
engages automatically when numpy is missing or the record is small.

``seal_with_keystream`` / ``open_with_keystream`` additionally let the
record layer supply keystream bytes it precomputed for several future
records at once (see the lookahead cache in ``repro.tls.record``).
"""

from __future__ import annotations

import struct

from repro import fastpath
from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.poly1305 import constant_time_equal, poly1305_key_gen, poly1305_mac
from repro.crypto.poly1305_fast import MIN_BATCH_BYTES, poly1305_mac_fast
from repro.utils.errors import CryptoError

try:  # numpy is baked into the image, but the scalar path must survive
    from repro.crypto.chacha20_fast import chacha20_keystream, xor_keystream

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via fastpath flags
    _HAVE_NUMPY = False

#: Exposed so the record layer can gate its keystream lookahead cache.
HAVE_NUMPY = _HAVE_NUMPY

TAG_LENGTH = 16
KEY_LENGTH = 32
NONCE_LENGTH = 12

#: Payload size from which the one-call keystream path pays off.
BATCH_MIN_PAYLOAD = 256


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return b""
    return b"\x00" * (16 - len(data) % 16)


def _auth_input(aad: bytes, ciphertext: bytes) -> bytes:
    return b"".join(
        (
            aad,
            _pad16(aad),
            ciphertext,
            _pad16(ciphertext),
            struct.pack("<QQ", len(aad), len(ciphertext)),
        )
    )


def _mac(otk: bytes, data: bytes) -> bytes:
    """Tag via the batched Poly1305 when it is worth it, scalar otherwise."""
    if len(data) >= MIN_BATCH_BYTES and fastpath.enabled("crypto.batch"):
        return poly1305_mac_fast(otk, data)
    return poly1305_mac(otk, data)


def _use_batch(payload_length: int) -> bool:
    return (
        _HAVE_NUMPY
        and payload_length >= BATCH_MIN_PAYLOAD
        and fastpath.enabled("crypto.batch")
    )


def seal_with_keystream(keystream, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt + tag using externally supplied keystream bytes.

    ``keystream`` must hold at least ``64 + len(plaintext)`` bytes of the
    ChaCha20 stream for this record's nonce starting at block 0 (block 0
    yields the Poly1305 one-time key, blocks 1.. the payload stream).
    Output is bit-identical to ``ChaCha20Poly1305.encrypt``.
    """
    otk = bytes(keystream[:32])
    ciphertext = xor_keystream(plaintext, keystream[64 : 64 + len(plaintext)])
    tag = _mac(otk, _auth_input(aad, ciphertext))
    return ciphertext + tag


def open_with_keystream(keystream, data: bytes, aad: bytes = b"") -> bytes:
    """Verify + decrypt using externally supplied keystream bytes."""
    if len(data) < TAG_LENGTH:
        raise CryptoError("ciphertext shorter than the AEAD tag")
    ciphertext, tag = data[:-TAG_LENGTH], data[-TAG_LENGTH:]
    otk = bytes(keystream[:32])
    expected = _mac(otk, _auth_input(aad, ciphertext))
    if not constant_time_equal(tag, expected):
        raise CryptoError("AEAD tag verification failed")
    return xor_keystream(ciphertext, keystream[64 : 64 + len(ciphertext)])


class ChaCha20Poly1305:
    """AEAD cipher object bound to one 32-byte key."""

    key_length = KEY_LENGTH
    nonce_length = NONCE_LENGTH
    tag_length = TAG_LENGTH

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_LENGTH:
            raise ValueError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = bytes(key)

    def _keystream(self, nonce: bytes, payload_length: int) -> bytes:
        """Blocks 0..n in one vectorized call: OTK + payload stream."""
        n_blocks = 1 + (payload_length + 63) // 64
        return chacha20_keystream(self._key, 0, nonce, n_blocks)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || 16-byte tag."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError("nonce must be 12 bytes")
        if _use_batch(len(plaintext)):
            return seal_with_keystream(
                self._keystream(nonce, len(plaintext)), plaintext, aad
            )
        otk = poly1305_key_gen(self._key, nonce)
        ciphertext = chacha20_encrypt(self._key, 1, nonce, plaintext)
        tag = poly1305_mac(otk, _auth_input(aad, ciphertext))
        return ciphertext + tag

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext, or raise ``CryptoError``."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError("nonce must be 12 bytes")
        if len(data) < TAG_LENGTH:
            raise CryptoError("ciphertext shorter than the AEAD tag")
        ciphertext, tag = data[:-TAG_LENGTH], data[-TAG_LENGTH:]
        # The tag is always verified before any payload keystream is
        # generated, so a failed trial decryption costs only the MAC.
        otk = poly1305_key_gen(self._key, nonce)
        expected = _mac(otk, _auth_input(aad, ciphertext))
        if not constant_time_equal(tag, expected):
            raise CryptoError("AEAD tag verification failed")
        return chacha20_encrypt(self._key, 1, nonce, ciphertext)
