"""ChaCha20-Poly1305 AEAD construction (RFC 8439 section 2.8).

This is the single cipher suite the TLS stack uses
(``TLS_CHACHA20_POLY1305_SHA256``).  Decryption failures raise
``CryptoError`` — TCPLS counts those as forgery attempts when doing
trial decryption across per-stream contexts (paper section 2.3).
"""

from __future__ import annotations

import struct

from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.poly1305 import constant_time_equal, poly1305_key_gen, poly1305_mac
from repro.utils.errors import CryptoError

TAG_LENGTH = 16
KEY_LENGTH = 32
NONCE_LENGTH = 12


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return b""
    return b"\x00" * (16 - len(data) % 16)


def _auth_input(aad: bytes, ciphertext: bytes) -> bytes:
    return b"".join(
        (
            aad,
            _pad16(aad),
            ciphertext,
            _pad16(ciphertext),
            struct.pack("<QQ", len(aad), len(ciphertext)),
        )
    )


class ChaCha20Poly1305:
    """AEAD cipher object bound to one 32-byte key."""

    key_length = KEY_LENGTH
    nonce_length = NONCE_LENGTH
    tag_length = TAG_LENGTH

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_LENGTH:
            raise ValueError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = bytes(key)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || 16-byte tag."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError("nonce must be 12 bytes")
        otk = poly1305_key_gen(self._key, nonce)
        ciphertext = chacha20_encrypt(self._key, 1, nonce, plaintext)
        tag = poly1305_mac(otk, _auth_input(aad, ciphertext))
        return ciphertext + tag

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext, or raise ``CryptoError``."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError("nonce must be 12 bytes")
        if len(data) < TAG_LENGTH:
            raise CryptoError("ciphertext shorter than the AEAD tag")
        ciphertext, tag = data[:-TAG_LENGTH], data[-TAG_LENGTH:]
        otk = poly1305_key_gen(self._key, nonce)
        expected = poly1305_mac(otk, _auth_input(aad, ciphertext))
        if not constant_time_equal(tag, expected):
            raise CryptoError("AEAD tag verification failed")
        return chacha20_encrypt(self._key, 1, nonce, ciphertext)
