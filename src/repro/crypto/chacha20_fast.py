"""Vectorized ChaCha20 keystream generation using numpy.

Generates many 64-byte keystream blocks in one pass by holding the 16-word
ChaCha state as a ``(16, n_blocks)`` uint32 matrix and running the 20
rounds across all blocks simultaneously.  Output is bit-identical to the
scalar implementation in ``repro.crypto.chacha20`` (asserted by tests);
the scalar path remains the reference and the fallback.

Two entry points:

- :func:`chacha20_keystream` — blocks of one (key, nonce) stream, the
  original API;
- :func:`chacha20_keystream_multi` — blocks for *several nonces* of the
  same key in one matrix.  Per-record numpy dispatch overhead dominates
  at TLS record sizes (256 blocks ≈ 16 KiB), so batching the keystream
  for the next R records into one call is worth ~8x on the record
  datapath (see ``tls/record.py``'s keystream lookahead cache, which
  exploits the deterministic ``iv XOR sequence`` nonce schedule).

The quarter-round works in place with one shared scratch row: rotations
are two shifts and an OR into preallocated storage, so the 20 rounds
allocate nothing beyond the state matrix itself.

Throughput matters here because the network simulator pushes megabytes of
application data through the TLS record layer.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl_inplace(x: "np.ndarray", count: int, scratch: "np.ndarray") -> None:
    np.right_shift(x, np.uint32(32 - count), out=scratch)
    np.left_shift(x, np.uint32(count), out=x)
    np.bitwise_or(x, scratch, out=x)


def _quarter_round(
    state: "np.ndarray", a: int, b: int, c: int, d: int, scratch: "np.ndarray"
) -> None:
    sa, sb, sc, sd = state[a], state[b], state[c], state[d]
    np.add(sa, sb, out=sa)
    np.bitwise_xor(sd, sa, out=sd)
    _rotl_inplace(sd, 16, scratch)
    np.add(sc, sd, out=sc)
    np.bitwise_xor(sb, sc, out=sb)
    _rotl_inplace(sb, 12, scratch)
    np.add(sa, sb, out=sa)
    np.bitwise_xor(sd, sa, out=sd)
    _rotl_inplace(sd, 8, scratch)
    np.add(sc, sd, out=sc)
    np.bitwise_xor(sb, sc, out=sb)
    _rotl_inplace(sb, 7, scratch)


def _run_rounds(initial: "np.ndarray") -> bytes:
    state = initial.copy()
    scratch = np.empty(initial.shape[1], dtype=np.uint32)
    with np.errstate(over="ignore"):
        for _ in range(10):
            _quarter_round(state, 0, 4, 8, 12, scratch)
            _quarter_round(state, 1, 5, 9, 13, scratch)
            _quarter_round(state, 2, 6, 10, 14, scratch)
            _quarter_round(state, 3, 7, 11, 15, scratch)
            _quarter_round(state, 0, 5, 10, 15, scratch)
            _quarter_round(state, 1, 6, 11, 12, scratch)
            _quarter_round(state, 2, 7, 8, 13, scratch)
            _quarter_round(state, 3, 4, 9, 14, scratch)
        state += initial
    # Column-major per block: transpose so each row is one block's 16 words.
    return state.T.astype("<u4").tobytes()


def _base_state(key: bytes, n_columns: int) -> "np.ndarray":
    key_words = struct.unpack("<8I", key)
    initial = np.empty((16, n_columns), dtype=np.uint32)
    for i, word in enumerate(_CONSTANTS):
        initial[i] = word
    for i, word in enumerate(key_words):
        initial[4 + i] = word
    return initial


def chacha20_keystream(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> bytes:
    """Return ``n_blocks`` 64-byte keystream blocks starting at ``counter``."""
    if n_blocks <= 0:
        return b""
    initial = _base_state(key, n_blocks)
    # Per-block counters; ChaCha20's counter wraps at 2^32 by construction.
    initial[12] = (np.arange(counter, counter + n_blocks, dtype=np.uint64)
                   & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    nonce_words = struct.unpack("<3I", nonce)
    for i, word in enumerate(nonce_words):
        initial[13 + i] = word
    return _run_rounds(initial)


def chacha20_keystream_multi(
    key: bytes, nonces: Sequence[bytes], counter: int, blocks_per_nonce: int
) -> bytes:
    """Keystream blocks ``counter .. counter+blocks_per_nonce-1`` for every
    nonce, concatenated nonce-major, from a single vectorized pass.

    ``result[i*blocks_per_nonce*64 : (i+1)*blocks_per_nonce*64]`` equals
    ``chacha20_keystream(key, counter, nonces[i], blocks_per_nonce)``.
    """
    if blocks_per_nonce <= 0 or not nonces:
        return b""
    n_nonces = len(nonces)
    total = n_nonces * blocks_per_nonce
    initial = _base_state(key, total)
    counters = (np.arange(counter, counter + blocks_per_nonce, dtype=np.uint64)
                & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    initial[12] = np.tile(counters, n_nonces)
    nonce_words = np.array(
        [struct.unpack("<3I", nonce) for nonce in nonces], dtype=np.uint32
    )
    for i in range(3):
        initial[13 + i] = np.repeat(nonce_words[:, i], blocks_per_nonce)
    return _run_rounds(initial)


def xor_keystream(data, keystream) -> bytes:
    """XOR ``data`` with ``keystream`` (bytes-like, at least as long)."""
    plain = np.frombuffer(data, dtype=np.uint8)
    ks = np.frombuffer(keystream, dtype=np.uint8)[: len(plain)]
    return (plain ^ ks).tobytes()
