"""Vectorized ChaCha20 keystream generation using numpy.

Generates many 64-byte keystream blocks in one pass by holding the 16-word
ChaCha state as a ``(16, n_blocks)`` uint32 matrix and running the 20
rounds across all blocks simultaneously.  Output is bit-identical to the
scalar implementation in ``repro.crypto.chacha20`` (asserted by tests);
the scalar path remains the reference and the fallback.

Throughput matters here because the network simulator pushes megabytes of
application data through the TLS record layer.
"""

from __future__ import annotations

import struct

import numpy as np

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl(x: "np.ndarray", count: int) -> "np.ndarray":
    return (x << np.uint32(count)) | (x >> np.uint32(32 - count))


def _quarter_round(state: "np.ndarray", a: int, b: int, c: int, d: int) -> None:
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_keystream(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> bytes:
    """Return ``n_blocks`` 64-byte keystream blocks starting at ``counter``."""
    if n_blocks <= 0:
        return b""
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)

    initial = np.empty((16, n_blocks), dtype=np.uint32)
    for i, word in enumerate(_CONSTANTS):
        initial[i] = word
    for i, word in enumerate(key_words):
        initial[4 + i] = word
    # Per-block counters; ChaCha20's counter wraps at 2^32 by construction.
    initial[12] = (np.arange(counter, counter + n_blocks, dtype=np.uint64)
                   & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    for i, word in enumerate(nonce_words):
        initial[13 + i] = word

    state = initial.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):
            _quarter_round(state, 0, 4, 8, 12)
            _quarter_round(state, 1, 5, 9, 13)
            _quarter_round(state, 2, 6, 10, 14)
            _quarter_round(state, 3, 7, 11, 15)
            _quarter_round(state, 0, 5, 10, 15)
            _quarter_round(state, 1, 6, 11, 12)
            _quarter_round(state, 2, 7, 8, 13)
            _quarter_round(state, 3, 4, 9, 14)
        state += initial

    # Column-major per block: transpose so each row is one block's 16 words.
    return state.T.astype("<u4").tobytes()
