"""X25519 Diffie-Hellman key agreement (RFC 7748).

Montgomery-ladder scalar multiplication over Curve25519.  Validated
against the RFC 7748 section 5.2 test vectors in ``tests/crypto``.
"""

from __future__ import annotations

_P = 2**255 - 19
_A24 = 121665
_BASE_POINT = 9


def _clamp_scalar(scalar_bytes: bytes) -> int:
    if len(scalar_bytes) != 32:
        raise ValueError("X25519 scalar must be 32 bytes")
    scalar = bytearray(scalar_bytes)
    scalar[0] &= 248
    scalar[31] &= 127
    scalar[31] |= 64
    return int.from_bytes(scalar, "little")


def _decode_u_coordinate(u_bytes: bytes) -> int:
    if len(u_bytes) != 32:
        raise ValueError("X25519 u-coordinate must be 32 bytes")
    u = bytearray(u_bytes)
    u[31] &= 127  # mask the unused high bit per RFC 7748 section 5
    return int.from_bytes(u, "little")


def _ladder(scalar: int, u: int) -> int:
    """Constant-structure Montgomery ladder (RFC 7748 section 5)."""
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for bit_index in reversed(range(255)):
        bit = (scalar >> bit_index) & 1
        swap ^= bit
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = bit

        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = pow(da + cb, 2, _P)
        z3 = (x1 * pow(da - cb, 2, _P)) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    return (x2 * pow(z2, _P - 2, _P)) % _P


def x25519(scalar_bytes: bytes, u_bytes: bytes) -> bytes:
    """Scalar-multiply a public u-coordinate; returns 32 bytes."""
    scalar = _clamp_scalar(scalar_bytes)
    u = _decode_u_coordinate(u_bytes)
    return _ladder(scalar, u).to_bytes(32, "little")


def x25519_base(scalar_bytes: bytes) -> bytes:
    """Compute the public key for a private scalar (scalar * base point 9)."""
    scalar = _clamp_scalar(scalar_bytes)
    return _ladder(scalar, _BASE_POINT).to_bytes(32, "little")


class X25519PrivateKey:
    """Convenience wrapper pairing a private scalar with its public key."""

    def __init__(self, private_bytes: bytes) -> None:
        if len(private_bytes) != 32:
            raise ValueError("X25519 private key must be 32 bytes")
        self._private = bytes(private_bytes)
        self.public_bytes = x25519_base(self._private)

    def exchange(self, peer_public: bytes) -> bytes:
        """Compute the shared secret with a peer's public key."""
        shared = x25519(self._private, peer_public)
        if shared == b"\x00" * 32:
            raise ValueError("X25519 produced an all-zero shared secret")
        return shared
