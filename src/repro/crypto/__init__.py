"""Pure-Python cryptographic primitives used by the TLS 1.3 stack.

Every primitive here is implemented from its RFC and validated against the
RFC's published test vectors (see ``tests/crypto``):

- ChaCha20 stream cipher and Poly1305 MAC (RFC 8439)
- ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8)
- HKDF extract/expand (RFC 5869) and TLS 1.3 HKDF-Expand-Label (RFC 8446)
- X25519 Diffie-Hellman (RFC 7748)
- Ed25519 signatures (RFC 8032)
- The TLS 1.3 key schedule (RFC 8446 section 7.1)

Performance note: these are protocol-correct reference implementations;
the simulator exchanges megabytes, not gigabytes, so pure Python is fine.
"""

from repro.crypto.aead import ChaCha20Poly1305
from repro.crypto.hkdf import hkdf_expand, hkdf_expand_label, hkdf_extract
from repro.crypto.x25519 import x25519, x25519_base, X25519PrivateKey
from repro.crypto.ed25519 import ed25519_sign, ed25519_verify, Ed25519PrivateKey
from repro.crypto.keyschedule import KeySchedule, TrafficKeys

__all__ = [
    "ChaCha20Poly1305",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf_expand_label",
    "x25519",
    "x25519_base",
    "X25519PrivateKey",
    "ed25519_sign",
    "ed25519_verify",
    "Ed25519PrivateKey",
    "KeySchedule",
    "TrafficKeys",
]
