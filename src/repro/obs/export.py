"""Assemble and write ``BENCH_*.json`` metrics files.

``collect_metrics`` gathers, from whatever the caller has on hand (the
simulator, TCPLS sessions, links, free-form extras), one JSON-ready
document with a stable shape:

    {
      "title":            str,
      "sim_time":         float,
      "events_processed": int,
      "sessions":         [per-session counters, stats, snapshots, timeline],
      "links":            [per-link delivery/drop counters],
      "profiling":        {"top_functions": top-10 hot-function list},
      "extra":            caller-provided figures (goodput, series, ...),
    }

The benchmark conftest calls this from ``report()`` so every figure and
ablation benchmark emits its machine-readable twin next to the printed
table.  When a standing profiler is armed (the conftest arms one per
benchmark; see :mod:`repro.obs.profiling`), every export automatically
includes the flamegraph-derived top-10 hot-function table for the run so
far — the per-release profiling pass rides along in every artifact.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

from repro.obs import profiling
from repro.obs.tcpinfo import sample_tcp

SCHEMA_VERSION = 1


def _session_metrics(session) -> dict:
    """Everything one ``TcplsSession`` knows about itself."""
    connections = {}
    for conn_id, conn in session.connections.items():
        connections[str(conn_id)] = {
            "state": conn.state,
            "primary": conn.is_primary,
            "bytes_delivered": conn.bytes_delivered,
            "records_received": conn.records_received,
            "tcp": sample_tcp(conn.tcp).to_dict(),
        }
    out = {
        "role": "server" if session.is_server else "client",
        "stats": dict(session.stats),
        "connections": connections,
        "streams": sorted(session.streams),
    }
    obs = getattr(session, "obs", None)
    if obs is not None:
        out.update(obs.snapshot())
    return out


def _link_metrics(link) -> dict:
    return {"name": link.name, **link.stats}


def collect_metrics(
    title: str = "",
    sim=None,
    sessions: Iterable = (),
    links: Iterable = (),
    extra: Optional[dict] = None,
) -> dict:
    metrics = {
        "schema": SCHEMA_VERSION,
        "title": title,
        "sessions": [_session_metrics(session) for session in sessions],
        "links": [_link_metrics(link) for link in links],
    }
    if sim is not None:
        metrics["sim_time"] = sim.now
        metrics["events_processed"] = sim.events_processed
    profile = profiling.active_profile()
    if profile is not None:
        # Reading the stats disables the profiler (cProfile snapshots on
        # create_stats), so re-enable to keep the standing pass running
        # for later exports in the same benchmark.
        top = profiling.hot_functions(profile)
        profile.enable()
        metrics["profiling"] = {"top_functions": top}
    if extra:
        metrics["extra"] = extra
    return metrics


def write_metrics_json(path: str, metrics: dict) -> str:
    """Write one metrics document; returns the path written."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")
    return path
