"""The per-session (or shared) observability hub.

One ``Observability`` object bundles the three recorders — metrics
registry, trace timeline, TCP snapshot log — around a single clock.  A
``TcplsSession`` creates its own hub by default; passing one through
``TcplsContext.observability`` makes several sessions (e.g. a server
and all the sessions it accepts) share one session-wide timeline.

Everything here is observation only: no simulator events, no RNG.
Enabling or disabling the hub must never change a simulated outcome.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.profiling import SubsystemTimers
from repro.obs.tcpinfo import TcpInfoLog
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Tracer


class Observability:
    """Telemetry + tracer + TCP snapshot log + wall timers, one clock."""

    def __init__(self, sim=None, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        clock = (lambda: sim.now) if sim is not None else (lambda: 0.0)
        self.telemetry = Telemetry(enabled=enabled)
        self.tracer = Tracer(clock, enabled=enabled)
        self.tcp_log = TcpInfoLog(clock, enabled=enabled)
        self.timers = SubsystemTimers(enabled=enabled)

    def snapshot(self) -> dict:
        """Everything recorded so far, as plain JSON-ready dicts."""
        return {
            "counters": self.telemetry.snapshot(),
            "timeline": self.tracer.timeline(),
            "tcp_samples": self.tcp_log.samples(),
            "timeline_dropped": self.tracer.dropped,
            "tcp_samples_dropped": self.tcp_log.dropped,
            "profiling": self.timers.snapshot(),
        }
