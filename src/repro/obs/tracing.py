"""Trace spans and points on the simulated-time axis.

The tracer shares the discrete-event engine's clock, so every record is
directly correlatable with the pcap files ``repro.netsim.pcap`` writes:
a ``handshake`` span covering ``t=0.013..0.054`` brackets exactly the
packets Wireshark shows between those timestamps.

Two record shapes:

- a **point** is an instant event (``link_down``, a queue drop, any
  session event);
- a **span** covers an interval (a handshake, a JOIN round-trip); it is
  recorded when ``end()`` is called and carries ``t``/``t_end``/``dur``.

Both are plain dicts so the timeline serializes to JSON untouched.
"""

from __future__ import annotations

from typing import Callable, List, Optional

_SCALARS = (int, float, str, bool, type(None))


def scrub_attrs(attrs: dict) -> dict:
    """Keep only JSON-friendly attribute values (scalars and flat lists)."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, _SCALARS):
            out[key] = value
        elif isinstance(value, (list, tuple)) and all(
            isinstance(item, _SCALARS) for item in value
        ):
            out[key] = list(value)
    return out


class Span:
    """An open interval; call ``end()`` (or use as a context manager)."""

    __slots__ = ("_tracer", "component", "name", "start", "attrs", "ended")

    def __init__(self, tracer: "Tracer", component: str, name: str, attrs: dict):
        self._tracer = tracer
        self.component = component
        self.name = name
        self.start = tracer.now()
        self.attrs = attrs
        self.ended = False

    def end(self, **attrs) -> None:
        if self.ended:
            return
        self.ended = True
        merged = dict(self.attrs)
        merged.update(scrub_attrs(attrs))
        end_time = self._tracer.now()
        self._tracer._record(
            {
                "t": self.start,
                "t_end": end_time,
                "dur": end_time - self.start,
                "component": self.component,
                "event": self.name,
                **merged,
            }
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class _NullSpan:
    __slots__ = ()

    def end(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Timeline recorder driven by an external clock (the simulator's)."""

    def __init__(
        self,
        clock: Callable[[], float],
        enabled: bool = True,
        max_records: int = 200_000,
    ) -> None:
        self.now = clock
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        self._records: List[dict] = []

    def _record(self, record: dict) -> None:
        if len(self._records) >= self.max_records:
            self.dropped += 1
            return
        self._records.append(record)

    def point(self, component: str, name: str, **attrs) -> None:
        """Record an instant event at the current simulated time."""
        if not self.enabled:
            return
        self._record(
            {
                "t": self.now(),
                "component": component,
                "event": name,
                **scrub_attrs(attrs),
            }
        )

    def span(self, component: str, name: str, **attrs):
        """Open a span starting now; it appears in the timeline on end()."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, component, name, scrub_attrs(attrs))

    def timeline(self) -> List[dict]:
        """All records ordered by start time (stable for ties)."""
        return sorted(self._records, key=lambda record: record["t"])

    def events_named(self, name: str) -> List[dict]:
        return [record for record in self._records if record["event"] == name]

    def __len__(self) -> int:
        return len(self._records)
