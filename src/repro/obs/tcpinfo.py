"""``TCP_INFO``-style per-connection snapshots.

"Beyond socket options" argues the kernel's ``TCP_INFO`` is the wrong
granularity for modern transports; TCPLS sits above its own TCP
implementation, so we can expose everything: congestion state, RTT
estimator internals, loss-recovery counters, and delivered-byte rates.

Snapshots are **pull-based** by design: sampling never schedules
simulator events (a periodic sampling timer would change
``events_processed`` and violate the zero-perturbation guarantee), so
``TcplsSession`` samples on its own state transitions — handshake done,
JOIN, failover, migration, connection failure — and exporters sample
once more at collection time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Iterable, List, Optional


@dataclass
class TcpInfo:
    """One connection's transport state at one instant."""

    time: float
    state: str
    cwnd: int
    ssthresh: int
    srtt: float
    rttvar: float
    rto: float
    mss: int
    snd_wnd: int
    flight: int
    send_queue: int
    retransmissions: int
    fast_retransmits: int
    timeouts: int
    sacked_segments: int
    dup_acks_received: int
    delivered_bytes: int
    delivery_rate_bps: float
    bytes_sent: int
    bytes_received: int
    segments_sent: int
    segments_received: int
    congestion: str

    def to_dict(self) -> dict:
        return asdict(self)


def sample_tcp(tcp, now: Optional[float] = None) -> TcpInfo:
    """Snapshot one ``repro.tcp.connection.TcpConnection``."""
    time = tcp.sim.now if now is None else now
    stats = tcp.stats
    return TcpInfo(
        time=time,
        state=tcp.state,
        cwnd=tcp.cc.window(),
        ssthresh=tcp.cc.ssthresh,
        srtt=tcp.rto.srtt if tcp.rto.srtt is not None else 0.0,
        rttvar=tcp.rto.rttvar,
        rto=tcp.rto.rto,
        mss=tcp.effective_mss(),
        snd_wnd=tcp.snd_wnd,
        flight=tcp.bytes_in_flight(),
        send_queue=tcp.send_queue_length(),
        retransmissions=stats["retransmissions"],
        fast_retransmits=stats["fast_retransmits"],
        timeouts=stats["timeouts"],
        sacked_segments=getattr(tcp, "sacked_segments", 0),
        dup_acks_received=stats["dup_acks_received"],
        delivered_bytes=getattr(tcp, "delivered_bytes", 0),
        delivery_rate_bps=tcp.delivery_rate() if hasattr(tcp, "delivery_rate") else 0.0,
        bytes_sent=stats["bytes_sent"],
        bytes_received=stats["bytes_received"],
        segments_sent=stats["segments_sent"],
        segments_received=stats["segments_received"],
        congestion=tcp.cc.name,
    )


class TcpInfoLog:
    """Labelled snapshot history for a session's connections.

    Each ``sample()`` records one row per connection: the label says why
    the sample was taken (``handshake_done``, ``failover``, ``export``,
    ...), and successive rows for the same ``conn_id`` let offline
    analysis compute windowed delivery rates.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        enabled: bool = True,
        max_samples: int = 50_000,
    ) -> None:
        self.now = clock
        self.enabled = enabled
        self.max_samples = max_samples
        self.dropped = 0
        self._samples: List[dict] = []

    def sample(self, label: str, connections: Iterable) -> None:
        """Snapshot every TCPLS connection (objects with .conn_id/.tcp)."""
        if not self.enabled:
            return
        now = self.now()
        for conn in connections:
            if len(self._samples) >= self.max_samples:
                self.dropped += 1
                continue
            row = sample_tcp(conn.tcp, now=now).to_dict()
            row["label"] = label
            row["conn_id"] = conn.conn_id
            self._samples.append(row)

    def samples(self) -> List[dict]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)
