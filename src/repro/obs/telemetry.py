"""The metrics registry: counters, gauges, and histograms by component.

Design constraints (the reason this is not a thin dict wrapper):

- **cheap enough to stay on by default** — callers look an instrument up
  once (``telemetry.counter("tls", "records_sent")``) and keep the
  returned object; the hot path is then a single attribute increment.
  When the registry is disabled every lookup returns one shared no-op
  instrument, so instrumented code needs no ``if enabled`` branches;
- **zero perturbation** — instruments only record; they never touch the
  simulator, never consume randomness, and never allocate on the hot
  path (histograms bisect into preallocated log-scaled buckets);
- **machine readable** — ``snapshot()`` returns plain nested dicts that
  serialize to the ``BENCH_*.json`` metrics files;
- **mergeable across processes** — ``export_state()`` produces a typed,
  picklable state document and ``Telemetry.merge()`` recombines any
  number of them (counters sum, gauges keep the maximum, histograms
  combine bucket-wise), so a sharded fleet run can reduce its workers'
  registries into one registry indistinguishable from a single-process
  run over the same workload.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Tuple, Union

# Log-scaled bucket upper bounds shared by all histograms: 1, 2, 4, ...
# 2^30.  Good enough resolution for byte sizes, counts, and (scaled)
# latencies without per-histogram configuration.
_DEFAULT_BOUNDS = tuple(1 << i for i in range(31))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, cwnd, clock)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: count/sum/min/max plus log-2 buckets."""

    __slots__ = ("count", "total", "min", "max", "_bounds", "_buckets")

    def __init__(self, bounds: Tuple[float, ...] = _DEFAULT_BOUNDS) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buckets[bisect_left(self._bounds, value)] += 1

    def summary(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        buckets = {
            (str(self._bounds[i]) if i < len(self._bounds) else "+inf"): n
            for i, n in enumerate(self._buckets)
            if n
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": mean,
            "buckets": buckets,
        }

    def state(self) -> dict:
        """Lossless, picklable state (unlike ``summary``, which drops
        empty buckets and the bound vector)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self._bounds),
            "buckets": list(self._buckets),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        histogram = cls(bounds=tuple(state["bounds"]))
        histogram.combine(state)
        return histogram

    def combine(self, state: dict) -> None:
        """Fold another histogram's ``state()`` into this one.

        Streaming statistics combine exactly: counts, sums, and per-bucket
        tallies add; min/max reduce.  The bound vectors must match — two
        histograms bucketed differently have no common refinement.
        """
        if list(state["bounds"]) != list(self._bounds):
            raise ValueError("cannot combine histograms with different bounds")
        self.count += state["count"]
        self.total += state["total"]
        for extreme in ("min", "max"):
            theirs = state[extreme]
            if theirs is None:
                continue
            mine = getattr(self, extreme)
            if mine is None:
                setattr(self, extreme, theirs)
            else:
                reduce_fn = min if extreme == "min" else max
                setattr(self, extreme, reduce_fn(mine, theirs))
        for index, tally in enumerate(state["buckets"]):
            self._buckets[index] += tally


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL = _NullInstrument()


class Telemetry:
    """Registry of instruments keyed by ``(component, name)``.

    Instruments are created on first use and shared on later lookups, so
    two subsystems asking for ``counter("engine", "events")`` increment
    the same value.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    def counter(self, component: str, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (component, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, component: str, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (component, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, component: str, name: str) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (component, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """Nested ``{component: {name: value}}`` of everything recorded."""
        out: Dict[str, dict] = {}
        for (component, name), counter in self._counters.items():
            out.setdefault(component, {})[name] = counter.value
        for (component, name), gauge in self._gauges.items():
            out.setdefault(component, {})[name] = gauge.value
        for (component, name), histogram in self._histograms.items():
            out.setdefault(component, {})[name] = histogram.summary()
        return out

    def export_state(self) -> dict:
        """Typed, picklable state for cross-process merging.

        ``snapshot()`` flattens the three instrument kinds into one
        namespace (fine for reading, ambiguous for merging — a counter
        and a gauge both export a bare number).  This form keeps each
        kind in its own map so :meth:`merge` can apply kind-specific
        combination semantics.
        """
        counters: Dict[str, Dict[str, int]] = {}
        gauges: Dict[str, Dict[str, Union[int, float]]] = {}
        histograms: Dict[str, Dict[str, dict]] = {}
        for (component, name), counter in self._counters.items():
            counters.setdefault(component, {})[name] = counter.value
        for (component, name), gauge in self._gauges.items():
            gauges.setdefault(component, {})[name] = gauge.value
        for (component, name), histogram in self._histograms.items():
            histograms.setdefault(component, {})[name] = histogram.state()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    @classmethod
    def merge(cls, states: Iterable[dict]) -> "Telemetry":
        """Recombine any number of ``export_state()`` documents.

        Semantics per instrument kind:

        - **counters sum** — a monotonic tally split across workers is
          the sum of the per-worker tallies;
        - **gauges keep the maximum** — a point-in-time value (queue
          depth, cwnd, peak concurrency) has no meaningful sum across
          isolated worlds, so the merge reports the worst/largest case;
        - **histograms combine** — counts, sums and per-bucket tallies
          add, min/max reduce (see :meth:`Histogram.combine`).

        Returns a live registry, so merged state can itself be exported,
        snapshotted, or merged again (the fleet runner merges per-cell
        states into shards, then shards into the final result).
        """
        merged = cls(enabled=True)
        for state in states:
            for component, names in state.get("counters", {}).items():
                for name, value in names.items():
                    merged.counter(component, name).inc(value)
            for component, names in state.get("gauges", {}).items():
                for name, value in names.items():
                    key = (component, name)
                    existing = merged._gauges.get(key)
                    if existing is None:
                        merged.gauge(component, name).set(value)
                    else:
                        existing.set(max(existing.value, value))
            for component, names in state.get("histograms", {}).items():
                for name, hist_state in names.items():
                    key = (component, name)
                    existing_hist = merged._histograms.get(key)
                    if existing_hist is None:
                        merged._histograms[key] = Histogram.from_state(hist_state)
                    else:
                        existing_hist.combine(hist_state)
        return merged
