"""The metrics registry: counters, gauges, and histograms by component.

Design constraints (the reason this is not a thin dict wrapper):

- **cheap enough to stay on by default** — callers look an instrument up
  once (``telemetry.counter("tls", "records_sent")``) and keep the
  returned object; the hot path is then a single attribute increment.
  When the registry is disabled every lookup returns one shared no-op
  instrument, so instrumented code needs no ``if enabled`` branches;
- **zero perturbation** — instruments only record; they never touch the
  simulator, never consume randomness, and never allocate on the hot
  path (histograms bisect into preallocated log-scaled buckets);
- **machine readable** — ``snapshot()`` returns plain nested dicts that
  serialize to the ``BENCH_*.json`` metrics files.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Tuple, Union

# Log-scaled bucket upper bounds shared by all histograms: 1, 2, 4, ...
# 2^30.  Good enough resolution for byte sizes, counts, and (scaled)
# latencies without per-histogram configuration.
_DEFAULT_BOUNDS = tuple(1 << i for i in range(31))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, cwnd, clock)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: count/sum/min/max plus log-2 buckets."""

    __slots__ = ("count", "total", "min", "max", "_bounds", "_buckets")

    def __init__(self, bounds: Tuple[float, ...] = _DEFAULT_BOUNDS) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buckets[bisect_left(self._bounds, value)] += 1

    def summary(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        buckets = {
            (str(self._bounds[i]) if i < len(self._bounds) else "+inf"): n
            for i, n in enumerate(self._buckets)
            if n
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": mean,
            "buckets": buckets,
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL = _NullInstrument()


class Telemetry:
    """Registry of instruments keyed by ``(component, name)``.

    Instruments are created on first use and shared on later lookups, so
    two subsystems asking for ``counter("engine", "events")`` increment
    the same value.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    def counter(self, component: str, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (component, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, component: str, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (component, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, component: str, name: str) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (component, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """Nested ``{component: {name: value}}`` of everything recorded."""
        out: Dict[str, dict] = {}
        for (component, name), counter in self._counters.items():
            out.setdefault(component, {})[name] = counter.value
        for (component, name), gauge in self._gauges.items():
            out.setdefault(component, {})[name] = gauge.value
        for (component, name), histogram in self._histograms.items():
            out.setdefault(component, {})[name] = histogram.summary()
        return out
