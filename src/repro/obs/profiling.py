"""Wall-clock profiling hooks for the datapath benchmarks.

``SubsystemTimers`` accumulates wall time per named subsystem ("crypto",
"tcp", "netsim", ...) via context-managed sections.  It is deliberately
tiny — two ``perf_counter`` calls per section — so wrapping a hot region
costs nanoseconds, and like everything in ``repro.obs`` it observes
without changing simulated outcomes.

The timers ride along in ``Observability`` and surface through
``Observability.snapshot()`` (and therefore in every ``BENCH_*.json``
the benchmark conftest writes) as::

    "profiling": {"wall_seconds": {"crypto": 1.23, ...},
                  "sections": {"crypto": 42, ...}}
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


class SubsystemTimers:
    """Accumulated wall-clock time per named subsystem."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._sections: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._sections[name] = self._sections.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Fold externally measured time (e.g. ``Simulator.run_wall_seconds``)."""
        if not self.enabled:
            return
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._sections[name] = self._sections.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def snapshot(self) -> dict:
        return {
            "wall_seconds": dict(self._seconds),
            "sections": dict(self._sections),
        }
