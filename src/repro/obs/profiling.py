"""Wall-clock profiling hooks for the datapath benchmarks.

``SubsystemTimers`` accumulates wall time per named subsystem ("crypto",
"tcp", "netsim", ...) via context-managed sections.  It is deliberately
tiny — two ``perf_counter`` calls per section — so wrapping a hot region
costs nanoseconds, and like everything in ``repro.obs`` it observes
without changing simulated outcomes.

The timers ride along in ``Observability`` and surface through
``Observability.snapshot()`` (and therefore in every ``BENCH_*.json``
the benchmark conftest writes) as::

    "profiling": {"wall_seconds": {"crypto": 1.23, ...},
                  "sections": {"crypto": 42, ...}}

Like the telemetry registry, timers are mergeable across processes:
``state()`` is picklable and ``SubsystemTimers.merge()`` sums any number
of states, so a sharded fleet run reports one combined per-subsystem
wall-time table.

The second half of this module is the **standing function profiler**:
a thin wrapper over ``cProfile`` that reduces a profile to its top-N
hottest functions (a flamegraph's first column) as plain dicts, plus a
process-wide active-profiler registry.  The benchmark conftest arms one
profiler per benchmark and ``collect_metrics`` folds the resulting
top-10 hot-function list into every ``BENCH_*.json``; the fleet runner
arms one per shard and merges the per-shard tables.  Profiling reads
the wall clock only — it never touches simulated behaviour, so a
profiled run stays digest-identical to an unprofiled one.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional


class SubsystemTimers:
    """Accumulated wall-clock time per named subsystem."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._sections: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._sections[name] = self._sections.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Fold externally measured time (e.g. ``Simulator.run_wall_seconds``)."""
        if not self.enabled:
            return
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._sections[name] = self._sections.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def snapshot(self) -> dict:
        return {
            "wall_seconds": dict(self._seconds),
            "sections": dict(self._sections),
        }

    def state(self) -> dict:
        """Picklable state; same shape as :meth:`snapshot`."""
        return self.snapshot()

    @classmethod
    def merge(cls, states: Iterable[dict]) -> "SubsystemTimers":
        """Sum any number of ``state()`` documents into one timer set.

        Wall time and section counts both add: four shards that each
        spent 2s inside "netsim" did spend 8 CPU-seconds there, which is
        the quantity the profiling table reports.
        """
        merged = cls(enabled=True)
        for state in states:
            for name, seconds in state.get("wall_seconds", {}).items():
                merged._seconds[name] = merged._seconds.get(name, 0.0) + seconds
            for name, sections in state.get("sections", {}).items():
                merged._sections[name] = merged._sections.get(name, 0) + sections
        return merged


# ---------------------------------------------------------------------------
# Standing function profiler (cProfile -> top-N hot functions)
# ---------------------------------------------------------------------------

#: How many hot functions the standing profiling pass publishes.
TOP_FUNCTIONS = 10

#: Path fragments trimmed from function locations so the table reads as
#: repo-relative (and stays stable across checkouts and CI runners).
_TRIM_MARKERS = ("/src/repro/", "/repro/", "/site-packages/", "/lib/python")

#: The process-wide active profiler (armed by the benchmark conftest or
#: a fleet shard).  Exactly one cProfile can collect per thread, so the
#: registry lets nested scopes (a fleet run inside a profiled benchmark)
#: suspend and restore the outer profiler instead of fighting over the
#: C-level hook.
_active_profile: Optional[cProfile.Profile] = None


def activate_profile(profile: cProfile.Profile) -> None:
    """Register (and enable) the process's standing profiler."""
    global _active_profile
    _active_profile = profile
    profile.enable()


def deactivate_profile(profile: cProfile.Profile) -> None:
    """Disable ``profile`` and clear the registry if it was active."""
    global _active_profile
    profile.disable()
    if _active_profile is profile:
        _active_profile = None


def active_profile() -> Optional[cProfile.Profile]:
    """The currently armed standing profiler, if any."""
    return _active_profile


@contextmanager
def exclusive_profile(profile: cProfile.Profile) -> Iterator[None]:
    """Collect into ``profile`` alone, suspending any armed profiler.

    Used by the fleet runner's inline (single-process) mode: the
    benchmark conftest's standing profiler is paused while the shard
    profiler runs, then resumed, so both end up with disjoint,
    well-formed profiles instead of a corrupted shared hook.
    """
    global _active_profile
    suspended = _active_profile
    if suspended is not None:
        suspended.disable()
    _active_profile = None
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        if suspended is not None:
            suspended.enable()
        _active_profile = suspended


def _trim_location(filename: str) -> str:
    for marker in _TRIM_MARKERS:
        index = filename.find(marker)
        if index >= 0:
            return filename[index + 1 :]
    return filename


def hot_functions(
    profile: cProfile.Profile, limit: int = TOP_FUNCTIONS
) -> List[dict]:
    """The ``limit`` hottest functions by own (tottime) wall seconds.

    Each entry is a plain dict — ``function`` ("path:line(name)"),
    ``calls``, ``tottime_s``, ``cumtime_s`` — ready for JSON export or
    cross-process merging via :func:`merge_hot_functions`.
    """
    stats = pstats.Stats(profile)
    rows: List[dict] = []
    for (filename, line, name), (
        _primitive_calls,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            {
                "function": f"{_trim_location(filename)}:{line}({name})",
                "calls": ncalls,
                "tottime_s": tottime,
                "cumtime_s": cumtime,
            }
        )
    rows.sort(key=lambda row: (-row["tottime_s"], row["function"]))
    return rows[:limit]


def merge_hot_functions(
    tables: Iterable[List[dict]], limit: int = TOP_FUNCTIONS
) -> List[dict]:
    """Combine per-shard hot-function tables into one ranked top-N.

    Rows are keyed by the function label; calls and times sum, and the
    result is re-ranked by total own time.  Feeding each shard's top-K
    (K > N) keeps the merged top-N exact for functions hot in any shard.
    """
    combined: Dict[str, dict] = {}
    for table in tables:
        for row in table:
            entry = combined.get(row["function"])
            if entry is None:
                combined[row["function"]] = dict(row)
            else:
                entry["calls"] += row["calls"]
                entry["tottime_s"] += row["tottime_s"]
                entry["cumtime_s"] += row["cumtime_s"]
    rows = sorted(
        combined.values(), key=lambda row: (-row["tottime_s"], row["function"])
    )
    return rows[:limit]
