"""``repro.obs`` — the observability subsystem.

Every quantitative claim this reproduction makes (bandwidth
aggregation, failover continuity, cwnd-matched record sizing) needs
machine-readable numbers.  This package provides them:

- :class:`Telemetry` — counters/gauges/histograms keyed by component,
  cheap enough to stay on by default;
- :class:`Tracer` — spans and points on the simulated-time axis,
  correlatable with the pcap writer's timestamps;
- :func:`sample_tcp` / :class:`TcpInfoLog` — ``TCP_INFO``-style
  per-connection snapshots, pull-based so sampling never perturbs the
  simulation;
- :class:`Observability` — one hub bundling all three around one clock;
- :func:`collect_metrics` / :func:`write_metrics_json` — the
  ``BENCH_*.json`` export the benchmarks emit.

Invariant: instrumentation is observation only.  A simulation run with
telemetry enabled and one with it disabled produce byte-identical
results (same goodput, same ``events_processed``, same pcap bytes).
"""

from repro.obs.export import collect_metrics, write_metrics_json
from repro.obs.hub import Observability
from repro.obs.tcpinfo import TcpInfo, TcpInfoLog, sample_tcp
from repro.obs.telemetry import Counter, Gauge, Histogram, Telemetry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Observability",
    "Span",
    "TcpInfo",
    "TcpInfoLog",
    "Telemetry",
    "Tracer",
    "collect_metrics",
    "sample_tcp",
    "write_metrics_json",
]
