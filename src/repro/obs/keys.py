"""Central registry of telemetry component and metric key names.

Every string that names a telemetry component, counter, gauge, or
histogram lives here.  Instrumented code imports the constant instead of
repeating the literal, so a key can never silently fork into two
spellings ("decode.rejected" here, "decode_rejected" there) and the
``BENCH_*.json`` consumers can rely on one canonical vocabulary.

The OBS001 lint rule (``repro.analysis``) enforces this: a string
literal passed directly to ``Telemetry.counter``/``gauge``/``histogram``
anywhere in ``src/`` is a finding — call sites must reference a constant
(or a helper) from this module.

Dynamic key families (per-event counters, per-fault-kind counters,
per-link components) are produced by the helper functions below, so
their prefixes are registered too.
"""

from __future__ import annotations

# -- components ---------------------------------------------------------------

COMP_SESSION_CLIENT = "session.client"
COMP_SESSION_SERVER = "session.server"
#: The TCPLS listener (pre-session demux, JOIN routing).
COMP_SERVER = "server"
COMP_ENGINE = "engine"
COMP_FAULTS = "faults"
COMP_FUZZ = "fuzz"
#: The scale-run session pool/dispatcher (repro.scale).
COMP_POOL = "scale.pool"
#: The reconnect-storm recovery driver (repro.scale.recovery).
COMP_RECOVERY = "scale.recovery"
#: The sharded fleet runner (repro.fleet).
COMP_FLEET = "fleet"
#: Admission control / load shedding (repro.overload).
COMP_OVERLOAD = "overload"
#: Prefix for per-link components (see :func:`link_component`).
LINK_COMPONENT_PREFIX = "link"


def session_component(is_server: bool) -> str:
    """The per-role session component name."""
    return COMP_SESSION_SERVER if is_server else COMP_SESSION_CLIENT


def link_component(name: str) -> str:
    """Per-link component: ``link.<name>`` (bare ``link`` when unnamed)."""
    return f"{LINK_COMPONENT_PREFIX}.{name}" if name else LINK_COMPONENT_PREFIX


# -- session metrics ----------------------------------------------------------

RECORDS_SENT = "records_sent"
RECORDS_RECEIVED = "records_received"
RECORD_BYTES = "record_bytes"
ACKS_SENT = "acks_sent"
ACKS_RECEIVED = "acks_received"
FRAMES_REPLAYED = "frames_replayed"
STREAM_BYTES_RECEIVED = "stream_bytes_received"
FAILOVER_RETRIES = "failover.retries"
FAILOVER_RECOVERED = "failover.recovered"
FAILOVER_ABANDONED = "failover.abandoned"
FAILOVER_COOKIES_EXHAUSTED = "failover.cookies_exhausted"
HEALTH_PINGS_SENT = "health.pings_sent"
#: Rejected wire decodes (fail-closed parser contract, PR 4).
DECODE_REJECTED = "decode.rejected"
#: Tripped resource-exhaustion guards (stream/reassembly/rate caps, PR 4).
GUARD_TRIPPED = "guard.tripped"
#: Gauge: bytes currently pinned by the session's send/reassembly/replay
#: buffers (the stores the per-session memory budget governs).
SESSION_MEMORY_BYTES = "memory.buffered_bytes"
#: Resumption outcomes (the recovery benchmark's 0-RTT acceptance rate).
RESUMPTION_PSK_ACCEPTED = "resumption.psk_accepted"
RESUMPTION_PSK_DECLINED = "resumption.psk_declined"
RESUMPTION_EARLY_ACCEPTED = "resumption.early_accepted"
RESUMPTION_EARLY_REJECTED = "resumption.early_rejected"
#: 0-RTT refused by the anti-replay strike register specifically.
RESUMPTION_REPLAY_REJECTED = "resumption.replay_rejected"
#: Per-stream flow control (credit windows, PR 9).
FLOW_WOULD_BLOCK = "flow.would_block"
FLOW_STALLS = "flow.stalls"
FLOW_WRITABLE = "flow.writable"
FLOW_WINDOW_UPDATES_SENT = "flow.window_updates_sent"
FLOW_WINDOW_UPDATES_RECEIVED = "flow.window_updates_received"
#: A peer wrote past the credit it was granted (fail-closed).
FLOW_VIOLATIONS = "flow.violations"
#: Prefix for per-session-event counters (see :func:`session_event`).
SESSION_EVENT_PREFIX = "event."


def session_event(event: str) -> str:
    """Per-event counter key: ``event.<name>``."""
    return f"{SESSION_EVENT_PREFIX}{event}"


# -- scale pool metrics -------------------------------------------------------

POOL_DIALS = "dials"
POOL_REUSED = "reused"
POOL_RETIRED = "retired"
POOL_ACTIVE = "active"
POOL_FAILED = "failed"
#: Backoff-delayed redials after a failed dial (reconnect storms).
POOL_REDIALS = "redials"

# -- recovery metrics ---------------------------------------------------------

#: Sessions re-established after a server crash.
RECOVERY_RECONNECTS = "reconnects"
#: Histogram: seconds from crash to a client's first recovered response.
RECOVERY_TTR = "time_to_recover"

# -- fleet metrics ------------------------------------------------------------

#: Scenario cells executed across all shards.
FLEET_CELLS = "cells"
#: Worker shards launched for the run.
FLEET_SHARDS = "shards"
#: Simulator events processed, summed across all shard worlds.
FLEET_EVENTS = "events"
#: TCPLS sessions driven to completion, summed across all shard worlds.
FLEET_SESSIONS = "sessions"
#: Histogram: per-shard wall-clock seconds (barrier skew diagnosis).
FLEET_SHARD_WALL_SECONDS = "shard_wall_seconds"

# -- overload metrics ---------------------------------------------------------
# Every shed/reject code path in ``repro.overload`` must increment one
# of these (enforced by the REL001 lint rule).

#: Connections admitted at full handshake cost.
OVERLOAD_ADMITTED = "overload.admitted"
#: Connections admitted on the cheap path (resumption, JOIN, coupon).
OVERLOAD_ADMITTED_CHEAP = "overload.admitted_cheap"
#: Connections rejected because the accept queue was full.
OVERLOAD_REJECTED_QUEUE = "overload.rejected_queue"
#: Full handshakes rejected by the handshake-CPU token bucket.
OVERLOAD_REJECTED_PACER = "overload.rejected_pacer"
#: Connections rejected by the DEGRADED/SHEDDING admission policy.
OVERLOAD_REJECTED_STATE = "overload.rejected_state"
#: Sessions dropped by deadline-based load shedding.
OVERLOAD_SHED_SESSIONS = "overload.shed_sessions"
#: Retry coupons minted for rejected clients.
OVERLOAD_COUPONS_MINTED = "overload.coupons_minted"
#: Valid retry coupons honoured on a redial.
OVERLOAD_COUPONS_ACCEPTED = "overload.coupons_accepted"
#: Gauge: shedder state (0 NORMAL, 1 DEGRADED, 2 SHEDDING).
OVERLOAD_STATE = "overload.state"
#: Gauge: bytes tracked against the global memory budget.
OVERLOAD_MEMORY_BYTES = "overload.memory_bytes"

# -- engine metrics -----------------------------------------------------------

ENGINE_EVENTS_PROCESSED = "events_processed"
ENGINE_EVENTS_PER_SECOND = "events_per_second"
ENGINE_RUN_WALL_SECONDS = "run_wall_seconds"

# -- fuzz metrics -------------------------------------------------------------

FUZZ_INPUTS = "inputs"
FUZZ_REJECTED = "rejected"
FUZZ_CRASHERS = "crashers"

# -- link metrics -------------------------------------------------------------

LINK_DELIVERED = "delivered"
LINK_DROPPED_QUEUE = "dropped_queue"
LINK_DROPPED_LOSS = "dropped_loss"
LINK_DROPPED_DOWN = "dropped_down"
LINK_REORDERED = "reordered"
LINK_BYTES_DELIVERED = "bytes_delivered"
LINK_QUEUE_DEPTH = "queue_depth"

#: The per-link stat counters, in the order ``Link.stats`` reports them.
LINK_STATS = (
    LINK_DELIVERED,
    LINK_DROPPED_QUEUE,
    LINK_DROPPED_LOSS,
    LINK_DROPPED_DOWN,
    LINK_REORDERED,
    LINK_BYTES_DELIVERED,
)

# -- registry -----------------------------------------------------------------

#: Every statically-named metric key.
ALL_KEYS = frozenset(
    (
        RECORDS_SENT,
        RECORDS_RECEIVED,
        RECORD_BYTES,
        ACKS_SENT,
        ACKS_RECEIVED,
        FRAMES_REPLAYED,
        STREAM_BYTES_RECEIVED,
        FAILOVER_RETRIES,
        FAILOVER_RECOVERED,
        FAILOVER_ABANDONED,
        FAILOVER_COOKIES_EXHAUSTED,
        HEALTH_PINGS_SENT,
        DECODE_REJECTED,
        GUARD_TRIPPED,
        SESSION_MEMORY_BYTES,
        RESUMPTION_PSK_ACCEPTED,
        RESUMPTION_PSK_DECLINED,
        RESUMPTION_EARLY_ACCEPTED,
        RESUMPTION_EARLY_REJECTED,
        RESUMPTION_REPLAY_REJECTED,
        FLOW_WOULD_BLOCK,
        FLOW_STALLS,
        FLOW_WRITABLE,
        FLOW_WINDOW_UPDATES_SENT,
        FLOW_WINDOW_UPDATES_RECEIVED,
        FLOW_VIOLATIONS,
        OVERLOAD_ADMITTED,
        OVERLOAD_ADMITTED_CHEAP,
        OVERLOAD_REJECTED_QUEUE,
        OVERLOAD_REJECTED_PACER,
        OVERLOAD_REJECTED_STATE,
        OVERLOAD_SHED_SESSIONS,
        OVERLOAD_COUPONS_MINTED,
        OVERLOAD_COUPONS_ACCEPTED,
        OVERLOAD_STATE,
        OVERLOAD_MEMORY_BYTES,
        POOL_DIALS,
        POOL_REUSED,
        POOL_RETIRED,
        POOL_ACTIVE,
        POOL_FAILED,
        POOL_REDIALS,
        RECOVERY_RECONNECTS,
        RECOVERY_TTR,
        FLEET_CELLS,
        FLEET_SHARDS,
        FLEET_EVENTS,
        FLEET_SESSIONS,
        FLEET_SHARD_WALL_SECONDS,
        ENGINE_EVENTS_PROCESSED,
        ENGINE_EVENTS_PER_SECOND,
        ENGINE_RUN_WALL_SECONDS,
        FUZZ_INPUTS,
        FUZZ_REJECTED,
        FUZZ_CRASHERS,
        LINK_QUEUE_DEPTH,
    )
    + LINK_STATS
)

#: Prefixes under which dynamically-derived keys are legal.
DYNAMIC_PREFIXES = (SESSION_EVENT_PREFIX,)

#: Statically-named components.
ALL_COMPONENTS = frozenset(
    (
        COMP_SESSION_CLIENT,
        COMP_SESSION_SERVER,
        COMP_SERVER,
        COMP_ENGINE,
        COMP_FAULTS,
        COMP_FUZZ,
        COMP_POOL,
        COMP_RECOVERY,
        COMP_FLEET,
        COMP_OVERLOAD,
    )
)


def is_registered(name: str) -> bool:
    """True when ``name`` is a registered key or dynamic-family member."""
    if name in ALL_KEYS:
        return True
    return any(name.startswith(prefix) for prefix in DYNAMIC_PREFIXES)
