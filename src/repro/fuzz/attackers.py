"""Attacker middleboxes: keyless adversaries on the wire.

Where :mod:`repro.netsim.middlebox` models *broken* infrastructure,
these model *hostile* infrastructure — an on-path or off-path attacker
without the TLS keys.  They install as link transformers exactly like
the middleboxes and speak real header bytes, so everything they emit is
a segment the victim's stack genuinely has to parse.

The security claim they drive (and the in-situ tests assert): a keyless
attacker can make an established TCPLS session *degrade* — tripping
guards, failing a connection over to another path — but never desync
its delivered byte stream, never crash the endpoints, and never break
exactly-once delivery.

All three are count-bounded and deterministic (seeded RNG, no wall
clock), so attacked runs replay bit-for-bit like every other scenario.
"""

from __future__ import annotations

import random
from typing import List

from repro.netsim.middlebox import _parse_tcp, _reserialize
from repro.netsim.packet import Datagram
from repro.tcp.segment import Flags, TcpSegment


class SegmentInjector:
    """Injects forged garbage segments into an established flow.

    Copies the flow's addressing from a passing segment (what an
    on-path observer sees in cleartext) and appends a forged segment
    whose payload is attacker-controlled bytes — mutated record
    headers, truncated records, plaintext junk.  Without the keys the
    forgery can't authenticate, so the receiver must reject it at the
    record/AEAD layer and survive.
    """

    def __init__(
        self,
        payloads: List[bytes],
        start_after: int = 3,
        every: int = 4,
        seed: int = 0,
    ) -> None:
        self.payloads = list(payloads)
        self.start_after = start_after
        self.every = every
        self.rng = random.Random(seed)
        self.seen = 0
        self.injected = 0

    def __call__(self, datagram: Datagram):
        segment = _parse_tcp(datagram)
        if segment is None or not segment.payload:
            return datagram
        self.seen += 1
        if self.injected >= len(self.payloads):
            return datagram
        if self.seen < self.start_after or self.seen % self.every:
            return datagram
        payload = self.payloads[self.injected]
        self.injected += 1
        # In-window sequence numbering: the forgery lands exactly where
        # the next genuine bytes would, the worst case for the victim.
        forged = TcpSegment(
            src_port=segment.src_port,
            dst_port=segment.dst_port,
            seq=(segment.seq + len(segment.payload)) & 0xFFFFFFFF,
            ack=segment.ack,
            flags=Flags.ACK | Flags.PSH,
            window=segment.window,
            payload=payload,
        )
        return [datagram, _reserialize(datagram, forged)]


class PayloadTamperer:
    """Rewrites bytes inside passing TCP payloads (MITM without keys).

    Unlike the middlebox ``PayloadCorruptor`` (one flipped byte, models
    corruption), this overwrites whole runs with attacker bytes and can
    target the record header region specifically — length lies on the
    outer record framing, the strongest thing a keyless MITM can do.
    Tampers exactly ``count`` segments then goes quiet, so the session's
    retry budget can recover.
    """

    def __init__(self, count: int = 3, start_after: int = 4, seed: int = 0) -> None:
        self.count = count
        self.start_after = start_after
        self.rng = random.Random(seed)
        self.seen = 0
        self.tampered = 0

    def __call__(self, datagram: Datagram):
        segment = _parse_tcp(datagram)
        if segment is None or not segment.payload:
            return datagram
        self.seen += 1
        if self.tampered >= self.count or self.seen < self.start_after:
            return datagram
        self.tampered += 1
        payload = bytearray(segment.payload)
        mode = self.rng.randrange(3)
        if mode == 0 and len(payload) >= 5:
            # Lie in the outer record length field (header bytes 3-4).
            payload[3] = self.rng.randrange(256)
            payload[4] = self.rng.randrange(256)
        elif mode == 1:
            start = self.rng.randrange(len(payload))
            end = min(len(payload), start + self.rng.randint(1, 32))
            for index in range(start, end):
                payload[index] = self.rng.randrange(256)
        else:
            payload[self.rng.randrange(len(payload))] ^= 0xFF
        segment.payload = bytes(payload)
        return _reserialize(datagram, segment)


class RstBlaster:
    """Off-path blind-RST attack (the classic TCP reset injection).

    Fires bursts of spoofed RST segments at the receiver using
    addressing cloned from observed traffic.  ``blind=True`` models a
    true off-path attacker guessing sequence numbers; ``blind=False``
    is the strongest case — every RST carries the exact next in-window
    sequence number, so the victim's TCP genuinely tears down and the
    TCPLS session must detect the reset and fail over.
    """

    def __init__(
        self,
        count: int = 4,
        start_after: int = 6,
        blind: bool = False,
        seed: int = 0,
    ) -> None:
        self.count = count
        self.start_after = start_after
        self.blind = blind
        self.rng = random.Random(seed)
        self.seen = 0
        self.fired = 0

    def __call__(self, datagram: Datagram):
        segment = _parse_tcp(datagram)
        if segment is None or not segment.payload:
            return datagram
        self.seen += 1
        if self.fired >= self.count or self.seen < self.start_after:
            return datagram
        self.fired += 1
        if self.blind:
            seq = self.rng.randrange(1 << 32)
        else:
            seq = (segment.seq + len(segment.payload)) & 0xFFFFFFFF
        rst = TcpSegment(
            src_port=segment.src_port,
            dst_port=segment.dst_port,
            seq=seq,
            ack=segment.ack,
            flags=Flags.RST | Flags.ACK,
            window=0,
        )
        return [datagram, _reserialize(datagram, rst)]


def junk_payloads(seed: int = 0, count: int = 6) -> List[bytes]:
    """Deterministic attacker payloads: record-shaped lies and raw noise."""
    rng = random.Random(seed)
    payloads: List[bytes] = []
    for index in range(count):
        kind = index % 3
        if kind == 0:
            # A plausible record header with a lying length, then junk.
            length = rng.randrange(1, 512)
            body = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            payloads.append(bytes([23, 0x03, 0x03]) + length.to_bytes(2, "big") + body)
        elif kind == 1:
            # A plaintext handshake-type record after establishment.
            body = bytes(rng.randrange(256) for _ in range(rng.randint(4, 32)))
            payloads.append(
                bytes([22, 0x03, 0x03]) + len(body).to_bytes(2, "big") + body
            )
        else:
            payloads.append(bytes(rng.randrange(256) for _ in range(rng.randint(8, 96))))
    return payloads
