"""repro.fuzz — deterministic protocol fuzzing for the wire parsers.

The harness replays seeded, structured mutations of every wire format
the stack parses (TCP segments and options, TLS records and handshake
messages, TCPLS control frames, JOIN/cookie messages, QUIC packets) and
asserts the fail-closed contract: a parser handed attacker bytes may
raise only the typed :class:`~repro.utils.errors.ProtocolViolation`
hierarchy (``DecodeError`` and friends) or ``CryptoError`` — never a
stray ``struct.error`` / ``IndexError`` / crash.

Two drive levels:

- Unit level (:mod:`repro.fuzz.harness`): mutated bytes straight into
  each parser, thousands of inputs per second, bit-for-bit reproducible
  from the campaign seed.
- In-situ (:mod:`repro.fuzz.attackers`): attacker middleboxes installed
  on live simulated links inject, tamper and spoof against an
  established two-path TCPLS session, which must degrade within the
  fault-recovery bounds — never desync or crash.
"""

from repro.fuzz.corpus import FORMATS, seed_corpus
from repro.fuzz.harness import (
    ALLOWED_EXCEPTIONS,
    CampaignReport,
    Crasher,
    TARGETS,
    run_campaign,
)
from repro.fuzz.mutate import MUTATORS, mutate

__all__ = [
    "ALLOWED_EXCEPTIONS",
    "CampaignReport",
    "Crasher",
    "FORMATS",
    "MUTATORS",
    "TARGETS",
    "mutate",
    "run_campaign",
    "seed_corpus",
]
