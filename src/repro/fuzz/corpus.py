"""Seed corpus: well-formed exemplars of every wire format we parse.

Each entry is built with the stack's own encoders, so the corpus stays
in sync with the wire formats by construction.  A handful of hand-built
regression entries reproduce specific parser bugs this hardening pass
fixed (zero-length TCP options, option lengths that overrun the block,
handshake length lies); committing them here keeps those exact byte
sequences in every future campaign.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import framing
from repro.core import join as joinmod
from repro.core.framing import TType
from repro.quic import packet as quicpkt
from repro.tcp.options import (
    FastOpenCookie,
    MaximumSegmentSize,
    NoOperation,
    SackBlocks,
    SackPermitted,
    Timestamps,
    UserTimeout,
    WindowScale,
    encode_options,
)
from repro.tcp.segment import Flags, TcpSegment
from repro.tls import messages as m
from repro.tls.record import ContentType, record_header
from repro.utils.bytesio import ByteWriter

FORMATS = (
    "tcp_segment",
    "tcp_options",
    "tls_record",
    "tls_handshake",
    "tcpls_frame",
    "join",
    "quic_packet",
)


def _tcp_segment_seeds() -> List[bytes]:
    import ipaddress

    src = ipaddress.ip_address("10.0.0.1")
    dst = ipaddress.ip_address("10.0.0.2")
    segments = [
        TcpSegment(
            src_port=40000,
            dst_port=443,
            seq=1000,
            flags=Flags.SYN,
            options=[
                MaximumSegmentSize(mss=1460),
                SackPermitted(),
                WindowScale(shift=7),
                Timestamps(value=111, echo_reply=0),
                FastOpenCookie(cookie=b"\xaa" * 8),
            ],
        ),
        TcpSegment(
            src_port=40000,
            dst_port=443,
            seq=1001,
            ack=2001,
            flags=Flags.ACK | Flags.PSH,
            payload=b"\x17\x03\x03\x00\x05hello",
        ),
        TcpSegment(
            src_port=443,
            dst_port=40000,
            seq=2001,
            ack=1001,
            flags=Flags.RST | Flags.ACK,
            window=0,
        ),
        TcpSegment(
            src_port=1,
            dst_port=2,
            flags=Flags.FIN | Flags.ACK,
            options=[NoOperation(), Timestamps(value=5, echo_reply=6)],
            payload=b"x" * 64,
        ),
    ]
    return [segment.to_bytes(src, dst) for segment in segments]


def _tcp_option_seeds() -> List[bytes]:
    seeds = [
        encode_options(
            [
                MaximumSegmentSize(mss=1460),
                SackPermitted(),
                WindowScale(shift=7),
            ]
        ),
        encode_options(
            [
                Timestamps(value=123456, echo_reply=654321),
                SackBlocks(blocks=((100, 200), (300, 400))),
            ]
        ),
        encode_options(
            [
                UserTimeout(granularity_minutes=True, timeout=30),
                FastOpenCookie(cookie=b"\x01\x02\x03\x04\x05\x06\x07\x08"),
                NoOperation(),
            ]
        ),
        # Regression: a kind/length option with length 0 used to loop
        # the scanner; it must raise a typed DecodeError instead.
        b"\x02\x00\x05\xb4",
        # Regression: length 1 (header shorter than the length field).
        b"\x03\x01\x07",
        # Regression: declared length overruns the option block.
        b"\x02\x0a\x01",
        b"\x08\x0a\x00\x01\x02\x03",
    ]
    return seeds


def _tls_handshake_seeds() -> List[bytes]:
    client_hello = m.ClientHello(
        random=bytes(range(32)),
        session_id=b"\x07" * 8,
        extensions=[
            (m.EXT_SUPPORTED_VERSIONS, m.build_supported_versions_client()),
            (m.EXT_KEY_SHARE, m.build_key_share_client(b"\x11" * 32)),
            (m.EXT_SERVER_NAME, m.build_server_name("example.com")),
            (m.EXT_TCPLS, joinmod.build_tcpls_marker()),
            (m.EXT_PRE_SHARED_KEY, m.build_psk_offer(b"ticket-id", 1234, 32)),
        ],
    )
    server_hello = m.ServerHello(
        random=bytes(reversed(range(32))),
        session_id=b"\x07" * 8,
        extensions=[
            (m.EXT_SUPPORTED_VERSIONS, m.build_supported_versions_server()),
            (m.EXT_KEY_SHARE, m.build_key_share_server(b"\x22" * 32)),
        ],
    )
    seeds = [
        client_hello.to_bytes(),
        server_hello.to_bytes(),
        # A two-message flight: coalesced handshake records are the
        # common case on the wire.
        server_hello.to_bytes()
        + m.frame_handshake(m.ENCRYPTED_EXTENSIONS, b"\x00\x00"),
        m.frame_handshake(m.FINISHED, b"\x5a" * 32),
        m.frame_handshake(m.KEY_UPDATE, b"\x01"),
        # Regression: a declared u24 length larger than the buffer —
        # the length-lie class of bug parse_handshake_frames now rejects.
        b"\x01\x00\x40\x00" + b"\x00" * 16,
        # Regression: dangling 3-byte header fragment.
        b"\x02\x00\x00",
    ]
    return seeds


def _tls_record_seeds() -> List[bytes]:
    handshake = _tls_handshake_seeds()[0]
    seeds = [
        record_header(ContentType.HANDSHAKE, len(handshake)) + handshake,
        record_header(ContentType.ALERT, 2) + b"\x02\x32",
        record_header(ContentType.APPLICATION_DATA, 24) + b"\xc5" * 24,
        # Coalesced records in one buffer.
        (record_header(ContentType.APPLICATION_DATA, 8) + b"\x9f" * 8) * 3,
        # Regression: header claiming more than the record-size limit.
        record_header(ContentType.APPLICATION_DATA, 0xFFFF) + b"\x00" * 32,
    ]
    return seeds


def _tcpls_frame_seeds() -> List[bytes]:
    # Layout matches what the session's dispatch sees after record
    # decryption: one leading TType byte, then seq-prefixed plaintext.
    bodies = [
        (TType.STREAM_DATA, framing.encode_stream_data(2, 4096, b"payload", fin=True)),
        (TType.STREAM_OPEN, framing.encode_stream_open(2, 1)),
        (TType.STREAM_CLOSE, framing.encode_stream_close(2, 8192)),
        (TType.ACK, framing.encode_ack(77, 1)),
        (TType.TCP_OPTION, framing.encode_tcp_option(28, b"\x80\x1e", 1)),
        (TType.JOIN_ACK, framing.encode_join_ack(2)),
        (TType.NEW_COOKIES, framing.encode_new_cookies([b"\xab" * 16, b"\xcd" * 16])),
        (TType.PLUGIN, framing.encode_plugin("bpf.cc", b"\x00\x01\x02\x03")),
        (TType.PROBE, framing.encode_probe(1, b"\x45" * 20)),
        (TType.PROBE_REPORT, framing.encode_probe_report(1, ["mss", "window"])),
        (TType.ADDRESS_ADVERT, framing.encode_address_advert(["10.0.1.1"], ["fd00::1"])),
        (TType.SESSION_CLOSE, framing.encode_session_close(4)),
        (TType.PING, b""),
    ]
    return [
        bytes([ttype]) + framing.encode_frame(ttype, seq, body)
        for seq, (ttype, body) in enumerate(bodies, start=1)
    ]


def _join_seeds() -> List[bytes]:
    params = joinmod.TcplsServerParams(
        connection_id=b"\x42" * 16,
        cookies=[b"\x10" * 16, b"\x20" * 16],
        v4_addresses=["10.0.0.1", "192.168.1.1"],
        v6_addresses=["fd00::1"],
    )
    seeds = [
        joinmod.build_tcpls_marker(),
        params.to_bytes(),
        joinmod.build_join_body(b"\x42" * 16, b"\x10" * 16),
        # Regression: empty CONNID / cookie must be rejected, not
        # accepted as a zero-length credential.
        b"\x00\x00",
    ]
    return seeds


def _quic_packet_seeds() -> List[bytes]:
    def header(ptype: int, dcid: bytes, scid: bytes, pn: int) -> bytes:
        writer = ByteWriter()
        writer.put_u8(ptype)
        writer.put_vec8(dcid)
        writer.put_vec8(scid)
        writer.put_u64(pn)
        return writer.getvalue()

    seeds = [
        header(quicpkt.TYPE_INITIAL, b"\xd1" * 8, b"\x51" * 8, 0) + b"\xee" * 48,
        header(quicpkt.TYPE_EARLY, b"\xd1" * 8, b"", 1) + b"\xee" * 32,
        header(quicpkt.TYPE_APP, b"\xd1" * 8, b"\x51" * 8, 7) + b"\xee" * 64,
        # Frame plaintexts (what decode_frames sees post-decrypt).
        quicpkt.encode_frames(
            [
                quicpkt.PingFrame(),
                quicpkt.CryptoFrame(offset=0, data=b"\x01\x02\x03"),
                quicpkt.StreamFrame(stream_id=4, offset=0, data=b"req", fin=True),
            ]
        ),
        quicpkt.encode_frames(
            [quicpkt.AckFrame(ranges=[(7, 9), (1, 3)])]
        ),
    ]
    return seeds


def seed_corpus() -> Dict[str, List[bytes]]:
    """All committed seeds, keyed by wire-format name."""
    return {
        "tcp_segment": _tcp_segment_seeds(),
        "tcp_options": _tcp_option_seeds(),
        "tls_record": _tls_record_seeds(),
        "tls_handshake": _tls_handshake_seeds(),
        "tcpls_frame": _tcpls_frame_seeds(),
        "join": _join_seeds(),
        "quic_packet": _quic_packet_seeds(),
    }
