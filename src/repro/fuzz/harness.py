"""The deterministic fuzz campaign driver.

``run_campaign(seed, iterations)`` replays structured mutations of the
seed corpus against every registered parser target and enforces the
fail-closed contract: a target handed attacker bytes either parses, or
raises an exception inside the typed ``ProtocolViolation`` / ``CryptoError``
hierarchy.  Anything else — ``struct.error``, ``IndexError``, an
``AssertionError``, a hang-shaped ``RecursionError`` — is recorded as a
crasher with the exact reproducing bytes.

Determinism contract: the only entropy is ``random.Random(seed)``, and
the report carries a SHA-256 digest over every (format, mutation,
input bytes, outcome) tuple — two runs with the same seed and iteration
count must produce identical digests, which is how CI replays are
checked bit-for-bit.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core import framing
from repro.obs import keys as obs_keys
from repro.core import join as joinmod
from repro.core.framing import TType
from repro.quic import packet as quicpkt
from repro.tcp.options import decode_options
from repro.tcp.segment import TcpSegment
from repro.tls import messages as m
from repro.tls.record import RecordDecoder
from repro.tls.session import TlsAlertError
from repro.utils.errors import CryptoError, ProtocolViolation

from repro.fuzz.corpus import FORMATS, seed_corpus
from repro.fuzz.mutate import mutate

# The fail-closed contract: parsers may raise these (DecodeError and
# GuardLimitExceeded are ProtocolViolation subclasses; TlsAlertError is
# the record/handshake layers' teardown signal) and nothing else.
ALLOWED_EXCEPTIONS = (ProtocolViolation, TlsAlertError, CryptoError)

QUICK_ENV = "REPRO_FUZZ_QUICK"
QUICK_ITERATIONS = 700
DEFAULT_ITERATIONS = 7000


def _target_tcp_segment(data: bytes) -> None:
    TcpSegment.from_bytes(data)


def _target_tcp_options(data: bytes) -> None:
    decode_options(data)


def _target_tls_record(data: bytes) -> None:
    decoder = RecordDecoder()
    decoder.feed(data)
    for _outer_type, _body in decoder.raw_records():
        pass


_HANDSHAKE_BODY_PARSERS: Dict[int, Callable[[bytes], object]] = {
    m.CLIENT_HELLO: m.ClientHello.from_body,
    m.SERVER_HELLO: m.ServerHello.from_body,
    m.ENCRYPTED_EXTENSIONS: m.EncryptedExtensionsMsg.from_body,
    m.CERTIFICATE: m.CertificateMsg.from_body,
    m.CERTIFICATE_VERIFY: m.CertificateVerifyMsg.from_body,
    m.NEW_SESSION_TICKET: m.NewSessionTicketMsg.from_body,
}


def _target_tls_handshake(data: bytes) -> None:
    for msg_type, body, _raw in m.parse_handshake_frames(data):
        parser = _HANDSHAKE_BODY_PARSERS.get(msg_type)
        if parser is None:
            continue
        message = parser(body)
        # Chase the extension parsers the sessions actually call, so a
        # length lie inside key_share/server_name/PSK is exercised too.
        extensions = getattr(message, "extensions", None) or []
        for ext_type, ext_body in extensions:
            if ext_type == m.EXT_KEY_SHARE and msg_type == m.CLIENT_HELLO:
                m.parse_key_share_client(ext_body)
            elif ext_type == m.EXT_KEY_SHARE:
                m.parse_key_share_server(ext_body)
            elif ext_type == m.EXT_SERVER_NAME:
                m.parse_server_name(ext_body)
            elif ext_type == m.EXT_PRE_SHARED_KEY and msg_type == m.CLIENT_HELLO:
                m.parse_psk_offer(ext_body)
            elif ext_type == m.EXT_TCPLS:
                joinmod.parse_tcpls_marker(ext_body)


_FRAME_BODY_DECODERS: Dict[int, Callable[[bytes], object]] = {
    TType.STREAM_DATA: framing.decode_stream_data,
    TType.TCP_OPTION: framing.decode_tcp_option,
    TType.ACK: framing.decode_ack,
    TType.STREAM_OPEN: framing.decode_stream_open,
    TType.STREAM_CLOSE: framing.decode_stream_close,
    TType.JOIN_ACK: framing.decode_join_ack,
    TType.NEW_COOKIES: framing.decode_new_cookies,
    TType.PLUGIN: framing.decode_plugin,
    TType.PROBE: framing.decode_probe,
    TType.PROBE_REPORT: framing.decode_probe_report,
    TType.SESSION_CLOSE: framing.decode_session_close,
    TType.ADDRESS_ADVERT: framing.decode_address_advert,
}


def _target_tcpls_frame(data: bytes) -> None:
    # Mirrors TcplsSession dispatch: leading TType byte, then
    # seq-prefixed plaintext, then the per-type body decoder.
    if not data:
        return
    ttype, plaintext = data[0], data[1:]
    frame = framing.decode_frame(ttype, plaintext)
    decoder = _FRAME_BODY_DECODERS.get(frame.ttype)
    if decoder is not None:
        decoder(frame.body)


def _target_join(data: bytes) -> None:
    # The same bytes are offered to every JOIN-adjacent parser (which
    # one runs depends on where an attacker lands them).  If none
    # accepts, re-raise the last typed rejection so the campaign counts
    # the input as rejected rather than parsed.
    last_rejection: Optional[BaseException] = None
    accepted = False
    for parser in (
        joinmod.parse_tcpls_marker,
        joinmod.TcplsServerParams.from_bytes,
        joinmod.parse_join_body,
    ):
        try:
            parser(data)
            accepted = True
        except ALLOWED_EXCEPTIONS as exc:
            last_rejection = exc
    if not accepted and last_rejection is not None:
        raise last_rejection


def _target_quic_packet(data: bytes) -> None:
    try:
        quicpkt.parse_header(data)
    except ALLOWED_EXCEPTIONS:
        pass
    quicpkt.decode_frames(data)


TARGETS: Dict[str, Callable[[bytes], None]] = {
    "tcp_segment": _target_tcp_segment,
    "tcp_options": _target_tcp_options,
    "tls_record": _target_tls_record,
    "tls_handshake": _target_tls_handshake,
    "tcpls_frame": _target_tcpls_frame,
    "join": _target_join,
    "quic_packet": _target_quic_packet,
}

assert set(TARGETS) == set(FORMATS)


@dataclass
class Crasher:
    """One input that escaped the typed exception hierarchy."""

    format: str
    mutation: str
    data: bytes
    exception: str

    def repro_hex(self) -> str:
        return self.data.hex()


@dataclass
class CampaignReport:
    seed: int
    iterations: int
    accepted: int = 0
    rejected: int = 0
    per_format: Dict[str, int] = field(default_factory=dict)
    rejected_per_format: Dict[str, int] = field(default_factory=dict)
    crashers: List[Crasher] = field(default_factory=list)
    digest: str = ""

    @property
    def clean(self) -> bool:
        return not self.crashers

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "per_format": dict(self.per_format),
            "rejected_per_format": dict(self.rejected_per_format),
            "crashers": [
                {
                    "format": crasher.format,
                    "mutation": crasher.mutation,
                    "data": crasher.repro_hex(),
                    "exception": crasher.exception,
                }
                for crasher in self.crashers
            ],
            "digest": self.digest,
        }


def default_iterations() -> int:
    """Campaign size: trimmed under the CI smoke budget."""
    if os.environ.get(QUICK_ENV):
        return QUICK_ITERATIONS
    return DEFAULT_ITERATIONS


def run_campaign(
    seed: int = 0,
    iterations: Optional[int] = None,
    formats: Optional[List[str]] = None,
    obs=None,
) -> CampaignReport:
    """Replay ``iterations`` mutated inputs round-robin over the formats.

    The first pass over each format replays its committed seeds
    unmutated (the corpus itself must always parse or reject cleanly);
    every subsequent input is a fresh mutation of a seed chosen by the
    campaign RNG.  ``obs`` is an optional ``repro.obs.Observability``
    hub: the campaign runs under a ``fuzz`` tracer span and bumps
    ``fuzz.inputs`` / ``fuzz.rejected`` / ``fuzz.crashers`` counters.
    """
    rng = random.Random(seed)
    corpus = seed_corpus()
    chosen = list(formats) if formats else list(FORMATS)
    if iterations is None:
        iterations = default_iterations()
    report = CampaignReport(seed=seed, iterations=iterations)
    digest = hashlib.sha256()

    span = None
    counter_inputs = counter_rejected = counter_crashers = None
    if obs is not None:
        span = obs.tracer.span("fuzz", "campaign", seed=seed, iterations=iterations)
        counter_inputs = obs.telemetry.counter(obs_keys.COMP_FUZZ, obs_keys.FUZZ_INPUTS)
        counter_rejected = obs.telemetry.counter(
            obs_keys.COMP_FUZZ, obs_keys.FUZZ_REJECTED
        )
        counter_crashers = obs.telemetry.counter(
            obs_keys.COMP_FUZZ, obs_keys.FUZZ_CRASHERS
        )

    def drive(format_name: str, mutation: str, data: bytes) -> None:
        target = TARGETS[format_name]
        outcome = "ok"
        try:
            target(data)
            report.accepted += 1
        except ALLOWED_EXCEPTIONS as exc:
            outcome = f"rejected:{type(exc).__name__}"
            report.rejected += 1
            report.rejected_per_format[format_name] = (
                report.rejected_per_format.get(format_name, 0) + 1
            )
            if counter_rejected is not None:
                counter_rejected.inc()
        except Exception as exc:  # repro: noqa-SEC003 - catching everything IS the crash detector
            outcome = f"CRASH:{type(exc).__name__}"
            report.crashers.append(
                Crasher(
                    format=format_name,
                    mutation=mutation,
                    data=data,
                    exception=f"{type(exc).__name__}: {exc}",
                )
            )
            if counter_crashers is not None:
                counter_crashers.inc()
        report.per_format[format_name] = report.per_format.get(format_name, 0) + 1
        if counter_inputs is not None:
            counter_inputs.inc()
        digest.update(format_name.encode())
        digest.update(mutation.encode())
        digest.update(len(data).to_bytes(4, "big"))
        digest.update(data)
        digest.update(outcome.encode())

    done = 0
    # Pass 1: the committed seeds verbatim.
    for format_name in chosen:
        for entry in corpus[format_name]:
            if done >= iterations:
                break
            drive(format_name, "seed", entry)
            done += 1
    # Pass 2: seeded mutations, round-robin so every format gets an
    # equal share of the budget regardless of corpus size.
    while done < iterations:
        format_name = chosen[done % len(chosen)]
        base = rng.choice(corpus[format_name])
        mutation, data = mutate(rng, base)
        drive(format_name, mutation, data)
        done += 1

    report.digest = digest.hexdigest()
    if span is not None:
        span.end()
    return report


def save_crashers(report: CampaignReport, directory: str) -> List[str]:
    """Write each crasher's repro bytes + metadata; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, crasher in enumerate(report.crashers):
        path = os.path.join(
            directory, f"crash-{report.seed}-{index:03d}-{crasher.format}.txt"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"format: {crasher.format}\n")
            handle.write(f"mutation: {crasher.mutation}\n")
            handle.write(f"exception: {crasher.exception}\n")
            handle.write(f"data: {crasher.repro_hex()}\n")
        paths.append(path)
    return paths
