"""Structured byte mutations, deterministic under a seeded RNG.

Each mutator is a pure function ``(rng, data) -> bytes`` that models one
thing a hostile peer or broken middlebox does to wire bytes: cut them
short, lie in a length field, flip bits, duplicate or reorder chunks,
claim absurd sizes.  ``mutate`` picks one (sometimes stacking a second
pass) so a campaign exercises both single faults and combinations.

Nothing here touches wall-clock time or global randomness: the only
entropy source is the ``random.Random`` instance passed in, which is
what makes a campaign bit-for-bit replayable from its seed.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

Mutator = Callable[[random.Random, bytes], bytes]


def truncate(rng: random.Random, data: bytes) -> bytes:
    """Cut the buffer short — the classic mid-record TCP segment loss."""
    if not data:
        return data
    return data[: rng.randrange(len(data))]


def bit_flip(rng: random.Random, data: bytes) -> bytes:
    """Flip 1–8 random bits anywhere in the buffer."""
    if not data:
        return data
    buffer = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        position = rng.randrange(len(buffer))
        buffer[position] ^= 1 << rng.randrange(8)
    return bytes(buffer)


def length_lie(rng: random.Random, data: bytes) -> bytes:
    """Overwrite a 1/2/3-byte big-endian run with a plausible-but-wrong
    value — the shape of every declared-length-vs-buffer bug."""
    if not data:
        return data
    width = rng.choice([1, 2, 3])
    if len(data) < width:
        width = len(data)
    offset = rng.randrange(len(data) - width + 1)
    lie = rng.randrange(1 << (8 * width))
    buffer = bytearray(data)
    buffer[offset : offset + width] = lie.to_bytes(width, "big")
    return bytes(buffer)


def oversize_claim(rng: random.Random, data: bytes) -> bytes:
    """Saturate a 1/2/3-byte run with 0xFF — a maximal length claim that
    must trip a limit check, not an allocation."""
    if not data:
        return data
    width = rng.choice([1, 2, 3])
    if len(data) < width:
        width = len(data)
    offset = rng.randrange(len(data) - width + 1)
    buffer = bytearray(data)
    buffer[offset : offset + width] = b"\xff" * width
    return bytes(buffer)


def duplicate_slice(rng: random.Random, data: bytes) -> bytes:
    """Repeat a random chunk in place — duplicated TLVs / replayed frames."""
    if len(data) < 2:
        return data
    start = rng.randrange(len(data) - 1)
    end = rng.randrange(start + 1, len(data) + 1)
    return data[:end] + data[start:end] + data[end:]


def reorder_slices(rng: random.Random, data: bytes) -> bytes:
    """Swap two adjacent chunks — reordered TLVs / segments."""
    if len(data) < 3:
        return data
    cut_a = rng.randrange(1, len(data) - 1)
    cut_b = rng.randrange(cut_a + 1, len(data))
    return data[:cut_a] + data[cut_a:cut_b][::-1] + data[cut_b:]


def insert_garbage(rng: random.Random, data: bytes) -> bytes:
    """Splice 1–16 random bytes at a random offset."""
    offset = rng.randrange(len(data) + 1)
    garbage = bytes(rng.randrange(256) for _ in range(rng.randint(1, 16)))
    return data[:offset] + garbage + data[offset:]


def delete_slice(rng: random.Random, data: bytes) -> bytes:
    """Remove an interior chunk — a hole a length field no longer matches."""
    if len(data) < 2:
        return data
    start = rng.randrange(len(data) - 1)
    end = rng.randrange(start + 1, len(data) + 1)
    return data[:start] + data[end:]


def zero_fill(rng: random.Random, data: bytes) -> bytes:
    """Zero a random run — nulled kinds/types and zero-length options."""
    if not data:
        return data
    start = rng.randrange(len(data))
    end = rng.randrange(start + 1, len(data) + 1)
    buffer = bytearray(data)
    buffer[start:end] = bytes(end - start)
    return bytes(buffer)


MUTATORS: List[Tuple[str, Mutator]] = [
    ("truncate", truncate),
    ("bit_flip", bit_flip),
    ("length_lie", length_lie),
    ("oversize_claim", oversize_claim),
    ("duplicate_slice", duplicate_slice),
    ("reorder_slices", reorder_slices),
    ("insert_garbage", insert_garbage),
    ("delete_slice", delete_slice),
    ("zero_fill", zero_fill),
]


def mutate(rng: random.Random, data: bytes) -> Tuple[str, bytes]:
    """Apply one (occasionally two stacked) mutators; returns (name, bytes)."""
    name, mutator = rng.choice(MUTATORS)
    mutated = mutator(rng, data)
    if rng.random() < 0.25:
        second_name, second = rng.choice(MUTATORS)
        mutated = second(rng, mutated)
        name = f"{name}+{second_name}"
    return name, mutated
