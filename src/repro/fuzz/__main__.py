"""CLI: ``python -m repro.fuzz --seed 42 --iterations 7000``.

Exits nonzero if any input escaped the typed exception hierarchy;
crasher repro files go to ``--crash-dir`` so CI can upload them.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fuzz.harness import default_iterations, run_campaign, save_crashers


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fuzz")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="inputs to drive (default honours REPRO_FUZZ_QUICK)",
    )
    parser.add_argument("--format", action="append", dest="formats", default=None)
    parser.add_argument("--crash-dir", default="fuzz-crashers")
    parser.add_argument("--json", action="store_true", help="print the full report")
    options = parser.parse_args(argv)

    iterations = (
        options.iterations if options.iterations is not None else default_iterations()
    )
    report = run_campaign(
        seed=options.seed, iterations=iterations, formats=options.formats
    )
    if options.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"seed={report.seed} inputs={report.iterations} "
            f"accepted={report.accepted} rejected={report.rejected} "
            f"crashers={len(report.crashers)} digest={report.digest[:16]}"
        )
    if report.crashers:
        paths = save_crashers(report, options.crash_dir)
        for path in paths:
            print(f"crasher: {path}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
