"""Mini-QUIC endpoints: connection machinery over simulated UDP.

One packet-number space, three key epochs, ACK-based loss recovery with
packet-threshold + PTO, NewReno congestion control, streams with
independent delivery, 0-RTT, and client-driven connection migration with
server path validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.streams import TcplsStream
from repro.netsim.udp import UdpStack
from repro.quic import packet as qp
from repro.tcp.congestion import NewReno
from repro.tcp.rto import RtoEstimator
from repro.tls.certificates import Identity, TrustStore
from repro.tls.session import SessionTicketStore, TlsConfig, TlsSession
from repro.utils.errors import CryptoError, DecodeError, ProtocolViolation

_PACKET_THRESHOLD = 3  # reordering threshold for loss detection
_MAX_ACK_RANGES = 8

# Per-process endpoint counter mixed into each endpoint's RNG so that two
# connections built from one config still get distinct connection IDs
# (deterministic given creation order, which the simulator fixes).
_endpoint_counter = [0]


@dataclass
class QuicConfig:
    identity: Optional[Identity] = None
    trust_store: Optional[TrustStore] = None
    server_name: str = ""
    ticket_store: Optional[SessionTicketStore] = None
    ticket_key: bytes = b"\x00" * 32
    congestion: str = "reno"
    mtu: int = qp.MAX_DATAGRAM
    seed: int = 0


@dataclass
class _SentPacket:
    packet_number: int
    frames: list
    send_time: float
    size: int
    ack_eliciting: bool
    epoch: int


class _QuicEndpointBase:
    """State and machinery shared by client and server connections."""

    def __init__(self, udp: UdpStack, config: QuicConfig, is_server: bool) -> None:
        self.udp = udp
        self.sim = udp.sim
        self.config = config
        self.is_server = is_server
        _endpoint_counter[0] += 1
        self.rng = random.Random(
            (config.seed, _endpoint_counter[0], is_server).__hash__() & 0x7FFFFFFF
        )

        self.scid = bytes(self.rng.randrange(256) for _ in range(8))
        self.dcid = b""  # peer's source connection id once known
        self.local_port = 0
        self.peer_addr = None
        self.peer_port = 0
        self.local_addr_override: Optional[str] = None

        self.tls: Optional[TlsSession] = None
        self.handshake_complete = False
        self.closed = False

        # Epoch keys: epoch -> (send, recv) EpochKeys.
        self.keys: Dict[int, Tuple[qp.EpochKeys, qp.EpochKeys]] = {}
        self._undecryptable: List[Tuple] = []

        # Crypto stream (carries the TLS byte stream).
        self._crypto_send_offset = 0
        self._crypto_out_queue: List[qp.CryptoFrame] = []
        self._crypto_recv = TcplsStream(0, 0)
        self._crypto_recv.on_data = lambda data: self.tls.receive(data)

        # Streams.
        self.streams: Dict[int, TcplsStream] = {}
        self._next_stream_id = 0 if is_server else 1
        self.on_stream_data: Optional[Callable[[int, bytes], None]] = None
        self.on_stream_fin: Optional[Callable[[int], None]] = None
        self.on_early_data: Optional[Callable[[bytes], None]] = None
        self.on_handshake_complete: Optional[Callable[[], None]] = None

        # Reliability.
        self._next_pn = 0
        self._sent: Dict[int, _SentPacket] = {}
        self._largest_acked = -1
        self._received_pns: set = set()
        self._ack_pending = 0
        self._ack_event = None
        self._pto_event = None
        self._resend_frames: List = []
        self.cc = NewReno(config.mtu - 100)
        self.rto = RtoEstimator(min_rto=0.1)
        self._in_recovery_until = -1

        # Path validation (migration).
        self._path_challenge_out: Optional[bytes] = None
        self.validated_paths: set = set()

        self.stats = {
            "packets_sent": 0,
            "packets_received": 0,
            "packets_lost": 0,
            "bytes_sent": 0,
            "acks_sent": 0,
        }
        self.delivery_log: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Streams API
    # ------------------------------------------------------------------

    def create_stream(self) -> int:
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        self._make_stream(stream_id)
        return stream_id

    def _make_stream(self, stream_id: int) -> TcplsStream:
        stream = self.streams.get(stream_id)
        if stream is None:
            stream = TcplsStream(stream_id, 0)
            stream.attached = True
            stream.on_data = lambda data, sid=stream_id: self._deliver(sid, data)
            stream.on_fin = lambda sid=stream_id: (
                self.on_stream_fin and self.on_stream_fin(sid)
            )
            self.streams[stream_id] = stream
        return stream

    def _deliver(self, stream_id: int, data: bytes) -> None:
        self.delivery_log.append((self.sim.now, len(data)))
        if self.on_stream_data:
            self.on_stream_data(stream_id, data)

    def send(self, stream_id: int, data: bytes) -> int:
        self.streams[stream_id].queue(data)
        self._pump()
        return len(data)

    def close_stream(self, stream_id: int) -> None:
        self.streams[stream_id].close()
        self._pump()

    def close(self, reason: str = "") -> None:
        if self.closed:
            return
        self.closed = True
        epoch = qp.TYPE_APP if qp.TYPE_APP in self.keys else qp.TYPE_INITIAL
        self._send_packet(epoch, [qp.ConnectionCloseFrame(reason=reason)])

    # ------------------------------------------------------------------
    # TLS plumbing
    # ------------------------------------------------------------------

    def _crypto_write(self, data: bytes) -> None:
        """TLS output becomes CRYPTO frames."""
        self._crypto_out_queue.append(
            qp.CryptoFrame(offset=self._crypto_send_offset, data=data)
        )
        self._crypto_send_offset += len(data)
        self._pump()

    def _install_app_keys(self) -> None:
        client_secret = self.tls.keys.client_application_traffic
        server_secret = self.tls.keys.server_application_traffic
        send_secret = server_secret if self.is_server else client_secret
        recv_secret = client_secret if self.is_server else server_secret
        self.keys[qp.TYPE_APP] = (
            qp.EpochKeys(send_secret), qp.EpochKeys(recv_secret)
        )

    def _install_early_keys(self) -> None:
        secret = qp.early_secret(self.tls.keys.early_secret)
        keys = qp.EpochKeys(secret)
        if self.is_server:
            self.keys[qp.TYPE_EARLY] = (keys, keys)
        else:
            self.keys[qp.TYPE_EARLY] = (keys, keys)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _current_data_epoch(self) -> Optional[int]:
        if qp.TYPE_APP in self.keys and self.handshake_complete:
            return qp.TYPE_APP
        if qp.TYPE_EARLY in self.keys and not self.is_server:
            return qp.TYPE_EARLY
        return None

    def _pump(self) -> None:
        if self.closed or self.peer_addr is None:
            return
        # 1) Crypto frames ride the INITIAL epoch (pre-completion) or APP.
        crypto_epoch = (
            qp.TYPE_APP
            if self.handshake_complete and qp.TYPE_APP in self.keys
            else qp.TYPE_INITIAL
        )
        while self._crypto_out_queue:
            frame = self._crypto_out_queue.pop(0)
            # Split oversized crypto frames across packets.
            data = frame.data
            offset = frame.offset
            max_chunk = self.config.mtu - 100
            while data:
                chunk, data = data[:max_chunk], data[max_chunk:]
                self._send_packet(
                    crypto_epoch, [qp.CryptoFrame(offset=offset, data=chunk)]
                )
                offset += len(chunk)

        # 2) Retransmissions: crypto frames in the crypto epoch, stream
        # frames in the data epoch (which may not exist yet).
        crypto_resend = [
            f for f in self._resend_frames if isinstance(f, qp.CryptoFrame)
        ]
        self._resend_frames = [
            f for f in self._resend_frames if not isinstance(f, qp.CryptoFrame)
        ]
        for frame in crypto_resend:
            self._send_packet(crypto_epoch, [frame])

        epoch = self._current_data_epoch()
        if epoch is None:
            return
        while self._resend_frames:
            if not self._congestion_room():
                return
            frame = self._resend_frames.pop(0)
            self._send_packet(epoch, [frame])

        budget_guard = 0
        while self._congestion_room():
            frames = self._collect_stream_frames()
            if not frames:
                break
            self._send_packet(epoch, frames)
            budget_guard += 1
            if budget_guard > 10000:
                raise RuntimeError("runaway pump")

    def _congestion_room(self) -> bool:
        in_flight = sum(p.size for p in self._sent.values() if p.ack_eliciting)
        return in_flight < self.cc.window()

    def _collect_stream_frames(self) -> List[qp.StreamFrame]:
        budget = self.config.mtu - 60
        frames: List[qp.StreamFrame] = []
        for stream in self.streams.values():
            if budget < 80:
                break
            if not stream.has_pending_data():
                continue
            taken = stream.take_chunk(budget - 16)
            if taken is None:
                continue
            offset, data, fin = taken
            frames.append(
                qp.StreamFrame(
                    stream_id=stream.stream_id, offset=offset, data=data, fin=fin
                )
            )
            budget -= len(data) + 16
        return frames

    def _send_packet(self, epoch: int, frames: list, with_ack: bool = True) -> None:
        if epoch not in self.keys:
            return
        if with_ack and self._received_pns:
            frames = [self._make_ack_frame()] + frames
            self._ack_pending = 0
        packet_number = self._next_pn
        self._next_pn += 1
        send_keys = self.keys[epoch][0]
        datagram = qp.seal_packet(
            epoch, self.dcid, self.scid, packet_number, frames, send_keys
        )
        ack_eliciting = any(
            getattr(f, "frame_type", None) in qp.ACK_ELICITING for f in frames
        )
        retransmittable = [
            f for f in frames if isinstance(f, (qp.CryptoFrame, qp.StreamFrame))
        ]
        self._sent[packet_number] = _SentPacket(
            packet_number=packet_number,
            frames=retransmittable,
            send_time=self.sim.now,
            size=len(datagram),
            ack_eliciting=ack_eliciting,
            epoch=epoch,
        )
        self.stats["packets_sent"] += 1
        self.stats["bytes_sent"] += len(datagram)
        self.udp.send(
            self.local_port, self.peer_addr, self.peer_port, datagram,
            src=self.local_addr_override,
        )
        if ack_eliciting:
            self._arm_pto()

    def _make_ack_frame(self) -> qp.AckFrame:
        ranges: List[Tuple[int, int]] = []
        for pn in sorted(self._received_pns, reverse=True):
            if ranges and pn == ranges[-1][0] - 1:
                ranges[-1] = (pn, ranges[-1][1])
            else:
                if len(ranges) >= _MAX_ACK_RANGES:
                    break
                ranges.append((pn, pn))
        self.stats["acks_sent"] += 1
        return qp.AckFrame(ranges=ranges)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def handle_datagram(self, src_addr, src_port: int, data: bytes) -> None:
        if self.closed:
            return
        try:
            packet_type, dcid, scid, pn, header, ciphertext = qp.parse_header(data)
        except DecodeError:
            return
        if packet_type not in self.keys:
            self._undecryptable.append((src_addr, src_port, data))
            return
        recv_keys = self.keys[packet_type][1]
        try:
            frames = qp.open_packet(header, ciphertext, pn, recv_keys)
        except CryptoError:
            return
        self.stats["packets_received"] += 1
        if not self.dcid and scid:
            self.dcid = scid
        self._note_path(src_addr, src_port)
        if pn in self._received_pns:
            return
        self._received_pns.add(pn)
        ack_eliciting = False
        for frame in frames:
            ack_eliciting |= frame.frame_type in qp.ACK_ELICITING
            self._handle_frame(frame, packet_type, src_addr, src_port)
        if ack_eliciting and not self.closed:
            self._ack_pending += 1
            if self._ack_pending >= 2:
                self._flush_ack()
            else:
                self._arm_ack()
        self._pump()

    def _note_path(self, src_addr, src_port: int) -> None:
        """Server-side migration detection: new path needs validation."""
        if not self.is_server:
            return
        path = (src_addr, src_port)
        if (self.peer_addr, self.peer_port) == path:
            return
        if self.peer_addr is None:
            self.peer_addr, self.peer_port = path
            return
        # The client moved: switch and validate the new path.
        self.peer_addr, self.peer_port = path
        token = bytes(self.rng.randrange(256) for _ in range(8))
        self._path_challenge_out = token
        self._send_packet(
            qp.TYPE_APP if qp.TYPE_APP in self.keys else qp.TYPE_INITIAL,
            [qp.PathChallengeFrame(token=token)],
        )

    def _handle_frame(self, frame, packet_type: int, src_addr, src_port: int) -> None:
        if isinstance(frame, qp.AckFrame):
            self._on_ack(frame)
        elif isinstance(frame, qp.CryptoFrame):
            self._crypto_recv.on_segment(frame.offset, frame.data, False)
        elif isinstance(frame, qp.StreamFrame):
            stream = self._make_stream(frame.stream_id)
            if packet_type == qp.TYPE_EARLY and self.is_server:
                if self.on_early_data and frame.data:
                    self.on_early_data(frame.data)
            stream.on_segment(frame.offset, frame.data, frame.fin)
        elif isinstance(frame, qp.PathChallengeFrame):
            self._send_packet(
                qp.TYPE_APP if qp.TYPE_APP in self.keys else qp.TYPE_INITIAL,
                [qp.PathResponseFrame(token=frame.token)],
            )
        elif isinstance(frame, qp.PathResponseFrame):
            if frame.token == self._path_challenge_out:
                self.validated_paths.add((self.peer_addr, self.peer_port))
        elif isinstance(frame, qp.HandshakeDoneFrame):
            pass
        elif isinstance(frame, qp.ConnectionCloseFrame):
            self.closed = True

    # ------------------------------------------------------------------
    # Loss recovery
    # ------------------------------------------------------------------

    def _on_ack(self, frame: qp.AckFrame) -> None:
        acked_bytes = 0
        newly_acked: List[_SentPacket] = []
        for low, high in frame.ranges:
            for pn in list(self._sent):
                if low <= pn <= high:
                    sent = self._sent.pop(pn)
                    newly_acked.append(sent)
                    if sent.ack_eliciting:
                        acked_bytes += sent.size
                    self._largest_acked = max(self._largest_acked, pn)
        if not newly_acked:
            return
        latest = max(newly_acked, key=lambda p: p.packet_number)
        rtt = self.sim.now - latest.send_time
        self.rto.on_measurement(rtt)
        self.cc.observe_rtt(rtt)
        if acked_bytes:
            self.cc.on_ack(acked_bytes, rtt, self.sim.now)
        self._detect_losses()
        self._arm_pto()
        self._pump()

    def _detect_losses(self) -> None:
        lost = [
            sent
            for pn, sent in self._sent.items()
            if pn <= self._largest_acked - _PACKET_THRESHOLD
        ]
        if not lost:
            return
        for sent in lost:
            del self._sent[sent.packet_number]
            self.stats["packets_lost"] += 1
            self._resend_frames.extend(sent.frames)
        # One congestion event per recovery period.
        if lost[0].send_time > self._in_recovery_until:
            flight = sum(p.size for p in self._sent.values() if p.ack_eliciting)
            self.cc.on_loss(flight, self.sim.now)
            self._in_recovery_until = self.sim.now

    def _arm_ack(self) -> None:
        if self._ack_event is not None:
            return
        self._ack_event = self.sim.schedule(0.025, self._flush_ack)

    def _flush_ack(self) -> None:
        if self._ack_event is not None:
            self._ack_event.cancel()
            self._ack_event = None
        if self._ack_pending == 0 or self.closed:
            return
        epoch = (
            qp.TYPE_APP
            if qp.TYPE_APP in self.keys and self.handshake_complete
            else qp.TYPE_INITIAL
        )
        self._send_packet(epoch, [], with_ack=True)

    def _arm_pto(self) -> None:
        if self._pto_event is not None:
            self._pto_event.cancel()
            self._pto_event = None
        if not any(p.ack_eliciting for p in self._sent.values()):
            return
        self._pto_event = self.sim.schedule(
            max(self.rto.rto, 0.1), self._on_pto
        )

    def _on_pto(self) -> None:
        self._pto_event = None
        if self.closed:
            return
        self.rto.on_timeout()
        outstanding = sorted(self._sent.values(), key=lambda p: p.packet_number)
        if not outstanding:
            return
        # Retransmit the oldest packet's data and probe.
        oldest = outstanding[0]
        del self._sent[oldest.packet_number]
        self.stats["packets_lost"] += 1
        self._resend_frames.extend(oldest.frames)
        self.cc.on_timeout(
            sum(p.size for p in self._sent.values() if p.ack_eliciting),
            self.sim.now,
        )
        if not oldest.frames:
            self._send_packet(
                qp.TYPE_APP if self.handshake_complete else qp.TYPE_INITIAL,
                [qp.PingFrame()],
            )
        self._pump()
        self._arm_pto()


class QuicClient(_QuicEndpointBase):
    """Client connection: connect, optionally with 0-RTT early data."""

    def __init__(
        self,
        udp: UdpStack,
        dest: str,
        dest_port: int,
        config: QuicConfig,
        early_data: bytes = b"",
    ) -> None:
        super().__init__(udp, config, is_server=False)
        from repro.netsim.packet import parse_address

        self.peer_addr = parse_address(dest)
        self.peer_port = dest_port
        self.local_port = udp.bind(0, self.handle_datagram)

        # Initial keys from our chosen destination connection id.
        initial_dcid = bytes(self.rng.randrange(256) for _ in range(8))
        self.dcid = initial_dcid
        client_secret, server_secret = qp.initial_secrets(initial_dcid)
        self.keys[qp.TYPE_INITIAL] = (
            qp.EpochKeys(client_secret), qp.EpochKeys(server_secret)
        )

        tls_config = TlsConfig(
            trust_store=config.trust_store,
            server_name=config.server_name,
            ticket_store=config.ticket_store,
            rng=random.Random(config.seed + 7),
        )
        self.tls = TlsSession(tls_config, is_server=False, transport_write=self._crypto_write)
        self.tls.on_handshake_complete = self._on_tls_done
        self.tls.start_handshake(early_data=b"")
        if early_data:
            # 0-RTT: early keys from the PSK-derived early secret.
            if not self.tls._psk_ticket:
                raise ProtocolViolation("0-RTT requires a resumption ticket")
            self._install_early_keys()
            stream_id = self.create_stream()
            self.streams[stream_id].queue(early_data)
        self._pump()

    def _on_tls_done(self) -> None:
        self.handshake_complete = True
        self._install_app_keys()
        if self.on_handshake_complete:
            self.on_handshake_complete()
        self._pump()

    def migrate(self, new_local_addr: str) -> None:
        """Connection migration: continue from a different local address."""
        self.local_addr_override = new_local_addr
        self._send_packet(qp.TYPE_APP, [qp.PingFrame()])


class QuicServerConnection(_QuicEndpointBase):
    """One accepted server-side connection."""

    def __init__(self, server: "QuicServer", initial_dcid: bytes) -> None:
        super().__init__(server.udp, server.config, is_server=True)
        self.server = server
        self.local_port = server.port
        client_secret, server_secret = qp.initial_secrets(initial_dcid)
        self.keys[qp.TYPE_INITIAL] = (
            qp.EpochKeys(server_secret), qp.EpochKeys(client_secret)
        )
        tls_config = TlsConfig(
            identity=server.config.identity,
            ticket_key=server.config.ticket_key,
            rng=random.Random(server.config.seed + 17),
        )
        self.tls = TlsSession(tls_config, is_server=True, transport_write=self._crypto_write)
        self.tls.on_handshake_complete = self._on_tls_done
        self.tls.on_early_data = lambda data: None  # 0-RTT rides EARLY packets

        original_receive = self.tls.receive

        def receive_and_maybe_unlock(data: bytes) -> None:
            original_receive(data)
            # Once the ClientHello is processed the PSK (if any) is known
            # and 0-RTT packets become decryptable.
            if self.tls.used_psk and qp.TYPE_EARLY not in self.keys:
                self._install_early_keys()
                self._retry_undecryptable()

        self._crypto_recv.on_data = receive_and_maybe_unlock

    def _on_tls_done(self) -> None:
        self.handshake_complete = True
        self._install_app_keys()
        self._send_packet(qp.TYPE_APP, [qp.HandshakeDoneFrame()])
        if self.on_handshake_complete:
            self.on_handshake_complete()
        self._pump()

    def _retry_undecryptable(self) -> None:
        pending, self._undecryptable = self._undecryptable, []
        for src_addr, src_port, data in pending:
            self.handle_datagram(src_addr, src_port, data)


class QuicServer:
    """Accepts QUIC connections on a UDP port."""

    def __init__(
        self,
        udp: UdpStack,
        port: int,
        config: QuicConfig,
        on_connection: Optional[Callable[[QuicServerConnection], None]] = None,
    ) -> None:
        self.udp = udp
        self.port = port
        self.config = config
        self.on_connection = on_connection
        self.connections: Dict[bytes, QuicServerConnection] = {}
        udp.bind(port, self._on_datagram)

    def _on_datagram(self, src_addr, src_port: int, data: bytes) -> None:
        try:
            packet_type, dcid, scid, _pn, _header, _ct = qp.parse_header(data)
        except DecodeError:
            return
        conn = self.connections.get(scid)
        if conn is None:
            if packet_type != qp.TYPE_INITIAL:
                return
            conn = QuicServerConnection(self, initial_dcid=dcid)
            conn.dcid = scid
            self.connections[scid] = conn
            if self.on_connection:
                self.on_connection(conn)
        conn.handle_datagram(src_addr, src_port, data)
