"""Mini-QUIC wire format: packets and frames.

Packet layout (before protection)::

    [ type u8 | dcid vec8 | scid vec8 | packet_number u64 | frames... ]

The frame payload (everything after the packet number) is AEAD-sealed
with the epoch's key; the header is authenticated as associated data.
Three epochs: INITIAL (keys derived from the client's initial DCID, as
in real QUIC — obscures but does not secure), EARLY (0-RTT, keys from
the resumption PSK), and APP (keys from the TLS exporter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.crypto.aead import ChaCha20Poly1305
from repro.crypto.hkdf import hkdf_expand_label, hkdf_extract
from repro.utils.bytesio import ByteReader, ByteWriter
from repro.utils.errors import UnknownType, decode_guard

TYPE_INITIAL = 0x01
TYPE_EARLY = 0x02
TYPE_APP = 0x03

FRAME_PADDING = 0x00
FRAME_PING = 0x01
FRAME_ACK = 0x02
FRAME_CRYPTO = 0x06
FRAME_STREAM = 0x08
FRAME_PATH_CHALLENGE = 0x1A
FRAME_PATH_RESPONSE = 0x1B
FRAME_HANDSHAKE_DONE = 0x1E
FRAME_CONNECTION_CLOSE = 0x1C

MAX_DATAGRAM = 1200

_INITIAL_SALT = b"repro-quic-initial-salt-v1"


@dataclass
class AckFrame:
    ranges: List[Tuple[int, int]]  # inclusive (low, high), descending

    frame_type = FRAME_ACK

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_ACK)
        writer.put_u8(len(self.ranges))
        for low, high in self.ranges:
            writer.put_u64(low)
            writer.put_u64(high)


@dataclass
class CryptoFrame:
    offset: int
    data: bytes

    frame_type = FRAME_CRYPTO

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_CRYPTO)
        writer.put_u64(self.offset)
        writer.put_vec16(self.data)


@dataclass
class StreamFrame:
    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    frame_type = FRAME_STREAM

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_STREAM)
        writer.put_u32(self.stream_id)
        writer.put_u64(self.offset)
        writer.put_u8(1 if self.fin else 0)
        writer.put_vec16(self.data)

    def wire_length(self) -> int:
        return 1 + 4 + 8 + 1 + 2 + len(self.data)


@dataclass
class PingFrame:
    frame_type = FRAME_PING

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_PING)


@dataclass
class PathChallengeFrame:
    token: bytes

    frame_type = FRAME_PATH_CHALLENGE

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_PATH_CHALLENGE)
        writer.put_bytes(self.token.ljust(8, b"\x00")[:8])


@dataclass
class PathResponseFrame:
    token: bytes

    frame_type = FRAME_PATH_RESPONSE

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_PATH_RESPONSE)
        writer.put_bytes(self.token.ljust(8, b"\x00")[:8])


@dataclass
class HandshakeDoneFrame:
    frame_type = FRAME_HANDSHAKE_DONE

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_HANDSHAKE_DONE)


@dataclass
class ConnectionCloseFrame:
    error_code: int = 0
    reason: str = ""

    frame_type = FRAME_CONNECTION_CLOSE

    def encode(self, writer: ByteWriter) -> None:
        writer.put_u8(FRAME_CONNECTION_CLOSE)
        writer.put_u16(self.error_code)
        writer.put_vec8(self.reason.encode("utf-8")[:255])


Frame = Union[
    AckFrame, CryptoFrame, StreamFrame, PingFrame,
    PathChallengeFrame, PathResponseFrame, HandshakeDoneFrame,
    ConnectionCloseFrame,
]

ACK_ELICITING = (
    FRAME_PING, FRAME_CRYPTO, FRAME_STREAM,
    FRAME_PATH_CHALLENGE, FRAME_PATH_RESPONSE, FRAME_HANDSHAKE_DONE,
)


def encode_frames(frames: List[Frame]) -> bytes:
    writer = ByteWriter()
    for frame in frames:
        frame.encode(writer)
    return writer.getvalue()


def decode_frames(data: bytes) -> List[Frame]:
    with decode_guard("quic.decode_frames"):
        return _decode_frames_inner(data)


def _decode_frames_inner(data: bytes) -> List[Frame]:
    reader = ByteReader(data)
    frames: List[Frame] = []
    while not reader.is_empty():
        frame_type = reader.get_u8()
        if frame_type == FRAME_PADDING:
            continue
        if frame_type == FRAME_PING:
            frames.append(PingFrame())
        elif frame_type == FRAME_ACK:
            count = reader.get_u8()
            ranges = [(reader.get_u64(), reader.get_u64()) for _ in range(count)]
            frames.append(AckFrame(ranges=ranges))
        elif frame_type == FRAME_CRYPTO:
            offset = reader.get_u64()
            frames.append(CryptoFrame(offset=offset, data=reader.get_vec16()))
        elif frame_type == FRAME_STREAM:
            stream_id = reader.get_u32()
            offset = reader.get_u64()
            fin = bool(reader.get_u8())
            frames.append(
                StreamFrame(
                    stream_id=stream_id, offset=offset,
                    data=reader.get_vec16(), fin=fin,
                )
            )
        elif frame_type == FRAME_PATH_CHALLENGE:
            frames.append(PathChallengeFrame(token=reader.get_bytes(8)))
        elif frame_type == FRAME_PATH_RESPONSE:
            frames.append(PathResponseFrame(token=reader.get_bytes(8)))
        elif frame_type == FRAME_HANDSHAKE_DONE:
            frames.append(HandshakeDoneFrame())
        elif frame_type == FRAME_CONNECTION_CLOSE:
            code = reader.get_u16()
            reason = reader.get_vec8().decode("utf-8", "replace")
            frames.append(ConnectionCloseFrame(error_code=code, reason=reason))
        else:
            raise UnknownType(f"unknown QUIC frame type {frame_type:#04x}")
    return frames


# ---------------------------------------------------------------------------
# Packet protection
# ---------------------------------------------------------------------------


class EpochKeys:
    """AEAD keys for one epoch and direction."""

    def __init__(self, secret: bytes) -> None:
        self.key = hkdf_expand_label(secret, "quic key", b"", 32)
        self.iv = hkdf_expand_label(secret, "quic iv", b"", 12)
        self.aead = ChaCha20Poly1305(self.key)

    def nonce(self, packet_number: int) -> bytes:
        pn = packet_number.to_bytes(12, "big")
        return bytes(a ^ b for a, b in zip(self.iv, pn))


def initial_secrets(dcid: bytes) -> Tuple[bytes, bytes]:
    """Derive (client, server) initial secrets from the DCID (RFC 9001 5.2)."""
    initial = hkdf_extract(_INITIAL_SALT, dcid)
    return (
        hkdf_expand_label(initial, "client in", b"", 32),
        hkdf_expand_label(initial, "server in", b"", 32),
    )


def early_secret(psk: bytes) -> bytes:
    return hkdf_expand_label(hkdf_extract(b"repro-quic-early", psk), "early", b"", 32)


def seal_packet(
    packet_type: int,
    dcid: bytes,
    scid: bytes,
    packet_number: int,
    frames: List[Frame],
    keys: EpochKeys,
) -> bytes:
    header = ByteWriter()
    header.put_u8(packet_type)
    header.put_vec8(dcid)
    header.put_vec8(scid)
    header.put_u64(packet_number)
    header_bytes = header.getvalue()
    plaintext = encode_frames(frames)
    sealed = keys.aead.encrypt(keys.nonce(packet_number), plaintext, header_bytes)
    return header_bytes + sealed


def parse_header(data: bytes) -> Tuple[int, bytes, bytes, int, bytes, bytes]:
    """Split a packet: (type, dcid, scid, pn, header_bytes, ciphertext)."""
    with decode_guard("quic.parse_header"):
        reader = ByteReader(data)
        packet_type = reader.get_u8()
        if packet_type not in (TYPE_INITIAL, TYPE_EARLY, TYPE_APP):
            raise UnknownType(f"unknown QUIC packet type {packet_type:#04x}")
        dcid = reader.get_vec8()
        scid = reader.get_vec8()
        packet_number = reader.get_u64()
        header_len = reader.offset
    return (
        packet_type, dcid, scid, packet_number,
        data[:header_len], data[header_len:],
    )


def open_packet(header_bytes: bytes, ciphertext: bytes, packet_number: int,
                keys: EpochKeys) -> List[Frame]:
    plaintext = keys.aead.decrypt(
        keys.nonce(packet_number), ciphertext, header_bytes
    )
    return decode_frames(plaintext)
