"""A miniature QUIC transport — the comparison point of the paper.

Table 1 and sections 2.5/4.6 compare TCPLS against QUIC.  This package
implements a QUIC-shaped transport over simulated UDP with the
properties those comparisons exercise:

- connection establishment carrying the TLS 1.3 handshake in CRYPTO
  frames (1-RTT), with 0-RTT early data on resumption;
- AEAD-protected packets with packet numbers per connection;
- multiple streams with independent (HOL-blocking-free) delivery;
- ACK-frame loss recovery with packet-threshold and PTO detection, and
  NewReno congestion control;
- connection migration: the client re-binds to a new address and the
  server validates the new path with PATH_CHALLENGE.

It is intentionally a miniature (single packet-number space, no key
phases, no varint encoding), but every compared behaviour is real.
"""

from repro.quic.connection import QuicClient, QuicConfig, QuicServer

__all__ = ["QuicClient", "QuicConfig", "QuicServer"]
