"""Central kill-switches for the datapath fast paths.

Every performance shortcut in the datapath (batched crypto, cached wire
serialization, O(1) TCP accounting, lazy middlebox parsing) is guarded
by a named flag here.  The rules:

- a fast path must be **bit-identical** to the scalar/reference path it
  replaces — flags exist so the reference behaviour stays reachable for
  cross-check tests and for the before/after legs of the perf
  benchmarks, not because the paths may diverge;
- the scalar path is the specification.  When a flag is off, the code
  executes the same logic the pre-fast-path tree ran, so
  ``scalar_baseline()`` reproduces the original datapath for honest
  baseline measurements;
- flags are read on the hot path, so lookups go through module-level
  helpers kept deliberately tiny.

Set ``REPRO_FASTPATH=0`` in the environment to start with every fast
path disabled (the benchmark baseline leg does this per-process-free
via ``scalar_baseline()`` instead).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator

#: Every known fast-path feature, and what it gates.
FEATURES = (
    # Batched Poly1305 + single-call / lookahead ChaCha20 keystream in
    # the AEAD path (crypto/poly1305_fast.py, crypto/aead.py,
    # tls/record.py keystream cache).
    "crypto.batch",
    # Trial-decryption context affinity: try the stream context that
    # authenticated the previous record first (core/contexts.py).
    "tls.affinity",
    # Cached TcpSegment wire bytes, single-buffer serialization and the
    # folded-big-int RFC 1071 checksum (tcp/segment.py).
    "wire.cache",
    # O(1) bytes-in-flight accounting and ordered-scoreboard ACK
    # processing in TcpConnection (tcp/connection.py).
    "tcp.ack",
    # Lazy fixed-header peeks in middleboxes plus host address / route
    # lookup caches (netsim/middlebox.py, netsim/node.py).
    "netsim.fast",
    # Hierarchical timer wheel replacing the engine's global event heap
    # (netsim/timerwheel.py, netsim/engine.py): O(1) inserts and
    # bucket-local ordering for many-session timer churn.
    "netsim.wheel",
    # Vectorized link queue service: TCP send bursts travel as one batch
    # down Interface.send_batch -> Link.transmit_batch, where numpy
    # computes the chained service times for the whole burst
    # (netsim/link.py, netsim/node.py, tcp/connection.py).
    "netsim.vectorq",
)

#: The registered fastpath-vs-scalar cross-check test for every feature
#: (repo-relative paths).  The FP001 lint rule enforces that each entry
#: exists and actually references its flag, so no fast path can outlive
#: the test that proves it bit-identical to the scalar reference.
CROSSCHECKS: Dict[str, str] = {
    "crypto.batch": "tests/crypto/test_fastpath_crypto.py",
    "tls.affinity": "tests/core/test_contexts.py",
    "wire.cache": "tests/tcp/test_fastpath_wire.py",
    "tcp.ack": "tests/tcp/test_fastpath_wire.py",
    "netsim.fast": "tests/netsim/test_fastpath_netsim.py",
    "netsim.wheel": "tests/netsim/test_timerwheel.py",
    "netsim.vectorq": "tests/netsim/test_vectorq.py",
}

_DEFAULT = os.environ.get("REPRO_FASTPATH", "1") != "0"
_flags: Dict[str, bool] = {name: _DEFAULT for name in FEATURES}

#: The live flag mapping itself, for per-packet hot paths where even the
#: ``enabled()`` call shows up in profiles: ``fastpath.flags["wire.cache"]``
#: is one dict lookup instead of a function call.  Mutate only through
#: ``set_enabled``/``scalar_baseline``/``overridden``.
flags = _flags


def enabled(name: str) -> bool:
    """True when the named fast path is active."""
    return _flags[name]


def set_enabled(name: str, value: bool) -> None:
    if name not in _flags:
        raise KeyError(f"unknown fastpath feature {name!r}")
    _flags[name] = bool(value)


def all_enabled() -> Dict[str, bool]:
    """Snapshot of every flag (for BENCH_*.json provenance)."""
    return dict(_flags)


@contextmanager
def scalar_baseline() -> Iterator[None]:
    """Run the enclosed block on the pre-fast-path reference datapath.

    Disables every fast path, restoring previous values on exit.  Used
    by the perf benchmarks for the "before" leg and by the wire-fidelity
    tests to prove both datapaths emit identical packets.
    """
    saved = dict(_flags)
    try:
        for name in _flags:
            _flags[name] = False
        yield
    finally:
        _flags.update(saved)


@contextmanager
def overridden(name: str, value: bool) -> Iterator[None]:
    """Temporarily force one flag (test helper)."""
    saved = _flags[name]
    try:
        _flags[name] = bool(value)
        yield
    finally:
        _flags[name] = saved
