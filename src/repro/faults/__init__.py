"""Fault injection and recovery invariants for TCPLS scenarios.

Three pieces, used together in ``tests/faults``:

* :mod:`repro.faults.plan` — declarative, seedable fault schedules
  (:class:`FaultPlan` / :class:`Fault`);
* :mod:`repro.faults.chaos` — :class:`ChaosEngine`, which executes a
  plan against live :class:`~repro.netsim.link.Link` objects on the
  simulator clock;
* :mod:`repro.faults.invariants` — :func:`check_invariants` and the
  live recorders that prove the session honoured its robustness
  contract (no loss, no dup, in-order, bounded recovery) under the plan.
"""

from repro.faults.chaos import Blackhole, ChaosEngine, NatRebinder, RstStorm
from repro.faults.invariants import (
    DeliveryRecorder,
    InvariantReport,
    TrackerAudit,
    check_invariants,
    max_recovery_time,
    recovery_spans,
)
from repro.faults.plan import ALL_KINDS, Fault, FaultPlan

__all__ = [
    "ALL_KINDS",
    "Blackhole",
    "ChaosEngine",
    "DeliveryRecorder",
    "Fault",
    "FaultPlan",
    "InvariantReport",
    "NatRebinder",
    "RstStorm",
    "TrackerAudit",
    "check_invariants",
    "max_recovery_time",
    "recovery_spans",
]
