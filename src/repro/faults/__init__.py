"""Fault injection and recovery invariants for TCPLS scenarios.

Four pieces, used together in ``tests/faults``:

* :mod:`repro.faults.plan` — declarative, seedable fault schedules
  (:class:`FaultPlan` / :class:`Fault`);
* :mod:`repro.faults.chaos` — :class:`ChaosEngine`, which executes a
  plan against live :class:`~repro.netsim.link.Link` objects (and
  :class:`ServerEndpoint` targets) on the simulator clock;
* :mod:`repro.faults.endpoint` — :class:`ServerEndpoint`, the crashable
  server-process wrapper behind the ``server_crash`` / ``server_restart``
  / ``ticket_key_rotation`` fault kinds;
* :mod:`repro.faults.invariants` — :func:`check_invariants` and the
  live recorders that prove the session honoured its robustness
  contract (no loss, no dup, in-order, bounded recovery) under the plan.
"""

from repro.faults.chaos import Blackhole, ChaosEngine, NatRebinder, RstStorm
from repro.faults.endpoint import ServerEndpoint, rotated_key
from repro.faults.invariants import (
    DeliveryRecorder,
    InvariantReport,
    TrackerAudit,
    check_invariants,
    check_reconnect_storm,
    max_recovery_time,
    max_storm_recovery_time,
    recovery_spans,
)
from repro.faults.plan import ALL_KINDS, ENDPOINT_KINDS, Fault, FaultPlan

__all__ = [
    "ALL_KINDS",
    "Blackhole",
    "ChaosEngine",
    "DeliveryRecorder",
    "ENDPOINT_KINDS",
    "Fault",
    "FaultPlan",
    "InvariantReport",
    "NatRebinder",
    "RstStorm",
    "ServerEndpoint",
    "TrackerAudit",
    "check_invariants",
    "check_reconnect_storm",
    "max_recovery_time",
    "max_storm_recovery_time",
    "recovery_spans",
    "rotated_key",
]
