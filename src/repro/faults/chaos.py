"""ChaosEngine: executes a :class:`~repro.faults.plan.FaultPlan` on live links.

The engine owns the mapping from abstract fault kinds to concrete link
mutations: flaps call ``Link.set_down``/``set_up`` (per direction where
asked), windowed middlebox faults install a transformer at the start
instant and remove it at the end (middlebox churn — the box appears
mid-session and later vanishes), loss bursts temporarily raise the
link's Bernoulli loss rate, and NAT rebinds snapshot the flows alive at
the rebind instant and kill exactly those.

Everything runs on the simulator clock, so a given (topology seed,
plan) pair replays identically — which is what lets the invariant
checker make hard assertions about recovery behaviour.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.faults.plan import (
    KIND_BLACKHOLE,
    KIND_CLIENT_STAMPEDE,
    KIND_CORRUPT_BURST,
    KIND_FLAP,
    KIND_LOSS_BURST,
    KIND_MEMORY_PRESSURE,
    KIND_NAT_REBIND,
    KIND_RST_STORM,
    KIND_SERVER_CRASH,
    KIND_SERVER_RESTART,
    KIND_SLOW_READER,
    KIND_STRIP_OPTIONS,
    KIND_TICKET_KEY_ROTATION,
    Fault,
    FaultPlan,
)
from repro.netsim.middlebox import (
    OptionStripper,
    PayloadCorruptor,
    _parse_tcp,
    _reserialize,
)
from repro.obs import keys as obs_keys
from repro.tcp.segment import Flags, TcpSegment


class Blackhole:
    """Transformer that silently eats every packet while installed.

    Distinct from a link flap: the link stays nominally up (no
    ``dropped_down`` accounting, no carrier-loss signal a stack could
    react to) — traffic just vanishes, the way a misconfigured firewall
    or a routing black hole behaves.
    """

    def __init__(self) -> None:
        self.dropped = 0

    def __call__(self, datagram):
        self.dropped += 1
        return None


class RstStorm:
    """Transformer that replaces every Nth TCP packet with a forged RST.

    Unlike :class:`repro.netsim.middlebox.RstInjector` (one targeted
    kill after a byte threshold), a storm sprays RSTs at whatever flows
    are active while it lasts — modelling the documented behaviour of
    censorship boxes and broken traffic shapers.  The RST carries the
    victim packet's own sequence numbers, so it lands in-window.
    """

    def __init__(self, every: int = 1) -> None:
        self.every = max(1, every)
        self._count = 0
        self.forged = 0

    def __call__(self, datagram):
        segment = _parse_tcp(datagram)
        if segment is None:
            return datagram
        self._count += 1
        if self._count % self.every:
            return datagram
        rst = TcpSegment(
            src_port=segment.src_port,
            dst_port=segment.dst_port,
            seq=segment.seq,
            ack=segment.ack,
            flags=Flags.RST | Flags.ACK,
            window=0,
        )
        self.forged += 1
        return [_reserialize(datagram, rst)]


class NatRebinder:
    """Transformer modelling a NAT that forgets its bindings mid-session.

    While armed it passively records TCP 4-tuples.  ``rebind()``
    snapshots the flows known at that instant as *stale*: their packets
    are dropped from then on (the NAT no longer has a translation for
    them), while flows first seen after the rebind pass untouched (new
    connections re-establish a binding).  This is the failure mode the
    paper's JOIN mechanism exists to recover from.
    """

    def __init__(self) -> None:
        self._seen: set = set()
        self._stale: set = set()
        self.rebinds = 0
        self.dropped = 0

    @staticmethod
    def _flow(datagram, segment) -> tuple:
        return (datagram.src, segment.src_port, datagram.dst, segment.dst_port)

    def rebind(self) -> None:
        self._stale |= self._seen
        self._seen = set()
        self.rebinds += 1

    def __call__(self, datagram):
        segment = _parse_tcp(datagram)
        if segment is None:
            return datagram
        flow = self._flow(datagram, segment)
        if flow in self._stale:
            self.dropped += 1
            return None
        self._seen.add(flow)
        return datagram


class ChaosEngine:
    """Schedules a fault plan against a set of paths.

    ``paths`` is a sequence with one entry per path; an entry is either a
    single ``Link`` or a list of links (multi-hop paths apply each fault
    to every hop).  Faults with ``path=None`` hit all paths.
    """

    def __init__(self, sim, paths: Sequence, obs=None, endpoints=None,
                 workloads=None) -> None:
        self.sim = sim
        self.paths: List[list] = [
            list(entry) if isinstance(entry, (list, tuple)) else [entry]
            for entry in paths
        ]
        # Endpoint-fault targets (ServerEndpoint instances).  For
        # endpoint kinds, ``fault.path`` indexes this list instead of
        # ``paths`` (None = every endpoint).
        self.endpoints: List = list(endpoints) if endpoints else []
        # Workload-fault targets: objects speaking the chaos workload
        # protocol (``stampede``/``slow_reader_start``/``slow_reader_end``/
        # ``memory_pressure_start``/``memory_pressure_end``).  For
        # workload kinds, ``fault.path`` indexes this list (None = all).
        self.workloads: List = list(workloads) if workloads else []
        # Workload windows currently open, for teardown mid-window:
        # (workload, kind) entries.
        self._workload_open: list = []
        # Chronological record of every action taken: (time, kind, path,
        # phase) where phase is "start"/"end" ("fire" for instant faults).
        self.log: list = []
        self._saved_loss: dict = {}
        # NAT rebinders are armed lazily, one per (link, direction), the
        # first time a nat_rebind fault touches that direction — they
        # must watch traffic *before* the rebind instant to know which
        # flows to kill, so arming happens at apply() time.
        self._rebinders: dict = {}
        # Transformers currently installed by windowed faults, so
        # teardown() can remove stragglers when a run ends mid-window.
        self._installed: list = []
        self._obs_counters = None
        if obs is not None:
            self.observe(obs)

    def observe(self, obs) -> None:
        telemetry = obs.telemetry
        self._obs_counters = {
            kind: telemetry.counter(obs_keys.COMP_FAULTS, kind)
            for kind in (
                KIND_FLAP, KIND_BLACKHOLE, KIND_LOSS_BURST, KIND_CORRUPT_BURST,
                KIND_RST_STORM, KIND_STRIP_OPTIONS, KIND_NAT_REBIND,
                KIND_SERVER_CRASH, KIND_SERVER_RESTART,
                KIND_TICKET_KEY_ROTATION, KIND_CLIENT_STAMPEDE,
                KIND_SLOW_READER, KIND_MEMORY_PRESSURE,
            )
        }

    # -- plan execution ----------------------------------------------------

    def apply(self, plan: FaultPlan) -> None:
        """Schedule every fault in ``plan`` relative to the current clock."""
        for fault in plan:
            if fault.kind == KIND_NAT_REBIND:
                # Arm the observer now so pre-rebind flows are recorded.
                for link, direction in self._targets(fault):
                    self._arm_rebinder(link, direction)
            self.sim.schedule(
                max(0.0, fault.at - self.sim.now), self._start, fault
            )

    _INSTANT_KINDS = frozenset(
        (KIND_NAT_REBIND, KIND_SERVER_CRASH, KIND_TICKET_KEY_ROTATION,
         KIND_CLIENT_STAMPEDE)
    )

    def _start(self, fault: Fault) -> None:
        handler = {
            KIND_FLAP: self._start_flap,
            KIND_BLACKHOLE: self._start_install,
            KIND_CORRUPT_BURST: self._start_install,
            KIND_RST_STORM: self._start_install,
            KIND_STRIP_OPTIONS: self._start_install,
            KIND_LOSS_BURST: self._start_loss,
            KIND_NAT_REBIND: self._fire_nat_rebind,
            KIND_SERVER_CRASH: self._fire_server_crash,
            KIND_SERVER_RESTART: self._start_server_restart,
            KIND_TICKET_KEY_ROTATION: self._fire_rotation,
            KIND_CLIENT_STAMPEDE: self._fire_stampede,
            KIND_SLOW_READER: self._start_slow_reader,
            KIND_MEMORY_PRESSURE: self._start_memory_pressure,
        }[fault.kind]
        self._note(fault, "fire" if fault.kind in self._INSTANT_KINDS else "start")
        if self._obs_counters is not None:
            self._obs_counters[fault.kind].inc()
        handler(fault)

    def _note(self, fault: Fault, phase: str) -> None:
        self.log.append((self.sim.now, fault.kind, fault.path, phase))

    # -- targeting helpers -------------------------------------------------

    def _links_for(self, fault: Fault) -> list:
        if fault.path is None:
            return [link for path in self.paths for link in path]
        return self.paths[fault.path]

    def _directions(self, fault: Fault) -> tuple:
        return (0, 1) if fault.direction is None else (fault.direction,)

    def _targets(self, fault: Fault) -> Iterable[tuple]:
        for link in self._links_for(fault):
            for direction in self._directions(fault):
                yield link, direction

    # -- kind handlers -----------------------------------------------------

    def _start_flap(self, fault: Fault) -> None:
        for link in self._links_for(fault):
            link.set_down(fault.direction)
        self.sim.schedule(fault.duration, self._end_flap, fault)

    def _end_flap(self, fault: Fault) -> None:
        for link in self._links_for(fault):
            link.set_up(fault.direction)
        self._note(fault, "end")

    _FACTORIES = {
        KIND_BLACKHOLE: lambda params: Blackhole(),
        KIND_CORRUPT_BURST: lambda params: PayloadCorruptor(
            every=params.get("every", 1)
        ),
        KIND_RST_STORM: lambda params: RstStorm(every=params.get("every", 1)),
        KIND_STRIP_OPTIONS: lambda params: OptionStripper(
            kinds=params.get("kinds", ())
        ),
    }

    def _start_install(self, fault: Fault) -> None:
        installed = []
        for link, direction in self._targets(fault):
            transformer = self._FACTORIES[fault.kind](fault.params)
            link.add_transformer(link.endpoint(direction), transformer)
            installed.append((link, direction, transformer))
        self._installed.extend(installed)
        self.sim.schedule(fault.duration, self._end_install, fault, installed)

    def _end_install(self, fault: Fault, installed: list) -> None:
        for entry in installed:
            link, direction, transformer = entry
            link.remove_transformer(link.endpoint(direction), transformer)
            if entry in self._installed:
                self._installed.remove(entry)
        self._note(fault, "end")

    def _start_loss(self, fault: Fault) -> None:
        links = self._links_for(fault)
        for link in links:
            # Remember the pre-burst rate once even if bursts overlap.
            self._saved_loss.setdefault(id(link), link.loss_rate)
            link.loss_rate = float(fault.params.get("loss", 0.3))
        self.sim.schedule(fault.duration, self._end_loss, fault, links)

    def _end_loss(self, fault: Fault, links: list) -> None:
        for link in links:
            link.loss_rate = self._saved_loss.pop(id(link), 0.0)
        self._note(fault, "end")

    def _arm_rebinder(self, link, direction: int) -> NatRebinder:
        key = (id(link), direction)
        rebinder = self._rebinders.get(key)
        if rebinder is None:
            rebinder = NatRebinder()
            link.add_transformer(link.endpoint(direction), rebinder)
            self._rebinders[key] = rebinder
        return rebinder

    def _fire_nat_rebind(self, fault: Fault) -> None:
        for link, direction in self._targets(fault):
            self._arm_rebinder(link, direction).rebind()

    # -- endpoint handlers -------------------------------------------------

    def _endpoints_for(self, fault: Fault) -> list:
        if not self.endpoints:
            raise ValueError(
                f"fault kind {fault.kind!r} needs ChaosEngine(endpoints=...)"
            )
        if fault.path is None:
            return list(self.endpoints)
        return [self.endpoints[fault.path]]

    def _fire_server_crash(self, fault: Fault) -> None:
        for endpoint in self._endpoints_for(fault):
            endpoint.crash()

    def _start_server_restart(self, fault: Fault) -> None:
        targets = self._endpoints_for(fault)
        for endpoint in targets:
            endpoint.crash()
        self.sim.schedule(fault.duration, self._end_server_restart, fault, targets)

    def _end_server_restart(self, fault: Fault, targets: list) -> None:
        rotate = bool(fault.params.get("rotate_keys", False))
        for endpoint in targets:
            endpoint.restart(rotate_keys=rotate)
        self._note(fault, "end")

    def _fire_rotation(self, fault: Fault) -> None:
        for endpoint in self._endpoints_for(fault):
            endpoint.rotate_ticket_key()

    # -- workload handlers -------------------------------------------------

    def _workloads_for(self, fault: Fault) -> list:
        if not self.workloads:
            raise ValueError(
                f"fault kind {fault.kind!r} needs ChaosEngine(workloads=...)"
            )
        if fault.path is None:
            return list(self.workloads)
        return [self.workloads[fault.path]]

    def _fire_stampede(self, fault: Fault) -> None:
        count = int(fault.params.get("count", 20))
        for workload in self._workloads_for(fault):
            workload.stampede(count)

    def _start_slow_reader(self, fault: Fault) -> None:
        targets = self._workloads_for(fault)
        for workload in targets:
            workload.slow_reader_start()
            self._workload_open.append((workload, KIND_SLOW_READER))
        self.sim.schedule(fault.duration, self._end_slow_reader, fault, targets)

    def _end_slow_reader(self, fault: Fault, targets: list) -> None:
        for workload in targets:
            workload.slow_reader_end()
            self._workload_open.remove((workload, KIND_SLOW_READER))
        self._note(fault, "end")

    def _start_memory_pressure(self, fault: Fault) -> None:
        factor = float(fault.params.get("factor", 0.25))
        targets = self._workloads_for(fault)
        for workload in targets:
            workload.memory_pressure_start(factor)
            self._workload_open.append((workload, KIND_MEMORY_PRESSURE))
        self.sim.schedule(
            fault.duration, self._end_memory_pressure, fault, targets
        )

    def _end_memory_pressure(self, fault: Fault, targets: list) -> None:
        for workload in targets:
            workload.memory_pressure_end()
            self._workload_open.remove((workload, KIND_MEMORY_PRESSURE))
        self._note(fault, "end")

    # -- teardown ----------------------------------------------------------

    def teardown(self) -> None:
        """Restore the world after a run ends mid-fault.

        Guarantees: no transformer installed by a windowed fault is left
        on any link, loss rates are back at their pre-burst values, NAT
        rebinders are disarmed, and crashed endpoints are restarted
        (without key rotation — teardown repairs, it does not mutate
        policy).  Idempotent; every repair is logged as a "teardown"
        phase so post-run analysis can tell repairs from plan actions.
        """
        for entry in list(self._installed):
            link, direction, transformer = entry
            link.remove_transformer(link.endpoint(direction), transformer)
            self.log.append((self.sim.now, "transformer", None, "teardown"))
        self._installed.clear()
        for link_id in list(self._saved_loss):
            # The links dict keys by id(); find the live object via paths.
            for path in self.paths:
                for link in path:
                    if id(link) == link_id:
                        link.loss_rate = self._saved_loss.pop(link_id)
                        self.log.append(
                            (self.sim.now, "loss_rate", None, "teardown")
                        )
                        break
            self._saved_loss.pop(link_id, None)
        for (link_id, direction), rebinder in list(self._rebinders.items()):
            for path in self.paths:
                for link in path:
                    if id(link) == link_id:
                        link.remove_transformer(
                            link.endpoint(direction), rebinder
                        )
                        self.log.append(
                            (self.sim.now, "nat_rebinder", None, "teardown")
                        )
                        break
        self._rebinders.clear()
        for index, endpoint in enumerate(self.endpoints):
            if endpoint.crashed:
                endpoint.restart()
                self.log.append(
                    (self.sim.now, KIND_SERVER_RESTART, index, "teardown")
                )
        for workload, kind in list(self._workload_open):
            if kind == KIND_SLOW_READER:
                workload.slow_reader_end()
            else:
                workload.memory_pressure_end()
            self.log.append((self.sim.now, kind, None, "teardown"))
        self._workload_open.clear()

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict:
        return {
            "paths": len(self.paths),
            "endpoints": len(self.endpoints),
            "workloads": len(self.workloads),
            "actions": len(self.log),
            "rebinders": len(self._rebinders),
            "installed": len(self._installed),
        }
