"""Fault schedules: what goes wrong, where, and when.

A :class:`FaultPlan` is a declarative list of :class:`Fault` entries on
the simulated clock — "path 0 flaps down for 1.5 s at t=2", "a RST storm
rages on path 1 between t=3 and t=4".  Plans are data: they serialize to
plain dicts, compose (``plan_a + plan_b``), and can be generated from a
seed (:meth:`FaultPlan.random`) so a whole adversarial matrix is
reproducible from ``(seed, horizon, paths)``.

Executing a plan against live links is :class:`repro.faults.chaos.ChaosEngine`'s
job; checking that a session survived it is
:mod:`repro.faults.invariants`'s.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

# The fault vocabulary.  Every kind maps to a ChaosEngine handler.
KIND_FLAP = "flap"                   # link down for `duration`, then up
KIND_BLACKHOLE = "blackhole"         # silently drop offered packets
KIND_LOSS_BURST = "loss_burst"       # Bernoulli loss spike (params: loss)
KIND_CORRUPT_BURST = "corrupt_burst"  # payload corruption (params: every)
KIND_RST_STORM = "rst_storm"         # forge RSTs for live flows
KIND_STRIP_OPTIONS = "strip_options"  # middlebox churn: option stripper appears
KIND_NAT_REBIND = "nat_rebind"       # NAT forgets its mappings

# Endpoint faults: the *server process* fails, not the network.  For
# these, ``path`` indexes the engine's endpoint list (None = every
# endpoint) and ``direction`` is unused.
KIND_SERVER_CRASH = "server_crash"   # listener + in-flight sessions die
KIND_SERVER_RESTART = "server_restart"  # crash, back up after `duration`
KIND_TICKET_KEY_ROTATION = "ticket_key_rotation"  # resumption keys rotate

# Workload faults: the *offered load* misbehaves, not the network or the
# process.  ``path`` indexes the engine's workload list (None = every
# workload); targets speak the chaos workload protocol
# (``stampede``/``slow_reader_start``/... — see
# :class:`repro.overload.world.OverloadWorld`).
KIND_CLIENT_STAMPEDE = "client_stampede"  # a clump of arrivals at once
KIND_SLOW_READER = "slow_reader"          # clients stop draining streams
KIND_MEMORY_PRESSURE = "memory_pressure"  # the global budget shrinks

ALL_KINDS = (
    KIND_FLAP,
    KIND_BLACKHOLE,
    KIND_LOSS_BURST,
    KIND_CORRUPT_BURST,
    KIND_RST_STORM,
    KIND_STRIP_OPTIONS,
    KIND_NAT_REBIND,
    KIND_SERVER_CRASH,
    KIND_SERVER_RESTART,
    KIND_TICKET_KEY_ROTATION,
    KIND_CLIENT_STAMPEDE,
    KIND_SLOW_READER,
    KIND_MEMORY_PRESSURE,
)

#: The endpoint-fault subset (need the engine's ``endpoints`` list).
ENDPOINT_KINDS = frozenset(
    (KIND_SERVER_CRASH, KIND_SERVER_RESTART, KIND_TICKET_KEY_ROTATION)
)

#: The workload-fault subset (need the engine's ``workloads`` list).
WORKLOAD_KINDS = frozenset(
    (KIND_CLIENT_STAMPEDE, KIND_SLOW_READER, KIND_MEMORY_PRESSURE)
)

# Kinds that occupy a time window (duration matters).
WINDOWED_KINDS = frozenset(ALL_KINDS) - {
    KIND_NAT_REBIND,
    KIND_SERVER_CRASH,
    KIND_TICKET_KEY_ROTATION,
    KIND_CLIENT_STAMPEDE,
}


@dataclass
class Fault:
    """One scheduled fault.

    ``path`` indexes the engine's path list (None = every path);
    ``direction`` is the link-endpoint index whose outgoing traffic is
    affected (None = both directions).  ``params`` carries kind-specific
    tuning (e.g. ``loss`` for a loss burst).
    """

    kind: str
    at: float
    duration: float = 0.0
    path: Optional[int] = None
    direction: Optional[int] = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be >= 0")
        if self.duration < 0:
            raise ValueError("fault duration must be >= 0")

    @property
    def end(self) -> float:
        return self.at + self.duration

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "path": self.path,
            "direction": self.direction,
            "params": dict(self.params),
        }


@dataclass
class FaultPlan:
    """An ordered fault schedule (ordering by ``at`` is for humans; the
    engine schedules each fault independently on the simulator clock)."""

    faults: List[Fault] = field(default_factory=list)
    name: str = ""

    # -- builder helpers ---------------------------------------------------

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def flap(self, at: float, duration: float, path: Optional[int] = None,
             direction: Optional[int] = None) -> "FaultPlan":
        return self.add(Fault(KIND_FLAP, at, duration, path, direction))

    def blackhole(self, at: float, duration: float, path: Optional[int] = None,
                  direction: Optional[int] = None) -> "FaultPlan":
        return self.add(Fault(KIND_BLACKHOLE, at, duration, path, direction))

    def loss_burst(self, at: float, duration: float, loss: float = 0.3,
                   path: Optional[int] = None) -> "FaultPlan":
        return self.add(
            Fault(KIND_LOSS_BURST, at, duration, path, params={"loss": loss})
        )

    def corrupt_burst(self, at: float, duration: float, every: int = 1,
                      path: Optional[int] = None,
                      direction: Optional[int] = None) -> "FaultPlan":
        return self.add(
            Fault(KIND_CORRUPT_BURST, at, duration, path, direction,
                  params={"every": every})
        )

    def rst_storm(self, at: float, duration: float, path: Optional[int] = None,
                  direction: Optional[int] = None, every: int = 1) -> "FaultPlan":
        return self.add(
            Fault(KIND_RST_STORM, at, duration, path, direction,
                  params={"every": every})
        )

    def strip_options(self, at: float, duration: float, kinds: Iterable[int],
                      path: Optional[int] = None,
                      direction: Optional[int] = None) -> "FaultPlan":
        return self.add(
            Fault(KIND_STRIP_OPTIONS, at, duration, path, direction,
                  params={"kinds": tuple(kinds)})
        )

    def nat_rebind(self, at: float, path: Optional[int] = None) -> "FaultPlan":
        return self.add(Fault(KIND_NAT_REBIND, at, path=path))

    def server_crash(self, at: float, path: Optional[int] = None) -> "FaultPlan":
        """The server process dies and stays dead (``path`` = endpoint)."""
        return self.add(Fault(KIND_SERVER_CRASH, at, path=path))

    def server_restart(self, at: float, duration: float,
                       rotate_keys: bool = False,
                       path: Optional[int] = None) -> "FaultPlan":
        """Crash at ``at``, come back after ``duration`` — with the same
        ticket keys, or (``rotate_keys=True``) rotated ones so every
        outstanding resumption ticket is declined on redial."""
        return self.add(
            Fault(KIND_SERVER_RESTART, at, duration, path,
                  params={"rotate_keys": bool(rotate_keys)})
        )

    def ticket_key_rotation(self, at: float,
                            path: Optional[int] = None) -> "FaultPlan":
        """Rotate the server's ticket key mid-flight, no downtime."""
        return self.add(Fault(KIND_TICKET_KEY_ROTATION, at, path=path))

    def client_stampede(self, at: float, count: int = 20,
                        path: Optional[int] = None) -> "FaultPlan":
        """``count`` extra arrivals land at once (``path`` = workload)."""
        return self.add(
            Fault(KIND_CLIENT_STAMPEDE, at, path=path,
                  params={"count": int(count)})
        )

    def slow_reader(self, at: float, duration: float,
                    path: Optional[int] = None) -> "FaultPlan":
        """Arrivals during the window stop draining their streams; they
        resume (and catch up) when the window closes."""
        return self.add(Fault(KIND_SLOW_READER, at, duration, path))

    def memory_pressure(self, at: float, duration: float,
                        factor: float = 0.25,
                        path: Optional[int] = None) -> "FaultPlan":
        """Squeeze the shedder's global budget to ``factor`` of nominal
        for the window — the deterministic way to force the overload
        state machine through DEGRADED and SHEDDING."""
        return self.add(
            Fault(KIND_MEMORY_PRESSURE, at, duration, path,
                  params={"factor": float(factor)})
        )

    # -- composition / introspection --------------------------------------

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(
            faults=list(self.faults) + list(other.faults),
            name=f"{self.name}+{other.name}" if self.name or other.name else "",
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def sorted(self) -> List[Fault]:
        return sorted(self.faults, key=lambda f: (f.at, f.kind))

    def horizon(self) -> float:
        """Last instant at which any fault is still active."""
        return max((f.end for f in self.faults), default=0.0)

    def to_dict(self) -> dict:
        return {"name": self.name, "faults": [f.to_dict() for f in self.faults]}

    # -- seeded-random schedules -------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        horizon: float,
        paths: int = 1,
        count: int = 4,
        kinds: Sequence[str] = (
            KIND_FLAP, KIND_BLACKHOLE, KIND_LOSS_BURST, KIND_CORRUPT_BURST,
            KIND_RST_STORM,
        ),
        min_start: float = 0.0,
        max_duration: float = 2.0,
    ) -> "FaultPlan":
        """A reproducible adversarial schedule.

        ``count`` faults are drawn uniformly from ``kinds``, placed at
        random instants in ``[min_start, horizon)``, each on a random
        path and direction, with durations in ``(0, max_duration]``.
        Identical arguments always produce the identical plan.
        """
        rng = random.Random(seed)
        plan = cls(name=f"random(seed={seed})")
        for _ in range(count):
            kind = kinds[rng.randrange(len(kinds))]
            at = min_start + rng.random() * max(0.0, horizon - min_start)
            duration = (
                rng.random() * max_duration if kind in WINDOWED_KINDS else 0.0
            )
            path = rng.randrange(paths) if paths > 1 else 0
            direction = rng.choice((None, 0, 1))
            params = {}
            if kind == KIND_LOSS_BURST:
                params = {"loss": 0.1 + 0.4 * rng.random()}
                direction = None  # loss rate is a per-link property
            elif kind == KIND_CORRUPT_BURST:
                params = {"every": rng.randrange(1, 4)}
            elif kind == KIND_RST_STORM:
                params = {"every": rng.randrange(1, 3)}
            plan.add(Fault(kind, at, duration, path, direction, params))
        return plan
