"""Recovery invariants: what must hold no matter which faults fired.

The checker replays a finished scenario from three sources of truth —
the bytes the application handed to ``send()``, a
:class:`DeliveryRecorder` that captured everything the receiving session
surfaced, and the receiving session's own event timeline — and asserts
the TCPLS robustness contract:

* **No app-visible data loss**: every stream's delivered bytes equal the
  sent bytes, byte for byte (unless the session abandoned, in which case
  the abandonment must have been surfaced as a terminal
  ``SESSION_DEGRADED``).
* **No duplicate delivery past the ReceiveTracker**: the tracker never
  accepts the same session seq twice (checked live by
  :class:`TrackerAudit`).
* **Monotone stream offsets**: deliveries per stream are in-order and
  contiguous — chunk timestamps never regress and total delivered length
  matches the stream's own ``bytes_received``.
* **Bounded recovery**: every ``SESSION_RECOVERED`` downtime is within
  the worst case implied by the backoff schedule
  (:func:`max_recovery_time`), and a non-terminal degradation never goes
  unrecovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import Event


class DeliveryRecorder:
    """Captures everything a session's app callbacks deliver.

    Installs itself as ``on_stream_data``/``on_stream_fin``; keeps per
    stream the reassembled bytes and a chunk log ``(time, offset, len)``
    for the monotonicity check.
    """

    def __init__(self, session) -> None:
        self.session = session
        self.data: Dict[int, bytearray] = {}
        self.chunks: Dict[int, list] = {}
        self.fins: List[int] = []
        session.on_stream_data = self._on_data
        session.on_stream_fin = self._on_fin

    def _on_data(self, stream_id: int, data: bytes) -> None:
        buffer = self.data.setdefault(stream_id, bytearray())
        self.chunks.setdefault(stream_id, []).append(
            (self.session.sim.now, len(buffer), len(data))
        )
        buffer.extend(data)

    def _on_fin(self, stream_id: int) -> None:
        self.fins.append(stream_id)

    def bytes_for(self, stream_id: int) -> bytes:
        return bytes(self.data.get(stream_id, b""))


class TrackerAudit:
    """Live watchdog on a ReceiveTracker: records every seq it *accepts*.

    The tracker's contract is that a seq is accepted at most once; the
    audit proves it held over the whole run rather than trusting the
    implementation (``duplicate_accepts`` stays 0 or the invariant
    checker fails the scenario).
    """

    def __init__(self, tracker) -> None:
        self.tracker = tracker
        self.accepted: set = set()
        self.duplicate_accepts = 0
        self.total_accepts = 0
        self._original_accept = tracker.accept
        tracker.accept = self._accept

    def _accept(self, seq: int) -> bool:
        ok = self._original_accept(seq)
        if ok and seq != 0:
            self.total_accepts += 1
            if seq in self.accepted:
                self.duplicate_accepts += 1
            self.accepted.add(seq)
        return ok

    def detach(self) -> None:
        self.tracker.accept = self._original_accept


def max_recovery_time(context, attempts: Optional[int] = None,
                      slack: float = 0.5) -> float:
    """Worst-case seconds from DEGRADED to RECOVERED under ``context``.

    Upper bound: each attempt may burn a full ``join_timeout`` before
    failing, and each retry waits the capped exponential backoff at
    maximal jitter.  ``slack`` absorbs handshake RTTs and scheduler
    quantisation.
    """
    attempts = context.reconnect_max_retries if attempts is None else attempts
    total = 0.0
    for attempt in range(1, attempts + 1):
        delay = min(
            context.reconnect_backoff_base * 2 ** (attempt - 1),
            context.reconnect_backoff_max,
        )
        total += delay * (1.0 + context.reconnect_backoff_jitter)
    return total + attempts * context.join_timeout + slack


def recovery_spans(session) -> dict:
    """Degradation episodes from the session's event timeline.

    Returns ``{"recovered": [(start, end, downtime)], "open": [...],
    "terminal": [...]}`` — ``open`` are non-terminal degradations with no
    matching recovery (an invariant violation at end of run), ``terminal``
    are explicit abandonments (allowed, but must be intentional).
    """
    recovered, open_spans, terminal = [], [], []
    start: Optional[float] = None
    for when, event, kwargs in session.events.timeline:
        if event == Event.SESSION_DEGRADED:
            if kwargs.get("terminal"):
                terminal.append((when, kwargs.get("reason")))
                start = None
            elif start is None:
                start = when
        elif event == Event.SESSION_RECOVERED and start is not None:
            recovered.append((start, when, when - start))
            start = None
    if start is not None:
        open_spans.append((start, session.sim.now))
    return {"recovered": recovered, "open": open_spans, "terminal": terminal}


@dataclass
class InvariantReport:
    """Outcome of :func:`check_invariants`; falsy when anything failed."""

    violations: List[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def assert_ok(self) -> None:
        if self.violations:
            raise AssertionError(
                "invariant violations:\n  " + "\n  ".join(self.violations)
            )


def check_invariants(
    sent: Dict[int, bytes],
    recorder: DeliveryRecorder,
    session,
    context=None,
    audit: Optional[TrackerAudit] = None,
    allow_terminal: bool = False,
    slack: float = 0.5,
) -> InvariantReport:
    """Check the robustness contract for one finished scenario.

    ``sent`` maps stream id to the exact bytes the application wrote;
    ``session`` is the *receiving* session (its timeline and streams are
    inspected); ``context`` enables the recovery-time bound;
    ``allow_terminal`` accepts runs where the session intentionally
    abandoned (cookie exhaustion tests) — data-loss checks are skipped
    for those.
    """
    report = InvariantReport()
    spans = recovery_spans(session)
    report.details["recovery"] = spans
    terminal = bool(spans["terminal"])

    if terminal and not allow_terminal:
        report.violations.append(
            f"session abandoned ({spans['terminal']}) but the scenario "
            "expected full recovery"
        )

    # 1. No app-visible data loss (unless legitimately abandoned).
    if not terminal:
        for stream_id, payload in sent.items():
            got = recorder.bytes_for(stream_id)
            if got != payload:
                prefix = _common_prefix(got, payload)
                report.violations.append(
                    f"stream {stream_id}: delivered {len(got)} bytes vs "
                    f"{len(payload)} sent (first divergence at offset {prefix})"
                )

    # 2. No duplicate delivery past the ReceiveTracker.
    if audit is not None:
        report.details["accepted_seqs"] = audit.total_accepts
        if audit.duplicate_accepts:
            report.violations.append(
                f"ReceiveTracker accepted {audit.duplicate_accepts} "
                "duplicate seq(s)"
            )
    report.details["tracker"] = {
        "cumulative": session.tracker.cumulative,
        "duplicates": session.tracker.duplicates,
        "rejected_window": session.tracker.rejected_window,
    }

    # 3. Monotone, contiguous per-stream delivery.
    for stream_id, chunks in recorder.chunks.items():
        last_time, next_offset = -1.0, 0
        for when, offset, length in chunks:
            if when < last_time:
                report.violations.append(
                    f"stream {stream_id}: delivery time regressed "
                    f"({when} after {last_time})"
                )
                break
            if offset != next_offset:
                report.violations.append(
                    f"stream {stream_id}: non-contiguous delivery at "
                    f"offset {offset} (expected {next_offset})"
                )
                break
            last_time, next_offset = when, offset + length
        stream = session.streams.get(stream_id)
        if stream is not None and stream.bytes_received != next_offset:
            report.violations.append(
                f"stream {stream_id}: stream counted "
                f"{stream.bytes_received} bytes but app saw {next_offset}"
            )

    # 4. Recovery bounded by the backoff schedule.
    if spans["open"]:
        report.violations.append(
            f"{len(spans['open'])} degradation(s) never recovered: "
            f"{spans['open']}"
        )
    if context is not None:
        bound = max_recovery_time(context, slack=slack)
        report.details["recovery_bound"] = bound
        for start, end, downtime in spans["recovered"]:
            if downtime > bound:
                report.violations.append(
                    f"recovery at t={end:.3f} took {downtime:.3f}s "
                    f"(> bound {bound:.3f}s)"
                )
    return report


def _common_prefix(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return index
    return limit


# -- reconnect storms ---------------------------------------------------------


def max_storm_recovery_time(pool_config, *, outage: float,
                            detect_delay: float, slack: float = 1.0) -> float:
    """Recovery-time objective for a reconnect storm through a restart.

    Worst case for one client: it learns of the crash ``detect_delay``
    seconds after the crash instant (its next send drawing an RST), then
    its unluckiest redial lands *just* before the listener returns — so
    it waits out the remaining ``outage`` — and its final redial sits
    behind one full, maximally-jittered backoff cap.  ``slack`` absorbs
    the successful handshake plus request/response RTTs.

    Duck-typed on the pool config's ``redial_backoff_*`` fields so this
    module stays import-independent of :mod:`repro.scale`.
    """
    worst_backoff = pool_config.redial_backoff_max * (
        1.0 + pool_config.redial_backoff_jitter
    )
    return detect_delay + outage + worst_backoff + slack


def check_reconnect_storm(*, crash_at: float, bound: float,
                          clients: int, recovered_at: Dict[int, float],
                          sent: Dict[int, int], applied: Dict[int, int],
                          failed: int = 0) -> InvariantReport:
    """The reconnect-storm contract after a server crash/restart.

    * every one of ``clients`` re-establishes: ``recovered_at`` holds a
      post-crash recovery instant per client id;
    * each recovery lands within ``bound`` seconds of ``crash_at`` (the
      recovery-time objective from :func:`max_storm_recovery_time`);
    * exactly-once across the restart boundary: every request id in
      ``sent`` was applied exactly once (``applied`` counts per rid), and
      nothing was applied that was never sent;
    * no request failed permanently (``failed`` is the count of requests
      whose retry budget ran out).
    """
    report = InvariantReport()
    report.details["clients"] = clients
    report.details["bound"] = bound
    for client in range(clients):
        when = recovered_at.get(client)
        if when is None:
            report.violations.append(
                f"client {client} never re-established after the crash"
            )
            continue
        took = when - crash_at
        if took > bound:
            report.violations.append(
                f"client {client} recovered in {took:.3f}s "
                f"(> RTO bound {bound:.3f}s)"
            )
    for rid, count in sorted(applied.items()):
        if rid not in sent:
            report.violations.append(
                f"request {rid:#x} applied but never sent (phantom)"
            )
        elif count != 1:
            report.violations.append(
                f"request {rid:#x} applied {count} times (exactly-once broken)"
            )
    for rid in sorted(sent):
        if applied.get(rid, 0) == 0:
            report.violations.append(
                f"request {rid:#x} sent but never applied (lost)"
            )
    if failed:
        report.violations.append(
            f"{failed} requests failed permanently during the storm"
        )
    times = sorted(when - crash_at for when in recovered_at.values())
    if times:
        report.details["ttr_max"] = times[-1]
        report.details["ttr_p50"] = times[len(times) // 2]
    return report
