"""Endpoint fault targets: the server process, not the network.

The link-level fault vocabulary (flap, blackhole, RST storm...) never
kills the *endpoint* — yet TCPLS's whole pitch is surviving events that
tear a layered stack down.  :class:`ServerEndpoint` wraps one or more
:class:`~repro.core.session.TcplsServer` listeners that live and die
together (one "process"), giving the ChaosEngine three operations:

- ``crash()``      — listeners and in-flight sessions vanish silently;
- ``restart()``    — come back, optionally with rotated ticket keys;
- ``rotate_ticket_key()`` — invalidate outstanding resumption tickets
  without downtime (the routine key-hygiene event every farm performs).

The TCP stack itself survives a crash (the kernel outlives the process),
so clients discover the death from RSTs, not timeouts.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

_ROTATION_LABEL = b"repro-ticket-rotation"


def rotated_key(key: bytes) -> bytes:
    """The deterministic successor of a ticket key.

    A hash chain rather than fresh randomness: two runs of the same
    scenario rotate to the identical key, which the determinism
    sanitizer's double-run digest requires.
    """
    return hashlib.sha256(key + _ROTATION_LABEL).digest()


class ServerEndpoint:
    """One crashable server process: a group of TcplsServer listeners.

    All listeners in the group share their contexts' ticket keys' fate:
    ``rotate_ticket_key`` rotates every distinct context exactly once
    (several listeners usually share one context object).
    """

    def __init__(self, servers: Iterable, name: str = "") -> None:
        self.servers: List = list(servers)
        if not self.servers:
            raise ValueError("a ServerEndpoint needs at least one server")
        self.name = name
        self.crashes = 0
        self.restarts = 0
        self.rotations = 0

    @property
    def crashed(self) -> bool:
        return any(server.crashed for server in self.servers)

    def _contexts(self) -> List:
        seen: List = []
        for server in self.servers:
            if not any(ctx is server.context for ctx in seen):
                seen.append(server.context)
        return seen

    def crash(self) -> None:
        if self.crashed:
            return
        self.crashes += 1
        for server in self.servers:
            server.crash()

    def restart(self, rotate_keys: bool = False) -> None:
        if rotate_keys:
            self.rotate_ticket_key()
        if not self.crashed:
            return
        self.restarts += 1
        for server in self.servers:
            server.relisten()

    def rotate_ticket_key(self) -> None:
        self.rotations += 1
        for ctx in self._contexts():
            ctx.ticket_key = rotated_key(ctx.ticket_key)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "servers": len(self.servers),
            "crashed": self.crashed,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "rotations": self.rotations,
        }
