"""Overload robustness: admission control, load shedding, stampedes.

The TCPLS paper puts streams, the secure session, and TCP state in one
context; this package defends that context when *sustained demand
exceeds capacity*.  Three layers:

- :mod:`repro.overload.admission` — accept-queue caps, cost-aware
  classification of ClientHellos (full handshake vs. cheap resumption /
  JOIN / retry-coupon), and a token-bucket pacer on handshake CPU.
- :mod:`repro.overload.shedding` — a global memory budget across every
  accepted session with deadline-based shedding (oldest deadline first)
  and the NORMAL → DEGRADED → SHEDDING → recovered state machine.
- :mod:`repro.overload.world` — a deterministic open-loop load
  generator sweeping offered load past capacity, the O1 benchmark's
  engine and the ``overload`` fleet cell.

Per-stream credit flow control (the other half of overload robustness)
lives in ``repro.core``: receive windows + WINDOW_UPDATE grants in
``core/streams.py`` / ``core/session.py``, surfaced to applications as
``WouldBlock`` / ``Event.STREAM_WRITABLE``.
"""

from repro.overload.admission import (
    AdmissionConfig,
    AdmissionController,
    Decision,
    TokenBucket,
    classify_hello,
)
from repro.overload.coupons import (
    EXT_TCPLS_COUPON,
    mint_coupon,
    verify_coupon,
)
from repro.overload.shedding import (
    STATE_DEGRADED,
    STATE_NORMAL,
    STATE_SHEDDING,
    LoadShedder,
)
from repro.overload.world import (
    OverloadConfig,
    OverloadResult,
    OverloadWorld,
    run_overload,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Decision",
    "TokenBucket",
    "classify_hello",
    "EXT_TCPLS_COUPON",
    "mint_coupon",
    "verify_coupon",
    "STATE_NORMAL",
    "STATE_DEGRADED",
    "STATE_SHEDDING",
    "LoadShedder",
    "OverloadConfig",
    "OverloadResult",
    "OverloadWorld",
    "run_overload",
]
