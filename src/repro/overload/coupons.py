"""Retry coupons: the reject-with-cookie half of admission control.

A server turning a full handshake away under pressure mints a sealed
coupon; the client presents it in the ClientHello of its redial (the
``EXT_TCPLS_COUPON`` extension, next to the TCPLS marker) and is
admitted on the cheap path — it already paid the wait once.  Coupons
are HMAC-sealed over an issue timestamp and a random nonce, verified
against the server's own clock with a short lifetime, so they cannot be
minted by clients, hoarded across an overload episode, or replayed
usefully at scale (each admit still pays the cheap token cost).

Delivery rides the rejection path out-of-band of TLS (the overload
world hands the coupon to the redial directly); an in-band
HelloRetryRequest-style carrier would change the handshake state
machine and is out of scope here.
"""

from __future__ import annotations

import hashlib
import hmac
import random
import struct

from repro.tls.messages import EXT_TCPLS_COUPON
from repro.utils.errors import DecodeError, decode_guard

__all__ = ["EXT_TCPLS_COUPON", "mint_coupon", "verify_coupon", "COUPON_LEN"]

_MAC_LEN = 16
_BODY_LEN = 8 + 8  # issued-at f64 + nonce u64
COUPON_LEN = _BODY_LEN + _MAC_LEN


def _seal(key: bytes, body: bytes) -> bytes:
    return hmac.new(key, body, hashlib.sha256).digest()[:_MAC_LEN]


def mint_coupon(key: bytes, now: float, rng: random.Random) -> bytes:
    """Mint a sealed retry coupon stamped with the server's clock."""
    body = struct.pack(">dQ", now, rng.getrandbits(64))
    return body + _seal(key, body)


def verify_coupon(key: bytes, blob: bytes, now: float, lifetime: float) -> bool:
    """True when ``blob`` is an unexpired coupon sealed under ``key``.

    Fail-closed: malformed, truncated, tampered, future-stamped, and
    expired coupons are all just ``False`` — a bad coupon downgrades
    the client to the full-handshake admission class, it never aborts
    the connection.
    """
    try:
        with decode_guard("verify_coupon"):
            if len(blob) != COUPON_LEN:
                return False
            body, mac = blob[:_BODY_LEN], blob[_BODY_LEN:]
            if not hmac.compare_digest(_seal(key, body), mac):
                return False
            issued_at = struct.unpack(">dQ", body)[0]
            if issued_at > now:
                return False
            return now - issued_at <= lifetime
    except DecodeError:
        return False
