"""Deadline-based load shedding under a global memory budget.

Per-session memory budgets (``TcplsContext.max_session_memory``) bound
what one peer can pin, but a farm's failure mode is the *sum*: many
sessions each legitimately under their own cap.  The shedder promotes
those per-session budgets into one global budget and walks a three-state
machine on the fill fraction:

    NORMAL --(>= degraded_watermark)--> DEGRADED
    DEGRADED --(>= shed_watermark)----> SHEDDING  (drops sessions)
    any ----(<= recover_watermark)----> NORMAL    (a "recovered" edge)

In SHEDDING, registered sessions are dropped oldest-deadline-first
(each session gets ``now + session_deadline`` at admission, so the
longest-running sessions — the ones that have had the most service —
are sacrificed before fresh admits) until the budget falls back under
the recover watermark.  Dropping uses the crash model: the session
vanishes and the peer learns from RSTs, exactly what an OOM-killed
worker would look like.

The ``memory_pressure`` fault kind squeezes the budget via
``pressure_factor`` without touching any session, forcing the state
machine through its transitions deterministically.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs import Observability
from repro.obs import keys as obs_keys

STATE_NORMAL = "normal"
STATE_DEGRADED = "degraded"
STATE_SHEDDING = "shedding"

_STATE_LEVEL = {STATE_NORMAL: 0, STATE_DEGRADED: 1, STATE_SHEDDING: 2}


class _Tracked:
    __slots__ = ("deadline", "order", "session")

    def __init__(self, deadline: float, order: int, session) -> None:
        self.deadline = deadline
        self.order = order
        self.session = session


class LoadShedder:
    """Global memory budget + deadline shedding across sessions."""

    def __init__(
        self,
        budget_bytes: int,
        *,
        degraded_watermark: float = 0.7,
        shed_watermark: float = 0.9,
        recover_watermark: float = 0.5,
        session_deadline: float = 30.0,
        observability: Optional[Observability] = None,
    ) -> None:
        self.budget_bytes = budget_bytes
        self.degraded_watermark = degraded_watermark
        self.shed_watermark = shed_watermark
        self.recover_watermark = recover_watermark
        self.session_deadline = session_deadline
        #: Fault hook (``memory_pressure``): scales the effective budget.
        self.pressure_factor = 1.0
        self.state = STATE_NORMAL
        #: (time, from_state, to_state) edges, "recovered" included.
        self.transitions: List[Tuple[float, str, str]] = []
        self._tracked: List[_Tracked] = []
        self._order = 0
        # Plain-int mirror of the shed counter: telemetry may be the
        # disabled null backend, but results still need the count.
        self._shed_total = 0

        obs = observability
        telemetry = obs.telemetry if obs is not None else None
        if telemetry is None:
            from repro.obs.telemetry import Telemetry

            telemetry = Telemetry(enabled=False)
        self._obs_shed = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_SHED_SESSIONS
        )
        self._obs_state = telemetry.gauge(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_STATE
        )
        self._obs_memory = telemetry.gauge(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_MEMORY_BYTES
        )

    # -- tracking ----------------------------------------------------------

    def track(self, session, now: float) -> None:
        """Admit one session into the budget with its shed deadline."""
        self._tracked.append(
            _Tracked(now + self.session_deadline, self._order, session)
        )
        self._order += 1

    def tracked_count(self) -> int:
        return len(self._tracked)

    def effective_budget(self) -> int:
        return max(1, int(self.budget_bytes * self.pressure_factor))

    def memory_bytes(self) -> int:
        """Bytes pinned by every live tracked session (closed pruned)."""
        alive = [t for t in self._tracked if not t.session.session_closed]
        if len(alive) != len(self._tracked):
            self._tracked = alive
        return sum(t.session.session_memory_bytes() for t in alive)

    # -- the state machine -------------------------------------------------

    def observe(self, now: float) -> str:
        """Refresh state from the current fill; shed if required.

        Called inline on every admission decision and from the world's
        maintenance tick — there is no standing timer, so an idle
        simulation still drains.
        """
        memory = self.memory_bytes()
        budget = self.effective_budget()
        fill = memory / budget
        if fill >= self.shed_watermark:
            self._transition(now, STATE_SHEDDING)
            memory = self._shed_to_recover(now, memory, budget)
            fill = memory / budget
        elif fill >= self.degraded_watermark:
            if self.state != STATE_SHEDDING:
                self._transition(now, STATE_DEGRADED)
        if fill <= self.recover_watermark and self.state != STATE_NORMAL:
            self._transition(now, STATE_NORMAL)
        self._obs_memory.set(memory)
        self._obs_state.set(_STATE_LEVEL[self.state])
        return self.state

    def _transition(self, now: float, to_state: str) -> None:
        if self.state == to_state:
            return
        self.transitions.append((now, self.state, to_state))
        self.state = to_state

    def _shed_to_recover(self, now: float, memory: int, budget: int) -> int:
        """Drop oldest-deadline-first until under the recover watermark."""
        target = int(budget * self.recover_watermark)
        while memory > target and self._tracked:
            victim = min(self._tracked, key=lambda t: (t.deadline, t.order))
            self._tracked.remove(victim)
            freed = victim.session.session_memory_bytes()
            self.shed_session(victim.session)
            memory -= freed
        return max(0, memory)

    def shed_session(self, session) -> None:
        """Drop one session (crash model: peers learn from RSTs)."""
        if not session.session_closed:
            session.crash()
        self._shed_total += 1
        self._obs_shed.inc()

    def shed_count(self) -> int:
        return self._shed_total
