"""The overload world: open-loop arrivals against an admission-gated farm.

Where :mod:`repro.scale.loadgen` models a *closed* population (users
wait for a pooled session), this world is deliberately **open-loop**:
arrivals land at ``offered_multiplier`` times the farm's engineered
capacity whether or not earlier arrivals were served, which is exactly
the regime where an unprotected server collapses.  Every arrival dials
a fresh session (worst case for handshake CPU), sends one request, and
reads one response; the server sits behind one shared
:class:`~repro.overload.admission.AdmissionController`.

The world speaks the chaos workload protocol (`stampede`,
``slow_reader_start/end``, ``memory_pressure_start/end``) so the
``client_stampede`` / ``slow_reader`` / ``memory_pressure`` fault kinds
can drive it, and both contexts share one small, *symmetric* stream
window (``stream_window``) so the credit loop carries real
backpressure: a slow reader parks bytes in its pull-mode read buffer,
withholds window updates, and the server's unsent response is what
fills the shedder's global budget.

Pass criterion the O1 benchmark builds on: goodput (completions per
offered second) at 4x offered load stays within a whisker of goodput
at 1x — admission turns excess load into cheap rejects, not collapse.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.events import Event
from repro.core.session import TcplsContext, TcplsServer, TcplsSession
from repro.netsim.topology import Network
from repro.obs.hub import Observability
from repro.overload.admission import AdmissionConfig, AdmissionController, Decision
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore
from repro.utils.errors import ReproError

QUICK_ENV = "REPRO_OVERLOAD_QUICK"
_QUICK_RATE = 30.0
_QUICK_DURATION = 1.5


@dataclass
class OverloadConfig:
    """Shape of one overload run.  Defaults model the full benchmark."""

    #: Engineered capacity: full handshakes/sec the pacer sustains.
    capacity_rate: float = 40.0
    #: Offered load as a multiple of capacity (the benchmark's sweep).
    offered_multiplier: float = 1.0
    #: Seconds over which arrivals spread (the measurement window).
    duration: float = 3.0
    #: Extra simulated time for in-flight requests to finish.
    drain_grace: float = 2.0
    client_hosts: int = 4
    request_bytes: int = 256
    response_bytes: int = 16384
    #: Symmetric per-stream window (both contexts) — small on purpose,
    #: so a non-reading client stalls the server within one response.
    stream_window: int = 8192
    link_rate_bps: float = 1e9
    link_delay: float = 0.002
    queue_packets: int = 512
    seed: int = 1
    #: Admission maintenance sweep period (budget check + reaping).
    tick: float = 0.1
    #: Rejected-with-coupon clients redial after this (plus jitter).
    retry_delay: float = 0.3
    retry_with_coupon: bool = True
    #: Poll period for draining slow readers once their window ends.
    drain_interval: float = 0.05
    #: Admission policy; None derives one from ``capacity_rate``.
    admission: Optional[AdmissionConfig] = None

    def build_admission(self) -> AdmissionConfig:
        if self.admission is not None:
            return self.admission
        return AdmissionConfig(
            handshake_rate=self.capacity_rate,
            handshake_burst=max(4.0, self.capacity_rate * 0.25),
            accept_queue=64,
            global_memory_budget=1 << 20,
            session_deadline=5.0,
            coupon_lifetime=2.0,
            seed=self.seed,
        )

    @classmethod
    def from_env(cls, **overrides) -> "OverloadConfig":
        """Full-size config, shrunk when ``REPRO_OVERLOAD_QUICK`` is set."""
        config = cls(**overrides)
        if os.environ.get(QUICK_ENV):
            config.capacity_rate = min(config.capacity_rate, _QUICK_RATE)
            config.duration = min(config.duration, _QUICK_DURATION)
        return config


@dataclass
class OverloadResult:
    """What one run produced (simulated-clock quantities only)."""

    offered: int = 0
    completed: int = 0
    failed: int = 0
    #: Arrivals refused before the handshake finished (either gate).
    rejected: int = 0
    #: Rejected arrivals that redialled with a retry coupon.
    retried: int = 0
    #: Completions per second of offered window — the flat-curve metric.
    goodput: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: ``AdmissionController.counts()`` snapshot.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Shedder state edges: (time, from_state, to_state).
    transitions: List[Tuple[float, str, str]] = field(default_factory=list)
    final_state: str = ""
    sim_time: float = 0.0
    events_processed: int = 0
    live_events: int = -1


class _Client:
    """One arrival's lifecycle."""

    __slots__ = ("index", "started_at", "session", "stream_id", "received",
                 "slow", "retried", "resolved")

    def __init__(self, index: int, started_at: float) -> None:
        self.index = index
        self.started_at = started_at
        self.session: Optional[TcplsSession] = None
        self.stream_id: Optional[int] = None
        self.received = 0
        self.slow = False
        self.retried = False
        self.resolved = False


class OverloadWorld:
    """Constructed farm + open-loop arrival driver + chaos workload."""

    def __init__(self, config: OverloadConfig,
                 observability: Optional[Observability] = None) -> None:
        self.config = config
        self.net = Network()
        self.sim = self.net.sim
        self.rng = random.Random(config.seed)
        self.obs = observability or Observability(self.sim, enabled=True)

        server_host = self.net.add_host("server")
        self.client_stacks: List[TcpStack] = []
        self.client_dests: List[str] = []
        self.links = []
        for i in range(config.client_hosts):
            client_host = self.net.add_host(f"client{i}")
            c_if = client_host.add_interface("eth0").configure_ipv4(
                f"10.0.{i}.1/24"
            )
            s_if = server_host.add_interface(f"eth{i}").configure_ipv4(
                f"10.0.{i}.2/24"
            )
            self.links.append(
                self.net.connect(
                    c_if,
                    s_if,
                    rate_bps=config.link_rate_bps,
                    delay=config.link_delay,
                    queue_packets=config.queue_packets,
                    seed=config.seed + i,
                )
            )
            self.client_stacks.append(TcpStack(client_host, seed=config.seed + i))
            self.client_dests.append(f"10.0.{i}.2")
        self.net.compute_routes()

        ca = CertificateAuthority("Repro Root", seed=b"root")
        identity = ca.issue_identity("farm.example", seed=b"farm")
        self.trust = TrustStore()
        self.trust.add_authority(ca)

        server_ctx = TcplsContext(
            identity=identity,
            seed=config.seed + 1000,
            observability=self.obs,
            stream_recv_window=config.stream_window,
        )
        self.controller = AdmissionController(
            self.sim, config.build_admission(), observability=self.obs
        )
        server_stack = TcpStack(server_host, seed=config.seed + 2000)
        self.server = TcplsServer(
            server_ctx,
            server_stack,
            port=443,
            on_session=self._on_server_session,
            admission=self.controller,
            on_reject=self._on_reject,
        )

        self.result = OverloadResult()
        self._horizon = config.duration + config.drain_grace
        self._clients: List[_Client] = []
        self._server_rx: Dict[Tuple[int, int], int] = {}
        #: Coupons minted by rejections, consumed by redials (FIFO).
        self._coupons: List[bytes] = []
        #: Chaos workload flags.
        self._slow_mode = False
        self._slow_clients: List[_Client] = []
        self._dial_rotation = 0

    # -- server side -------------------------------------------------------

    def _on_server_session(self, session: TcplsSession) -> None:
        key_base = id(session)

        def on_data(stream_id: int, data: bytes) -> None:
            key = (key_base, stream_id)
            got = self._server_rx.get(key, 0) + len(data)
            self._server_rx[key] = got
            if got >= self.config.request_bytes:
                del self._server_rx[key]
                session.send(stream_id, b"R" * self.config.response_bytes)

        session.on_stream_data = on_data

    def _on_reject(self, decision: Decision) -> None:
        if decision.coupon:
            self._coupons.append(decision.coupon)

    # -- client side -------------------------------------------------------

    def _client_context(self, coupon: bytes = b"") -> TcplsContext:
        return TcplsContext(
            trust_store=self.trust,
            server_name="farm.example",
            seed=self.config.seed,
            telemetry=False,
            stream_recv_window=self.config.stream_window,
            retry_coupon=coupon,
        )

    def _spawn(self, client: _Client, coupon: bytes = b"") -> None:
        i = self._dial_rotation % len(self.client_stacks)
        self._dial_rotation += 1
        session = TcplsSession(self._client_context(coupon),
                               self.client_stacks[i])
        client.session = session
        session.connect(self.client_dests[i], port=443)
        session.handshake()

        def on_handshake(**kwargs) -> None:
            self._on_admitted(client)

        def on_conn_failed(**kwargs) -> None:
            if not session.handshake_complete:
                self._on_rejected(client)

        def on_closed(**kwargs) -> None:
            if not client.resolved and session.handshake_complete:
                # Shed mid-request (crash model) or torn down under us.
                self._resolve(client, completed=False)

        session.events.on(Event.HANDSHAKE_DONE, on_handshake)
        session.events.on(Event.CONN_FAILED, on_conn_failed)
        session.events.on(Event.SESSION_CLOSED, on_closed)
        if not client.slow:
            session.on_stream_data = self._make_reader(client, session)

    def _make_reader(self, client: _Client, session: TcplsSession):
        def on_data(stream_id: int, data: bytes) -> None:
            client.received += len(data)
            if client.received >= self.config.response_bytes:
                self._finish_request(client)

        return on_data

    def _on_admitted(self, client: _Client) -> None:
        session = client.session
        try:
            client.stream_id = session.stream_new()
            session.streams_attach()
            session.send(client.stream_id, b"Q" * self.config.request_bytes)
        except (ReproError, RuntimeError):
            self._resolve(client, completed=False)

    def _on_rejected(self, client: _Client) -> None:
        if client.resolved:
            return
        if (self.config.retry_with_coupon and not client.retried
                and self._coupons and self.sim.now < self._horizon):
            client.retried = True
            self.result.retried += 1
            coupon = self._coupons.pop(0)
            delay = self.config.retry_delay * (1.0 + 0.2 * self.rng.random())
            self.sim.schedule(delay, lambda: self._spawn(client, coupon))
            return
        self.result.rejected += 1
        client.resolved = True

    def _finish_request(self, client: _Client) -> None:
        if client.resolved:
            return
        # Resolve before closing: close() fires SESSION_CLOSED
        # synchronously and its handler would otherwise count this
        # client as a mid-request failure.
        self.result.latencies.append(self.sim.now - client.started_at)
        self._resolve(client, completed=True)
        session = client.session
        try:
            if client.stream_id is not None:
                session.stream_close(client.stream_id)
            session.close()
        except (ReproError, RuntimeError):
            pass  # already torn down; completion still counts

    def _resolve(self, client: _Client, completed: bool) -> None:
        if client.resolved:
            return
        client.resolved = True
        if completed:
            self.result.completed += 1
        else:
            self.result.failed += 1

    # -- chaos workload protocol -------------------------------------------

    def stampede(self, count: int) -> None:
        """``client_stampede``: an instant clump of extra arrivals."""
        for _ in range(count):
            self._schedule_arrival(self.rng.uniform(0.0, 0.05))

    def slow_reader_start(self) -> None:
        """``slow_reader`` window opens: new arrivals stop reading."""
        self._slow_mode = True

    def slow_reader_end(self) -> None:
        """Window closes: every parked slow reader starts draining."""
        self._slow_mode = False
        stuck, self._slow_clients = self._slow_clients, []
        for client in stuck:
            self._drain(client)

    def memory_pressure_start(self, factor: float) -> None:
        """``memory_pressure``: squeeze the shedder's global budget."""
        self.controller.shedder.pressure_factor = factor
        self.controller.maintain()

    def memory_pressure_end(self) -> None:
        self.controller.shedder.pressure_factor = 1.0
        self.controller.maintain()

    def _drain(self, client: _Client) -> None:
        """Pull-mode read loop for a formerly slow reader."""
        if client.resolved or self.sim.now > self._horizon:
            return
        session = client.session
        if session is None or client.stream_id is None:
            return
        try:
            data = session.recv_data(client.stream_id)
        except (ReproError, RuntimeError):
            return
        if data:
            client.received += len(data)
            if client.received >= self.config.response_bytes:
                self._finish_request(client)
                return
        self.sim.schedule(self.config.drain_interval,
                          lambda: self._drain(client))

    # -- arrival driver ----------------------------------------------------

    def start(self) -> None:
        config = self.config
        offered_rate = config.capacity_rate * config.offered_multiplier
        count = max(1, int(offered_rate * config.duration))
        step = config.duration / count
        t = 0.0
        for _ in range(count):
            t += self.rng.uniform(0.2, 1.8) * step
            self._schedule_arrival(t)
        self._maintain_tick()

    def _schedule_arrival(self, when: float) -> None:
        index = self.result.offered
        self.result.offered += 1

        def arrive() -> None:
            client = _Client(index, self.sim.now)
            client.slow = self._slow_mode
            if client.slow:
                self._slow_clients.append(client)
            self._clients.append(client)
            self._spawn(client)

        self.sim.schedule(when, arrive)

    def _maintain_tick(self) -> None:
        self.controller.maintain()
        self.server.reap_closed()
        if self.sim.now < self._horizon:
            self.sim.schedule(self.config.tick, self._maintain_tick)

    # -- results -----------------------------------------------------------

    def finalize(self) -> OverloadResult:
        result = self.result
        for client in self._clients:
            if not client.resolved:
                self._resolve(client, completed=False)
        result.goodput = result.completed / max(self.config.duration, 1e-9)
        result.counts = self.controller.counts()
        result.transitions = list(self.controller.shedder.transitions)
        result.final_state = self.controller.shedder.state
        result.sim_time = self.sim.now
        result.events_processed = self.sim.events_processed
        result.live_events = self.sim.pending_events()
        return result


def run_overload(
    config: Optional[OverloadConfig] = None,
    observability: Optional[Observability] = None,
    fault_plan=None,
    until: Optional[float] = None,
    on_world: Optional[Callable[[OverloadWorld], None]] = None,
) -> OverloadResult:
    """Build the farm, run the storm to completion, return the result.

    ``fault_plan`` faults apply to the per-client-host links (path *i*
    = client host ``i``'s link); workload fault kinds
    (``client_stampede``/``slow_reader``/``memory_pressure``) target
    the world itself through the chaos workload protocol.
    """
    config = config or OverloadConfig()
    world = OverloadWorld(config, observability=observability)
    if on_world is not None:
        on_world(world)
    if fault_plan is not None:
        from repro.faults.chaos import ChaosEngine

        ChaosEngine(world.sim, world.links, workloads=[world]).apply(fault_plan)
    world.start()
    world.sim.run(until=until)
    return world.finalize()
