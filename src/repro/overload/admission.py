"""Cost-aware admission control for a TCPLS listener under overload.

Three gates, cheapest first:

1. **Accept-queue cap** — connections sniffed but not yet routed are
   bounded; past the cap a SYN-stamping stampede is refused before we
   buffer a single record.
2. **State policy** — while the shedder reports DEGRADED, new *full*
   handshakes are refused (they are the expensive thing) but cheap
   classes (resumption, JOIN, retry-coupon) still land; in SHEDDING
   everything new is refused.
3. **Token-bucket pacer** — handshake CPU is the scarce resource, so
   admissions draw tokens proportional to their cost: a full handshake
   pays 1.0, a resumption ~a tenth (one HMAC + no certificate chain),
   a JOIN even less.  The bucket rate *is* the capacity the O1
   benchmark sweeps offered load against.

Refused full handshakes get a sealed retry coupon
(:mod:`repro.overload.coupons`): the redial presents it in the
ClientHello and classifies as cheap — clients that already waited are
preferred over fresh arrivals, which keeps the goodput curve flat past
saturation instead of collapsing into redial storms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import Observability
from repro.obs import keys as obs_keys
from repro.overload.coupons import (
    EXT_TCPLS_COUPON,
    mint_coupon,
    verify_coupon,
)
from repro.overload.shedding import (
    STATE_DEGRADED,
    STATE_SHEDDING,
    LoadShedder,
)
from repro.tls import messages as m

#: Admission classes, cheapest to dearest.
KIND_JOIN = "join"
KIND_RESUMPTION = "resumption"
KIND_COUPON = "coupon"
KIND_FULL = "full"


@dataclass
class AdmissionConfig:
    """Knobs for one listener group's admission policy."""

    #: Max connections sniffed-but-unrouted across the group.
    accept_queue: int = 64
    #: Token-bucket rate: full handshakes per second the farm can chew.
    handshake_rate: float = 200.0
    #: Bucket depth: tolerated burst above the sustained rate.
    handshake_burst: float = 20.0
    #: Token cost per admission class.
    full_cost: float = 1.0
    resumption_cost: float = 0.1
    join_cost: float = 0.05
    coupon_cost: float = 0.1
    #: Global memory budget across every admitted session.
    global_memory_budget: int = 64 << 20
    degraded_watermark: float = 0.7
    shed_watermark: float = 0.9
    recover_watermark: float = 0.5
    #: Seconds from admission to shed-eligibility deadline.
    session_deadline: float = 30.0
    #: Retry-coupon sealing key and validity window.
    coupon_key: bytes = b"repro-overload-coupon-key"
    coupon_lifetime: float = 5.0
    seed: int = 0


@dataclass
class Decision:
    """One admission verdict."""

    admitted: bool
    kind: str
    reason: str = ""
    #: Sealed retry coupon for a refused full handshake.
    coupon: bytes = b""


class TokenBucket:
    """Sim-clock token bucket with lazy refill (no standing timer)."""

    __slots__ = ("clock", "rate", "burst", "tokens", "_last")

    def __init__(self, clock, rate: float, burst: float) -> None:
        self.clock = clock
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = clock()

    def _refill(self) -> None:
        now = self.clock()
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def take(self, cost: float) -> bool:
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def available(self) -> float:
        self._refill()
        return self.tokens


def classify_hello(hello: Optional["m.ClientHello"]) -> str:
    """Cheap-vs-dear classification from the parsed ClientHello.

    A PSK offer means resumption: no certificate chain, no signature —
    roughly an order of magnitude cheaper for the server, which is why
    admission prefers it under pressure.  Anything unparseable is a
    full handshake (pessimal class, fail-closed).
    """
    if hello is None:
        return KIND_FULL
    if m.get_extension(hello.extensions, m.EXT_PRE_SHARED_KEY) is not None:
        return KIND_RESUMPTION
    return KIND_FULL


class AdmissionController:
    """Admission policy + shedding for a group of TCPLS listeners.

    One controller is shared by every listener of a farm so the accept
    queue, the pacer, and the memory budget are *global* — per-listener
    controllers would let an attacker multiply the budget by the
    listener count.
    """

    def __init__(
        self,
        sim,
        config: Optional[AdmissionConfig] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self.config = config or AdmissionConfig()
        self.obs = observability or Observability(sim, enabled=True)
        self.rng = random.Random(self.config.seed)
        self.bucket = TokenBucket(
            lambda: sim.now,
            self.config.handshake_rate,
            self.config.handshake_burst,
        )
        self.shedder = LoadShedder(
            self.config.global_memory_budget,
            degraded_watermark=self.config.degraded_watermark,
            shed_watermark=self.config.shed_watermark,
            recover_watermark=self.config.recover_watermark,
            session_deadline=self.config.session_deadline,
            observability=self.obs,
        )
        telemetry = self.obs.telemetry
        self._obs_admitted = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_ADMITTED
        )
        self._obs_admitted_cheap = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_ADMITTED_CHEAP
        )
        self._obs_rejected_queue = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_REJECTED_QUEUE
        )
        self._obs_rejected_pacer = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_REJECTED_PACER
        )
        self._obs_rejected_state = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_REJECTED_STATE
        )
        self._obs_coupons_minted = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_COUPONS_MINTED
        )
        self._obs_coupons_accepted = telemetry.counter(
            obs_keys.COMP_OVERLOAD, obs_keys.OVERLOAD_COUPONS_ACCEPTED
        )

    # -- gates -------------------------------------------------------------

    def admit_connection(self, pending_depth: int) -> bool:
        """Gate 1, at SYN-accept time: bounded accept queue."""
        if pending_depth >= self.config.accept_queue:
            return self.reject_queue()
        return True

    def admit_hello(self, hello, join_info) -> Decision:
        """Gates 2+3, at first-record time: policy + pacer.

        ``hello`` is the parsed ClientHello (or None when the first
        record was not parseable as one); ``join_info`` is non-None for
        JOINs onto existing sessions.
        """
        now = self.sim.now
        state = self.shedder.observe(now)
        if join_info is not None:
            kind = KIND_JOIN
        else:
            kind = classify_hello(hello)
            if kind == KIND_FULL and hello is not None:
                blob = m.get_extension(hello.extensions, EXT_TCPLS_COUPON)
                if blob is not None and verify_coupon(
                    self.config.coupon_key, blob, now,
                    self.config.coupon_lifetime,
                ):
                    kind = KIND_COUPON
                    self._obs_coupons_accepted.inc()
        if state == STATE_SHEDDING:
            return self.reject_state(kind, state)
        if state == STATE_DEGRADED and kind == KIND_FULL:
            return self.reject_state(kind, state)
        cost = {
            KIND_FULL: self.config.full_cost,
            KIND_RESUMPTION: self.config.resumption_cost,
            KIND_JOIN: self.config.join_cost,
            KIND_COUPON: self.config.coupon_cost,
        }[kind]
        if not self.bucket.take(cost):
            return self.reject_pacer(kind)
        if kind == KIND_FULL:
            self._obs_admitted.inc()
        else:
            self._obs_admitted_cheap.inc()
        return Decision(True, kind)

    # -- rejection paths (REL001: each increments an overload.* key) -------

    def reject_queue(self) -> bool:
        """Refuse at the accept queue (pre-sniff, cheapest reject)."""
        self._obs_rejected_queue.inc()
        return False

    def reject_pacer(self, kind: str) -> Decision:
        """Refuse for lack of handshake tokens; coupon the full class."""
        self._obs_rejected_pacer.inc()
        return Decision(False, kind, reason="pacer", coupon=self._coupon(kind))

    def reject_state(self, kind: str, state: str) -> Decision:
        """Refuse by DEGRADED/SHEDDING policy; coupon the full class."""
        self._obs_rejected_state.inc()
        return Decision(False, kind, reason=state, coupon=self._coupon(kind))

    def _coupon(self, kind: str) -> bytes:
        if kind != KIND_FULL:
            return b""
        self._obs_coupons_minted.inc()
        return mint_coupon(self.config.coupon_key, self.sim.now, self.rng)

    # -- session tracking --------------------------------------------------

    def track(self, session) -> None:
        """Register a freshly admitted session with the shedder."""
        self.shedder.track(session, self.sim.now)

    def maintain(self) -> str:
        """Periodic budget sweep (the world's tick calls this)."""
        return self.shedder.observe(self.sim.now)

    def counts(self) -> dict:
        """Plain-int snapshot for results/benchmarks."""
        return {
            "admitted": self._obs_admitted.value,
            "admitted_cheap": self._obs_admitted_cheap.value,
            "rejected_queue": self._obs_rejected_queue.value,
            "rejected_pacer": self._obs_rejected_pacer.value,
            "rejected_state": self._obs_rejected_state.value,
            "shed_sessions": self.shedder.shed_count(),
            "coupons_minted": self._obs_coupons_minted.value,
            "coupons_accepted": self._obs_coupons_accepted.value,
        }
