"""Seeded arrival/departure churn against a multi-listener TCPLS farm.

The scenario the scale benchmark and the churn-matrix test share:

- one server host running ``config.listeners`` TCPLS listeners on one
  TCP stack (ports 443, 444, ...), each interface-connected to
  ``config.client_hosts`` client hosts over fat low-delay links;
- a :class:`~repro.scale.pool.SessionPool` on the client side dialling
  sessions across the listeners;
- **wave A**: ``config.sessions`` users arrive (seeded spacing across
  ``arrival_span``), each acquiring a pooled session, running one
  request/response, then *holding* the session — so at ramp end the
  whole pool is concurrently open — before releasing it back;
- **wave B**: ``reuse_fraction * sessions`` late users arrive after the
  hold period and are served from the now-idle pool (exercising the
  reuse path), then the pool drains and every session closes.

Everything is driven off ``random.Random(config.seed)`` and the
simulated clock, so a double run is digest-identical — the churn-matrix
test leans on that, with and without the timer-wheel fast path, and
with a fault plan flapping client links mid-ramp.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.events import Event
from repro.utils.errors import ReproError
from repro.core.session import TcplsContext, TcplsServer, TcplsSession
from repro.netsim.topology import Network
from repro.obs.hub import Observability
from repro.scale.pool import PoolConfig, PooledSession, SessionPool
from repro.tcp.stack import TcpStack
from repro.tls.certificates import CertificateAuthority, TrustStore
from repro.tls.session import SessionTicketStore

#: Environment switch the CI smoke job sets: shrink the run to ~200
#: sessions so the scale scenario stays a quick check.
QUICK_ENV = "REPRO_SCALE_QUICK"
_QUICK_SESSIONS = 200


@dataclass
class ScaleConfig:
    """One scale run's shape.  Defaults model the full benchmark."""

    #: Peak concurrent sessions (wave A size = pool capacity).
    sessions: int = 1000
    #: Wave B arrivals, as a fraction of ``sessions`` (reuse traffic).
    reuse_fraction: float = 0.25
    #: TCPLS listeners on the server (ports 443, 444, ...).
    listeners: int = 2
    #: Client hosts sharing the dial load (each gets its own link).
    client_hosts: int = 4
    #: Seconds of simulated time over which wave A arrivals spread.
    arrival_span: float = 2.0
    #: How long each wave-A user holds its session after the response.
    hold_time: float = 0.5
    request_bytes: int = 512
    response_bytes: int = 2048
    link_rate_bps: float = 1e9
    link_delay: float = 0.002
    queue_packets: int = 512
    seed: int = 1
    #: Pool maintenance sweep period (also reaps server session lists).
    maintain_interval: float = 0.25
    #: Per-request give-up deadline (covers fault-plan runs where a
    #: request's session dies mid-flap and failover cannot save it).
    request_timeout: float = 30.0
    pool: PoolConfig = field(default_factory=PoolConfig)

    @classmethod
    def from_env(cls, **overrides) -> "ScaleConfig":
        """Full-size config, shrunk when ``REPRO_SCALE_QUICK`` is set."""
        config = cls(**overrides)
        if os.environ.get(QUICK_ENV):
            config.sessions = min(config.sessions, _QUICK_SESSIONS)
        return config


@dataclass
class ScaleResult:
    """What one run produced (simulated-clock quantities only)."""

    sessions: int
    requests_started: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    peak_concurrent: int = 0
    #: Per-request time-to-first-response-byte, simulated seconds.
    ttfb: List[float] = field(default_factory=list)
    sim_time: float = 0.0
    events_processed: int = 0
    live_events: int = -1
    pool_stats: Dict[str, int] = field(default_factory=dict)
    server_sessions_reaped: int = 0


class _Request:
    """One user's request lifecycle."""

    __slots__ = ("index", "started_at", "ttfb", "received", "entry",
                 "stream_id", "departs", "done", "timeout_event")

    def __init__(self, index: int, started_at: float, departs: bool) -> None:
        self.index = index
        self.started_at = started_at
        self.ttfb: Optional[float] = None
        self.received = 0
        self.entry: Optional[PooledSession] = None
        self.stream_id: Optional[int] = None
        self.departs = departs
        self.done = False
        self.timeout_event = None


class ScaleWorld:
    """The constructed farm: network, listeners, pool, and churn driver."""

    def __init__(self, config: ScaleConfig,
                 observability: Optional[Observability] = None) -> None:
        self.config = config
        self.net = Network()
        self.sim = self.net.sim
        self.rng = random.Random(config.seed)
        self.obs = observability or Observability(self.sim, enabled=True)

        server_host = self.net.add_host("server")
        self.client_stacks: List[TcpStack] = []
        self.client_dests: List[str] = []
        self.links = []
        for i in range(config.client_hosts):
            client_host = self.net.add_host(f"client{i}")
            c_if = client_host.add_interface("eth0").configure_ipv4(
                f"10.0.{i}.1/24"
            )
            s_if = server_host.add_interface(f"eth{i}").configure_ipv4(
                f"10.0.{i}.2/24"
            )
            self.links.append(
                self.net.connect(
                    c_if,
                    s_if,
                    rate_bps=config.link_rate_bps,
                    delay=config.link_delay,
                    queue_packets=config.queue_packets,
                    seed=config.seed + i,
                )
            )
            self.client_stacks.append(TcpStack(client_host, seed=config.seed + i))
            self.client_dests.append(f"10.0.{i}.2")
        self.net.compute_routes()

        ca = CertificateAuthority("Repro Root", seed=b"root")
        identity = ca.issue_identity("farm.example", seed=b"farm")
        trust = TrustStore()
        trust.add_authority(ca)

        # One shared hub on the server side keeps the farm's telemetry
        # in one registry; client sessions run with telemetry off — a
        # thousand per-session hubs would dominate the run's memory.
        server_ctx = TcplsContext(
            identity=identity,
            seed=config.seed + 1000,
            observability=self.obs,
        )
        self.client_ctx = TcplsContext(
            trust_store=trust,
            server_name="farm.example",
            ticket_store=SessionTicketStore(),
            seed=config.seed,
            telemetry=False,
        )

        server_stack = TcpStack(server_host, seed=config.seed + 2000)
        self.servers: List[TcplsServer] = []
        self._server_sessions: List[TcplsSession] = []
        for i in range(config.listeners):
            self.servers.append(
                TcplsServer(
                    server_ctx,
                    server_stack,
                    port=443 + i,
                    on_session=self._on_server_session,
                )
            )

        # Listener targets are (client-rotation-independent) port
        # choices; the dial closure rotates client hosts itself.
        self.pool = SessionPool(
            self.sim,
            self._dial,
            listeners=[443 + i for i in range(config.listeners)],
            config=config.pool,
            observability=self.obs,
        )
        self._dial_rotation = 0

        self.result = ScaleResult(sessions=config.sessions)
        self._open_sessions = 0
        self._users_pending = 0
        self._finished = False
        self._server_rx: Dict[Tuple[int, int], int] = {}
        self._inflight: Dict[Tuple[int, int], _Request] = {}

    # -- server side -------------------------------------------------------

    def _on_server_session(self, session: TcplsSession) -> None:
        self._server_sessions.append(session)
        key_base = id(session)

        def on_data(stream_id: int, data: bytes) -> None:
            key = (key_base, stream_id)
            got = self._server_rx.get(key, 0) + len(data)
            self._server_rx[key] = got
            if got >= self.config.request_bytes:
                del self._server_rx[key]
                session.send(stream_id, b"R" * self.config.response_bytes)

        session.on_stream_data = on_data

    # -- client side -------------------------------------------------------

    def _dial(self, port: int) -> TcplsSession:
        i = self._dial_rotation % len(self.client_stacks)
        self._dial_rotation += 1
        session = TcplsSession(self.client_ctx, self.client_stacks[i])
        session.connect(self.client_dests[i], port=port)
        session.handshake()

        def on_handshake(**kwargs) -> None:
            self._open_sessions += 1
            if self._open_sessions > self.result.peak_concurrent:
                self.result.peak_concurrent = self._open_sessions

        def on_closed(**kwargs) -> None:
            if session.handshake_complete:
                self._open_sessions -= 1

        session.events.on(Event.HANDSHAKE_DONE, on_handshake)
        session.events.on(Event.SESSION_CLOSED, on_closed)
        session.on_stream_data = self._make_client_handler(session)
        return session

    def _make_client_handler(self, session: TcplsSession):
        def on_data(stream_id: int, data: bytes) -> None:
            request = self._inflight.get((id(session), stream_id))
            if request is None:
                return
            if request.ttfb is None:
                request.ttfb = self.sim.now - request.started_at
                self.result.ttfb.append(request.ttfb)
            request.received += len(data)
            if request.received >= self.config.response_bytes:
                self._complete(request)

        return on_data

    # -- churn driver ------------------------------------------------------

    def start(self) -> None:
        """Schedule both arrival waves and the maintenance tick."""
        config = self.config
        arrivals: List[Tuple[float, bool]] = []
        # Wave A: seeded spacing across the ramp; holds, then departs.
        step = config.arrival_span / max(config.sessions, 1)
        t = 0.0
        for _ in range(config.sessions):
            t += self.rng.uniform(0.2, 1.8) * step
            arrivals.append((t, True))
        # Wave B: reuse traffic after every wave-A hold has released.
        wave_b = int(config.sessions * config.reuse_fraction)
        wave_b_start = config.arrival_span + config.hold_time
        t = wave_b_start
        for _ in range(wave_b):
            t += self.rng.uniform(0.2, 1.8) * step
            arrivals.append((t, False))

        self._users_pending = len(arrivals)
        for when, departs in arrivals:
            self._schedule_arrival(when, departs)
        self._maintain_tick()

    def _schedule_arrival(self, when: float, departs: bool) -> None:
        index = self.result.requests_started
        self.result.requests_started += 1

        def arrive() -> None:
            request = _Request(index, self.sim.now, departs)
            request.timeout_event = self.sim.schedule(
                self.config.request_timeout, lambda: self._timeout(request)
            )
            self.pool.acquire(lambda entry: self._on_acquired(request, entry))

        self.sim.schedule(when, arrive)

    def _on_acquired(self, request: _Request, entry: PooledSession) -> None:
        session = entry.session
        request.entry = entry
        # Re-anchor TTFB at acquire time for reused sessions?  No: TTFB
        # is user-perceived, so it keeps including any wait for a dial.
        try:
            stream_id = session.stream_new()
            session.streams_attach()
            request.stream_id = stream_id
            self._inflight[(id(session), stream_id)] = request
            session.send(stream_id, b"Q" * self.config.request_bytes)
        except (ReproError, RuntimeError):
            # Guard trip or a send on a session that died between the
            # pool's choice and our write: count it, free the slot.
            self._fail(request)

    def _complete(self, request: _Request) -> None:
        if request.done:
            return
        request.done = True
        if request.timeout_event is not None:
            request.timeout_event.cancel()
        entry = request.entry
        session = entry.session
        self._inflight.pop((id(session), request.stream_id), None)
        if request.stream_id is not None:
            try:
                session.stream_close(request.stream_id)
            except (ReproError, RuntimeError):
                pass  # session already torn down; nothing to close
        self.result.requests_completed += 1
        if request.departs:
            # Hold the session (still checked out) through the end of
            # the plateau — every wave-A session must be concurrently
            # open at ramp end, so departures are anchored to one
            # absolute instant (plus jitter to stagger the close storm),
            # not to each user's own completion time.
            plateau_end = self.config.arrival_span + self.config.hold_time
            delay = max(plateau_end - self.sim.now, 0.0)
            delay += 0.05 * self.config.hold_time * self.rng.random()
            self.sim.schedule(delay, lambda: self._depart(request))
        else:
            self._depart(request)

    def _fail(self, request: _Request) -> None:
        if request.done:
            return
        request.done = True
        if request.timeout_event is not None:
            request.timeout_event.cancel()
        if request.entry is not None:
            self._inflight.pop(
                (id(request.entry.session), request.stream_id), None
            )
        self.result.requests_failed += 1
        if request.entry is not None:
            self.pool.release(request.entry, failed=True)
        self._user_done()

    def _timeout(self, request: _Request) -> None:
        # Fires only when the response never arrived: a request stuck
        # waiting in the pool keeps waiting (holds always release), but
        # one whose session died unrecoverably is written off here.
        if not request.done and request.entry is not None:
            self._fail(request)
        elif not request.done:
            # Still queued in the pool with no session: give up too.
            request.done = True
            self.result.requests_failed += 1
            self._user_done()

    def _depart(self, request: _Request) -> None:
        self.pool.release(request.entry)
        self._user_done()

    def _user_done(self) -> None:
        self._users_pending -= 1
        if self._users_pending == 0:
            self._finish()

    def _maintain_tick(self) -> None:
        if self._finished:
            return
        self.pool.maintain()
        for server in self.servers:
            self.result.server_sessions_reaped += server.reap_closed()
        self.sim.schedule(self.config.maintain_interval, self._maintain_tick)

    def _finish(self) -> None:
        self._finished = True
        self.pool.drain()
        for server in self.servers:
            self.result.server_sessions_reaped += server.reap_closed()

    # -- results -----------------------------------------------------------

    def finalize(self) -> ScaleResult:
        result = self.result
        # The drain's close handshakes finish only once the clock runs
        # dry, so the last reap happens here, not in ``_finish``.
        for server in self.servers:
            result.server_sessions_reaped += server.reap_closed()
        result.sim_time = self.sim.now
        result.events_processed = self.sim.events_processed
        result.live_events = self.sim.pending_events()
        result.pool_stats = self.pool.stats()
        return result


def run_scale(
    config: Optional[ScaleConfig] = None,
    observability: Optional[Observability] = None,
    fault_plan=None,
    until: Optional[float] = None,
    on_world: Optional[Callable[[ScaleWorld], None]] = None,
) -> ScaleResult:
    """Build the farm, run the churn to completion, return the result.

    ``fault_plan`` (a :class:`repro.faults.plan.FaultPlan`) is applied
    against the per-client-host links (path *i* = client ``i``'s link).
    ``on_world`` runs after construction but before the clock starts —
    the determinism probe hooks in there.
    """
    config = config or ScaleConfig()
    if config.pool.max_sessions < config.sessions:
        config.pool.max_sessions = config.sessions
    world = ScaleWorld(config, observability=observability)
    if on_world is not None:
        on_world(world)
    if fault_plan is not None:
        from repro.faults.chaos import ChaosEngine

        ChaosEngine(world.sim, world.links).apply(fault_plan)
    world.start()
    world.sim.run(until=until)
    return world.finalize()
